//! # ignem-repro — Ignem, reproduced in Rust
//!
//! A full, from-scratch reproduction of **"Ignem: Upward Migration of Cold
//! Data in Big Data File Systems"** (Dzinamarira, Dinu, Ng — ICDCS 2018) as
//! a deterministic discrete-event simulation of the paper's entire stack.
//!
//! The facade re-exports every crate of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `ignem-simcore` | DES engine, fluid-flow resources, stats |
//! | [`storage`] | `ignem-storage` | HDD/SSD/RAM models, memory store |
//! | [`netsim`] | `ignem-netsim` | NIC fabric |
//! | [`dfs`] | `ignem-dfs` | HDFS-like NameNode + read planning |
//! | [`core`] | `ignem-core` | **Ignem itself**: master, slaves, policies |
//! | [`compute`] | `ignem-compute` | YARN/Tez-like scheduler + jobs |
//! | [`workloads`] | `ignem-workloads` | SWIM, Google trace, sort/wc, TPC-DS |
//! | [`cluster`] | `ignem-cluster` | the integrated simulator + experiments |
//! | `bench` | `ignem-bench` | every table & figure of the paper |
//!
//! ## Quickstart
//!
//! ```
//! use ignem_repro::cluster::prelude::*;
//! use ignem_repro::compute::{JobInput, JobSpec, SubmitOptions};
//! use ignem_repro::simcore::time::SimDuration;
//!
//! // One cold 1 GB job, with and without Ignem.
//! let files = vec![("/logs/day1".to_string(), 1u64 << 30)];
//! let job = |migrate: bool| {
//!     let mut spec = JobSpec::new("scan", JobInput::DfsFiles(vec!["/logs/day1".into()]));
//!     if migrate { spec.submit = SubmitOptions::with_migration(); }
//!     vec![PlannedJob::single("scan", SimDuration::from_secs(1), spec)]
//! };
//! let cfg = ClusterConfig::default();
//! let hdfs = World::new(cfg.clone(), FsMode::Hdfs, &files, job(false), vec![]).run();
//! let ignem = World::new(cfg, FsMode::Ignem, &files, job(true), vec![]).run();
//! assert!(ignem.mean_plan_duration() < hdfs.mean_plan_duration());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ignem_bench as bench;
pub use ignem_cluster as cluster;
pub use ignem_compute as compute;
pub use ignem_core as core;
pub use ignem_dfs as dfs;
pub use ignem_netsim as netsim;
pub use ignem_simcore as simcore;
pub use ignem_storage as storage;
pub use ignem_workloads as workloads;
