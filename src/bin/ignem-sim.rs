//! `ignem-sim` — run simulated Ignem experiments from the command line.
//!
//! ```text
//! ignem-sim swim      [--jobs N] [--mode M] [--seed S] [--policy sjf|fifo]
//! ignem-sim sort      [--gb N]   [--mode M]
//! ignem-sim wordcount [--gb N]   [--mode M] [--extra-lead SECS] [--contended]
//! ignem-sim hive      [--mode M]
//!
//! M: hdfs | ignem | ram            (default: ignem)
//! ```

use ignem_repro::cluster::config::{ClusterConfig, FsMode};
use ignem_repro::cluster::experiment::{run_hive, run_sort, run_swim, run_wordcount};
use ignem_repro::cluster::metrics::RunMetrics;
use ignem_repro::core::policy::Policy;
use ignem_repro::simcore::rng::SimRng;
use ignem_repro::simcore::time::SimDuration;
use ignem_repro::simcore::units::GB;
use ignem_repro::storage::device::DeviceProfile;
use ignem_repro::workloads::swim::{SwimConfig, SwimTrace};
use ignem_repro::workloads::tpcds::fig9_queries;

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn mode(&self) -> FsMode {
        match self.get("mode").unwrap_or("ignem") {
            "hdfs" => FsMode::Hdfs,
            "ram" | "inputs-in-ram" => FsMode::HdfsInputsInRam,
            "ignem" => FsMode::Ignem,
            other => {
                eprintln!("unknown mode: {other} (hdfs|ignem|ram)");
                std::process::exit(2);
            }
        }
    }
}

fn print_summary(label: &str, m: &RunMetrics) {
    println!("== {label} ==");
    println!("  jobs finished        {}", m.plans.len());
    println!("  mean job duration    {:.2}s", m.mean_plan_duration());
    println!("  mean map task        {:.2}s", m.mean_map_task_secs());
    println!("  mean block read      {:.3}s", m.mean_block_read_secs());
    println!(
        "  memory-read fraction {:.0}%",
        m.memory_read_fraction() * 100.0
    );
    println!("  makespan             {:.0}s", m.makespan.as_secs_f64());
    if m.slave_stats.migrated > 0 {
        println!(
            "  migration            {} blocks ({:.1} GB), {} deduped, {} discarded, {} evicted",
            m.slave_stats.migrated,
            m.slave_stats.migrated_bytes as f64 / 1e9,
            m.slave_stats.deduped,
            m.slave_stats.discarded,
            m.slave_stats.evicted
        );
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        eprintln!("usage: ignem-sim <swim|sort|wordcount|hive> [flags]   (see --help)");
        std::process::exit(2);
    };
    let args = Args::parse(&raw[1..]);
    if args.has("help") {
        println!("see the module docs at the top of src/bin/ignem-sim.rs");
        return;
    }
    let mut cfg = ClusterConfig {
        seed: args.num("seed", 20180615u64),
        ..ClusterConfig::default()
    };
    if args.has("contended") {
        cfg.disk = DeviceProfile::hdd_contended();
    }
    let mode = args.mode();

    match cmd.as_str() {
        "swim" => {
            let jobs: usize = args.num("jobs", 200);
            let swim_cfg = SwimConfig {
                jobs,
                total_input: (170 * GB) * jobs as u64 / 200,
                ..SwimConfig::default()
            };
            let trace = SwimTrace::generate(&swim_cfg, &mut SimRng::new(cfg.seed));
            let policy = match args.get("policy") {
                Some("fifo") => Some(Policy::Fifo),
                Some("sjf") | None => None,
                Some(other) => {
                    eprintln!("unknown policy: {other} (sjf|fifo)");
                    std::process::exit(2);
                }
            };
            let m = run_swim(&cfg, mode, &trace, policy);
            print_summary(&format!("SWIM {jobs} jobs under {mode}"), &m);
        }
        "sort" => {
            let gb: u64 = args.num("gb", 40);
            let m = run_sort(&cfg, mode, gb * GB);
            print_summary(&format!("sort {gb}GB under {mode}"), &m);
        }
        "wordcount" => {
            let gb: u64 = args.num("gb", 4);
            let lead: u64 = args.num("extra-lead", 0);
            let m = run_wordcount(&cfg, mode, gb, SimDuration::from_secs(lead));
            print_summary(
                &format!("wordcount {gb}GB (+{lead}s lead) under {mode}"),
                &m,
            );
        }
        "hive" => {
            let queries = fig9_queries();
            let m = run_hive(&cfg, mode, &queries);
            print_summary(
                &format!("{} TPC-DS queries under {mode}", queries.len()),
                &m,
            );
            for p in &m.plans {
                println!(
                    "    {:<5} input {:>5.1}GB  {:>6.1}s",
                    p.name,
                    p.input_bytes as f64 / 1e9,
                    p.duration
                );
            }
        }
        other => {
            eprintln!("unknown command: {other} (swim|sort|wordcount|hive)");
            std::process::exit(2);
        }
    }
}
