//! `ignem-lint` binary: lint the workspace, print diagnostics, write the
//! JSON report, exit nonzero on violations.
//!
//! Usage: `cargo run --bin ignem-lint [-- <json-report-path>]`. The report
//! defaults to `target/ignem-lint-report.json` under the workspace root.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match ignem_lint::default_root().canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ignem-lint: cannot resolve workspace root: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match ignem_lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ignem-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    let json_path: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| root.join("target").join("ignem-lint-report.json"));
    if let Some(parent) = json_path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    if let Err(e) = fs::write(&json_path, report.to_json()) {
        eprintln!("ignem-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "ignem-lint: {} files scanned, {} violation(s); report at {}",
        report.files_scanned,
        report.violations.len(),
        json_path.display()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
