//! `ignem-lint` binary: run the ignem-analyze workspace self-check, print
//! diagnostics, write reports, exit nonzero on findings.
//!
//! Usage:
//!
//! ```text
//! cargo run --bin ignem-lint [-- [JSON_PATH] [--json-out PATH]
//!     [--sarif-out PATH] [--baseline PATH] [--changed] [--token-rules-only]]
//! ```
//!
//! * A bare positional path (legacy form) or `--json-out` sets where the
//!   JSON report is written; default `target/ignem-lint-report.json`.
//! * `--sarif-out PATH` additionally writes a SARIF 2.1.0 report.
//! * `--baseline PATH` compares findings against a committed baseline:
//!   findings not in the baseline fail the build (regressions), and so do
//!   baseline entries that no longer fire (stale-baseline guard).
//! * `--changed` narrows *reporting* (and the exit code, when no baseline
//!   is given) to files touched per `git diff --name-only HEAD`; analysis
//!   still runs over the whole workspace so cross-crate passes stay sound.
//! * `--token-rules-only` runs the PR-4 token rules without the parser
//!   passes (fast mode; not used by CI).

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

struct Args {
    json_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    changed: bool,
    token_rules_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json_out: None,
        sarif_out: None,
        baseline: None,
        changed: false,
        token_rules_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json-out" => {
                args.json_out = Some(it.next().ok_or("--json-out needs a path")?.into());
            }
            "--sarif-out" => {
                args.sarif_out = Some(it.next().ok_or("--sarif-out needs a path")?.into());
            }
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.into());
            }
            "--changed" => args.changed = true,
            "--token-rules-only" => args.token_rules_only = true,
            p if !p.starts_with('-') && args.json_out.is_none() => {
                args.json_out = Some(p.into());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Files touched relative to HEAD (staged, unstaged, and untracked), as
/// workspace-relative paths.
fn changed_files(root: &std::path::Path) -> Result<BTreeSet<String>, String> {
    let mut files = BTreeSet::new();
    for extra in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let out = Command::new("git")
            .args(extra)
            .current_dir(root)
            .output()
            .map_err(|e| format!("git failed to start: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                extra.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                files.insert(line.to_string());
            }
        }
    }
    Ok(files)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ignem-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match ignem_lint::default_root().canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ignem-lint: cannot resolve workspace root: {e}");
            return ExitCode::FAILURE;
        }
    };
    let full = if args.token_rules_only {
        ignem_lint::run_lint(&root)
    } else {
        ignem_lint::run_analysis(&root)
    };
    let full = match full {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ignem-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = if args.changed {
        match changed_files(&root) {
            Ok(files) => full.filter_to_files(&files),
            Err(e) => {
                eprintln!("ignem-lint: --changed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        full
    };
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    let json_path = args
        .json_out
        .unwrap_or_else(|| root.join("target").join("ignem-lint-report.json"));
    if let Some(parent) = json_path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    if let Err(e) = fs::write(&json_path, report.to_json()) {
        eprintln!("ignem-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Some(sarif_path) = &args.sarif_out {
        if let Some(parent) = sarif_path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(e) = fs::write(sarif_path, ignem_lint::to_sarif(&report.violations)) {
            eprintln!("ignem-lint: cannot write {}: {e}", sarif_path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "ignem-lint: {} files scanned, {} violation(s); report at {}",
        report.files_scanned,
        report.violations.len(),
        json_path.display()
    );
    // Baseline mode: the exit status reflects the diff, both directions.
    if let Some(baseline_path) = &args.baseline {
        let text = match fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "ignem-lint: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let baseline = match ignem_lint::parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ignem-lint: bad baseline: {e}");
                return ExitCode::FAILURE;
            }
        };
        let diff = ignem_lint::baseline_diff(&report, &baseline);
        for v in &diff.new {
            eprintln!(
                "ignem-lint: NEW finding not in baseline: {}:{} [{}] {}",
                v.file, v.line, v.rule, v.message
            );
        }
        for b in &diff.stale {
            eprintln!(
                "ignem-lint: STALE baseline entry (no longer fires — remove it): \
                 {}:{} [{}]",
                b.file, b.line, b.rule
            );
        }
        return if diff.is_clean() {
            println!(
                "ignem-lint: baseline check clean ({} accepted finding(s))",
                baseline.len()
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
