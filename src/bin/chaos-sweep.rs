//! Tier-2 chaos sweep: run a range of chaos seeds, fail on the first
//! invariant violation, and emit a minimized fault schedule for it.
//!
//! ```text
//! chaos-sweep [SEEDS] [--start N] [--out PATH]
//! ```
//!
//! Runs seeds `start..start + SEEDS` (default 256 from 0) through the
//! chaos harness with per-event validation and the full end-state
//! invariant suite (leak-freedom, memory conservation, completion,
//! event-stream consistency, ledger conservation, determinism via a
//! second run). On a violation the offending seed's fault plan is shrunk
//! to a 1-minimal schedule, written to `--out` (default
//! `chaos-minimized.txt`) for CI artifact upload, and the process exits
//! nonzero.

use std::process::ExitCode;

use ignem_cluster::chaos::{minimize_faults, run_chaos, ChaosConfig};

fn main() -> ExitCode {
    let mut seeds: u64 = 256;
    let mut start: u64 = 0;
    let mut out = String::from("chaos-minimized.txt");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--start" => start = parse(args.next(), "--start"),
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--help" | "-h" => usage("chaos-sweep [SEEDS] [--start N] [--out PATH]"),
            other => seeds = parse(Some(other.to_string()), "SEEDS"),
        }
    }

    let mut worst_leak = 0u64;
    for seed in start..start + seeds {
        let cfg = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        let first = run_chaos(&cfg);
        let verdict = first.check_invariants().and_then(|()| {
            let second = run_chaos(&cfg);
            if first.fingerprint == second.fingerprint {
                Ok(())
            } else {
                Err(format!(
                    "nondeterministic run (fingerprints {:#x} vs {:#x})",
                    first.fingerprint, second.fingerprint
                ))
            }
        });
        if let Err(violation) = verdict {
            eprintln!("seed {seed}: FAIL — {violation}");
            let description = match minimize_faults(&cfg) {
                Some(min) => min.describe(),
                // Determinism violations survive fault shrinking only by
                // accident; still record the full plan for the report.
                None => format!("seed {seed} violates: {violation}\n(full fault plan kept)\n"),
            };
            eprintln!("{description}");
            if let Err(e) = std::fs::write(&out, &description) {
                eprintln!("could not write {out}: {e}");
            }
            return ExitCode::FAILURE;
        }
        worst_leak = worst_leak.max(first.metrics.leaked_job_refs);
        if (seed - start + 1).is_multiple_of(64) {
            println!("…{} seeds clean", seed - start + 1);
        }
    }
    println!("{seeds} seeds clean (max leaked refs: {worst_leak})");
    ExitCode::SUCCESS
}

fn parse(value: Option<String>, what: &str) -> u64 {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{what} needs an unsigned integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
