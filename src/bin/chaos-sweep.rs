//! Tier-2 chaos sweep: run a range of chaos seeds, fail on the first
//! invariant violation, and emit a minimized fault schedule for it.
//!
//! ```text
//! chaos-sweep [SEEDS] [--start N] [--out PATH] [--jobs N] [--crashes N]
//! chaos-sweep --bench-out PATH [--bench-seeds N] [--jobs N]
//!             [--bench-baseline PATH]
//! chaos-sweep --bench-minimize-out PATH
//! chaos-sweep --bench-scale-out PATH [--scale-nodes N] [--scale-days N]
//!             [--scale-smoke-only]
//! ```
//!
//! Runs seeds `start..start + SEEDS` (default 256 from 0) through the
//! chaos harness with per-event validation and the full end-state
//! invariant suite (leak-freedom, memory conservation, completion,
//! event-stream consistency, ledger conservation, determinism via a
//! second run). On a violation the offending seed's fault plan is shrunk
//! to a 1-minimal schedule, written to `--out` (default
//! `chaos-minimized.txt`) for CI artifact upload, and the process exits
//! nonzero.
//!
//! `--crashes N` adds N [`Fault::NodeCrash`] draws to every seed's fault
//! plan (on top of the default palette), exercising the crash/recovery
//! protocol and the recovery-convergence invariant. The crash draws are
//! appended after the base draws, so `--crashes 0` (the default) sweeps
//! the same plans as before crash support existed.
//!
//! Seeds fan out over `--jobs` worker threads (default: available
//! parallelism) through [`ignem_cluster::sweep`], which merges results in
//! seed order — stdout, stderr, the exit code and the minimized-schedule
//! artifact are byte-identical to `--jobs 1`.
//!
//! `--bench-out` switches to bench mode: instead of sweeping for
//! violations it times representative scenarios (single fault-free world,
//! single chaos world, the SWIM run with and without the sim-time metrics
//! registry, and a jobs ∈ {1, 2, 4, `--jobs`} verification-sweep scaling
//! curve timed round-robin so host-frequency drift cannot bias one worker
//! count against another), writes
//! events/sec, total events and wall time per scenario as JSON to PATH,
//! and prints a short summary. `--bench-baseline OLD.json` embeds a
//! previously committed report under `"baseline"` and records the
//! speedups against it, so one file carries both sides of a before/after
//! comparison (see DESIGN.md §9 for how to read it).
//!
//! `--bench-scale-out` benches the datacenter-scale streaming path: a
//! Google-trace replay ([`ignem_workloads::stream`]) admitted lazily into
//! a cluster running the sweep heartbeat
//! ([`ClusterConfig::heartbeat_sweep`]). It times two scenarios — a
//! reduced `scale_smoke` world (1024 nodes, one simulated day, the CI
//! gate) and the full `scale_full` world (12 288 nodes, one simulated
//! month, the paper's §II datacenter) — recording events/sec, simulated
//! seconds per wall second, per-world resident bytes (RSS delta across
//! construction) and the process peak RSS. `--scale-smoke-only` skips the
//! full world so CI stays fast; `--scale-nodes`/`--scale-days` resize the
//! full scenario. The committed reference lives in `BENCH_scale.json`.
//!
//! `--bench-minimize-out` benches the fault minimizer on the pinned
//! seed-304 reference leak, interleaving the full-replay baseline
//! (`minimize_faults_replay`) with the snapshot-forked shrink
//! (`minimize_faults`). The per-scenario `events` field counts *simulated*
//! events, so CI can gate on the fork doing strictly less simulation work
//! for the same minimal schedule (the committed `BENCH_minimize.json`
//! holds the reference report).

use std::ops::ControlFlow;
use std::process::ExitCode;

use ignem_bench::wall_clock;
use ignem_cluster::chaos::{
    minimize_faults, minimize_faults_replay_with_stats, minimize_faults_with_stats, run_chaos,
    ChaosConfig,
};
use ignem_cluster::config::{ClusterConfig, FsMode};
use ignem_cluster::experiment::{run_swim_observed, run_swim_recorded};
use ignem_cluster::sweep::{default_jobs, sweep};
use ignem_cluster::world::{PlannedJob, World};
use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::MB;
use ignem_workloads::stream::{replay_files, JobArrival, ReplayConfig, ReplayStream};
use ignem_workloads::swim::{SwimConfig, SwimTrace};

fn main() -> ExitCode {
    let mut seeds: u64 = 256;
    let mut start: u64 = 0;
    let mut out = String::from("chaos-minimized.txt");
    let mut jobs: Option<usize> = None;
    let mut crashes: usize = 0;
    let mut bench_out: Option<String> = None;
    let mut bench_seeds: u64 = 256;
    let mut bench_baseline: Option<String> = None;
    let mut bench_minimize_out: Option<String> = None;
    let mut bench_scale_out: Option<String> = None;
    let mut scale_nodes: usize = 12_288;
    let mut scale_days: u64 = 30;
    let mut scale_smoke_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--start" => start = parse(args.next(), "--start"),
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--jobs" => jobs = Some(parse(args.next(), "--jobs").max(1) as usize),
            "--crashes" => crashes = parse(args.next(), "--crashes") as usize,
            "--bench-out" => {
                bench_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-out needs a path")),
                )
            }
            "--bench-seeds" => bench_seeds = parse(args.next(), "--bench-seeds"),
            "--bench-minimize-out" => {
                bench_minimize_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-minimize-out needs a path")),
                )
            }
            "--bench-scale-out" => {
                bench_scale_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-scale-out needs a path")),
                )
            }
            "--scale-nodes" => scale_nodes = parse(args.next(), "--scale-nodes").max(1) as usize,
            "--scale-days" => scale_days = parse(args.next(), "--scale-days").max(1),
            "--scale-smoke-only" => scale_smoke_only = true,
            "--bench-baseline" => {
                bench_baseline = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-baseline needs a path")),
                )
            }
            "--help" | "-h" => usage(
                "chaos-sweep [SEEDS] [--start N] [--out PATH] [--jobs N] [--crashes N]\n\
                 chaos-sweep --bench-out PATH [--bench-seeds N] [--jobs N] [--bench-baseline PATH]\n\
                 chaos-sweep --bench-minimize-out PATH\n\
                 chaos-sweep --bench-scale-out PATH [--scale-nodes N] [--scale-days N] \
                 [--scale-smoke-only]",
            ),
            other => seeds = parse(Some(other.to_string()), "SEEDS"),
        }
    }
    let jobs = jobs.unwrap_or_else(default_jobs);

    if let Some(path) = bench_minimize_out {
        return bench_minimize(&path);
    }
    if let Some(path) = bench_scale_out {
        return bench_scale(&path, scale_nodes, scale_days, scale_smoke_only);
    }
    if let Some(path) = bench_out {
        return bench(&path, bench_seeds, jobs, bench_baseline.as_deref());
    }

    let mut worst_leak = 0u64;
    let failed = sweep(
        start,
        seeds,
        jobs,
        move |seed| seed_outcome(seed, crashes),
        |seed, outcome| {
            if let Err(violation) = outcome.verdict {
                eprintln!("seed {seed}: FAIL — {violation}");
                let cfg = ChaosConfig {
                    seed,
                    crashes,
                    ..ChaosConfig::default()
                };
                let description = match minimize_faults(&cfg) {
                    Some(min) => min.describe(),
                    // Determinism violations survive fault shrinking only by
                    // accident; still record the full plan for the report.
                    None => format!("seed {seed} violates: {violation}\n(full fault plan kept)\n"),
                };
                eprintln!("{description}");
                if let Err(e) = std::fs::write(&out, &description) {
                    eprintln!("could not write {out}: {e}");
                }
                return ControlFlow::Break(());
            }
            worst_leak = worst_leak.max(outcome.leak);
            if (seed - start + 1).is_multiple_of(64) {
                println!("…{} seeds clean", seed - start + 1);
            }
            ControlFlow::Continue(())
        },
    );
    if failed.is_some() {
        return ExitCode::FAILURE;
    }
    println!("{seeds} seeds clean (max leaked refs: {worst_leak})");
    ExitCode::SUCCESS
}

/// Everything the sweep needs back from one verified seed.
struct SeedOutcome {
    leak: u64,
    /// Engine events processed across both verification runs.
    events: u64,
    verdict: Result<(), String>,
}

/// The per-seed verification: one validated chaos run, the invariant
/// suite, and a second run to confirm a bit-identical fingerprint.
fn seed_outcome(seed: u64, crashes: usize) -> SeedOutcome {
    let cfg = ChaosConfig {
        seed,
        crashes,
        ..ChaosConfig::default()
    };
    let first = run_chaos(&cfg);
    let leak = first.metrics.leaked_job_refs;
    let mut events = first.metrics.events_processed;
    let verdict = match first.check_invariants() {
        Err(e) => Err(e),
        Ok(()) => {
            let second = run_chaos(&cfg);
            events += second.metrics.events_processed;
            if first.fingerprint == second.fingerprint {
                Ok(())
            } else {
                Err(format!(
                    "nondeterministic run (fingerprints {:#x} vs {:#x})",
                    first.fingerprint, second.fingerprint
                ))
            }
        }
    };
    SeedOutcome {
        leak,
        events,
        verdict,
    }
}

// ---------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------

/// One timed bench scenario, serialized into `BENCH_sweep.json`.
struct Scenario {
    name: &'static str,
    seeds: Option<u64>,
    jobs: Option<usize>,
    runs: u64,
    events: u64,
    wall_secs: f64,
}

impl Scenario {
    fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self, calib_mb_per_sec: f64) -> String {
        let mut s = format!("    {{\"name\": \"{}\"", self.name);
        if let Some(n) = self.seeds {
            s.push_str(&format!(", \"seeds\": {n}"));
        }
        if let Some(j) = self.jobs {
            s.push_str(&format!(", \"jobs\": {j}"));
        }
        s.push_str(&format!(
            ", \"runs\": {}, \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \
             \"events_per_mb_hashed\": {:.3}}}",
            self.runs,
            self.events,
            self.wall_secs,
            self.events_per_sec(),
            if calib_mb_per_sec > 0.0 {
                self.events_per_sec() / calib_mb_per_sec
            } else {
                0.0
            }
        ));
        s
    }
}

/// The fault-free default world the sanitizer also double-runs: one
/// migrating job over four DFS files on the default cluster.
fn default_world() -> World {
    let files: Vec<(String, u64)> = (0..4)
        .map(|i| (format!("/in/part-{i}"), 512 * MB / 4))
        .collect();
    let mut spec = JobSpec::new(
        "bench-default",
        JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
    );
    spec.submit = SubmitOptions::with_migration();
    let plan = vec![PlannedJob::single(
        "bench-default",
        SimDuration::from_secs(1),
        spec,
    )];
    World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        vec![],
    )
}

/// Host CPU calibration: FNV-1a over a fixed pseudorandom buffer. Dividing
/// events/sec by this MB/s rate gives `events_per_mb_hashed`, a roughly
/// machine-independent throughput figure CI can compare across runners.
fn calibrate() -> (u64, f64) {
    const BUF: usize = 8 << 20;
    const PASSES: usize = 16;
    let mut buf = vec![0u8; BUF];
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for b in buf.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
    let t = wall_clock();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..PASSES {
        for &b in &buf {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(h);
    ((BUF * PASSES) as u64, secs)
}

/// Times `body` (which returns events processed) over `runs` repetitions.
fn time_scenario(name: &'static str, runs: u64, body: impl Fn() -> u64) -> Scenario {
    let t = wall_clock();
    let mut events = 0u64;
    for _ in 0..runs {
        events += body();
    }
    Scenario {
        name,
        seeds: None,
        jobs: None,
        runs,
        events,
        wall_secs: t.elapsed().as_secs_f64(),
    }
}

/// Times two bodies over `runs` repetitions each, alternating per
/// iteration so slow host-frequency drift (turbo decay, thermal
/// throttling) hits both scenarios equally. CI gates on the pair's
/// throughput ratio, which back-to-back blocks would bias against
/// whichever scenario runs second.
fn time_scenario_pair(
    a_name: &'static str,
    b_name: &'static str,
    runs: u64,
    a: impl Fn() -> u64,
    b: impl Fn() -> u64,
) -> (Scenario, Scenario) {
    let (mut a_events, mut b_events) = (0u64, 0u64);
    let (mut a_secs, mut b_secs) = (0f64, 0f64);
    for _ in 0..runs {
        let t = wall_clock();
        a_events += a();
        a_secs += t.elapsed().as_secs_f64();
        let t = wall_clock();
        b_events += b();
        b_secs += t.elapsed().as_secs_f64();
    }
    let scenario = |name, events, wall_secs| Scenario {
        name,
        seeds: None,
        jobs: None,
        runs,
        events,
        wall_secs,
    };
    (
        scenario(a_name, a_events, a_secs),
        scenario(b_name, b_events, b_secs),
    )
}

/// How many times each sweep scenario repeats its full seed range: single
/// sweeps finish in fractions of a second, so timing one pass would be
/// mostly noise.
const SWEEP_REPS: u64 = 8;

/// Times the full per-seed verification over `seeds` seeds once per
/// `(name, jobs)` entry, `SWEEP_REPS` rounds over, **interleaved**: each
/// round times every entry back to back before the next round starts, so
/// slow host-frequency drift hits all worker counts equally. The old
/// back-to-back blocks biased the comparison against whichever sweep ran
/// last — the committed `sweep_parallel_speedup: 0.938` "regression" was
/// exactly that bias, measured between two identical jobs=1 loops.
fn time_sweep_curve(seeds: u64, entries: &[(&'static str, usize)]) -> Vec<Scenario> {
    let mut events = vec![0u64; entries.len()];
    let mut walls = vec![0f64; entries.len()];
    let mut violations = 0u64;
    for rep in 0..SWEEP_REPS as usize {
        // Rotate the starting entry each rep so no scenario always runs
        // in the same position (e.g. right after a pool teardown, whose
        // reclamation would otherwise tax the same follower every time).
        for k in 0..entries.len() {
            let i = (rep + k) % entries.len();
            let (_, jobs) = entries[i];
            let t = wall_clock();
            sweep(
                0,
                seeds,
                jobs,
                |seed| seed_outcome(seed, 0),
                |_seed, outcome| {
                    events[i] += outcome.events;
                    if outcome.verdict.is_err() {
                        violations += 1;
                    }
                    ControlFlow::<()>::Continue(())
                },
            );
            walls[i] += t.elapsed().as_secs_f64();
        }
    }
    if violations > 0 {
        eprintln!("sweep curve: {violations} seed violation(s) during bench");
    }
    entries
        .iter()
        .zip(events)
        .zip(walls)
        .map(|((&(name, jobs), events), wall_secs)| Scenario {
            name,
            seeds: Some(seeds),
            jobs: Some(jobs),
            runs: 2 * seeds * SWEEP_REPS, // each seed runs twice (determinism check)
            events,
            wall_secs,
        })
        .collect()
}

/// Pulls `"field": <number>` out of the object that contains
/// `"name": "<scenario>"` in a bench report we wrote ourselves. Good
/// enough for our own single-line-per-scenario format; not a JSON parser.
fn scenario_number(text: &str, scenario: &str, field: &str) -> Option<f64> {
    let obj_start = text.find(&format!("\"name\": \"{scenario}\""))?;
    let obj = &text[obj_start..text[obj_start..].find('}').map(|e| obj_start + e)?];
    let at = obj.find(&format!("\"{field}\": "))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

// ---------------------------------------------------------------------
// Scale-out bench mode
// ---------------------------------------------------------------------

/// Seed of the replayed arrival stream — arbitrary but fixed, so the
/// committed `BENCH_scale.json` event counts are reproducible bit-for-bit.
const SCALE_STREAM_SEED: u64 = 0x5CA1_E001;

/// One timed scale-out scenario, serialized into `BENCH_scale.json`.
struct ScaleScenario {
    name: &'static str,
    nodes: usize,
    sim_days: u64,
    jobs: u64,
    jobs_completed: u64,
    events: u64,
    wall_secs: f64,
    sim_secs: f64,
    /// RSS growth across world construction + DFS preload — the resident
    /// footprint one streamed world costs the process.
    world_resident_bytes: u64,
    /// `VmHWM` after the run: the process-wide peak, including the run
    /// itself (metrics accumulation, occupancy change logs).
    peak_rss_bytes: u64,
}

impl ScaleScenario {
    fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self, calib_mb_per_sec: f64) -> String {
        format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"sim_days\": {}, \"jobs\": {}, \
             \"jobs_completed\": {}, \"events\": {}, \"wall_secs\": {:.6}, \
             \"events_per_sec\": {:.1}, \"events_per_mb_hashed\": {:.3}, \
             \"sim_secs\": {:.1}, \"sim_secs_per_wall_sec\": {:.1}, \
             \"world_resident_bytes\": {}, \"peak_rss_bytes\": {}}}",
            self.name,
            self.nodes,
            self.sim_days,
            self.jobs,
            self.jobs_completed,
            self.events,
            self.wall_secs,
            self.events_per_sec(),
            if calib_mb_per_sec > 0.0 {
                self.events_per_sec() / calib_mb_per_sec
            } else {
                0.0
            },
            self.sim_secs,
            if self.wall_secs > 0.0 {
                self.sim_secs / self.wall_secs
            } else {
                0.0
            },
            self.world_resident_bytes,
            self.peak_rss_bytes,
        )
    }
}

/// A `VmRSS:`/`VmHWM:`-style field of `/proc/self/status`, in bytes.
/// Returns 0 where procfs is unavailable (the JSON then records zeros
/// rather than the bench failing on a non-Linux host).
fn proc_status_bytes(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Adapter from a streamed [`JobArrival`] to the world's planned-job
/// shape. A plain `fn` so the mapped stream stays `Clone` (the arrival
/// source is cloned into world snapshots).
fn arrival_plan(a: JobArrival) -> PlannedJob {
    PlannedJob::single(a.name, a.submit, a.spec)
}

/// Builds and runs one streamed trace-replay world: `days` of Google-trace
/// arrivals over a `nodes`-node Ignem cluster with the cluster-wide
/// heartbeat sweep. The DFS namespace is preloaded (file creation draws
/// from the world rng); the jobs themselves are admitted lazily from the
/// pull-based stream, so no full job plan ever materialises.
fn run_scale(name: &'static str, nodes: usize, days: u64) -> ScaleScenario {
    let rcfg = ReplayConfig::default();
    let jobs = (rcfg.arrivals_per_sec * (days * 86_400) as f64).round() as u64;
    let rcfg = ReplayConfig {
        jobs: Some(jobs),
        ..rcfg
    };
    let cfg = ClusterConfig {
        nodes,
        heartbeat_sweep: true,
        ..ClusterConfig::default()
    };
    let rss_before = proc_status_bytes("VmRSS:");
    let files = replay_files(&rcfg, jobs);
    let stream = ReplayStream::new(rcfg, SCALE_STREAM_SEED)
        .map(arrival_plan as fn(JobArrival) -> PlannedJob);
    let mut world =
        World::new(cfg, FsMode::Ignem, &files, vec![], vec![]).with_arrivals(Box::new(stream));
    drop(files);
    let rss_built = proc_status_bytes("VmRSS:");
    let t = wall_clock();
    world.run_to_end();
    let wall_secs = t.elapsed().as_secs_f64();
    let events = world.events_processed();
    let sim_secs = world.now().as_secs_f64();
    let metrics = world.finalize_mut();
    ScaleScenario {
        name,
        nodes,
        sim_days: days,
        jobs,
        jobs_completed: metrics.jobs.len() as u64,
        events,
        wall_secs,
        sim_secs,
        world_resident_bytes: rss_built.saturating_sub(rss_before),
        peak_rss_bytes: proc_status_bytes("VmHWM:"),
    }
}

/// Benches the datacenter-scale streaming path and writes
/// `BENCH_scale.json`-shaped output: the reduced `scale_smoke` world CI
/// gates on, plus (unless `smoke_only`) the full 12k-node / one-month
/// world the success criterion of DESIGN.md §9 pins.
fn bench_scale(path: &str, nodes: usize, days: u64, smoke_only: bool) -> ExitCode {
    println!("bench: calibrating host…");
    let (calib_bytes, calib_secs) = calibrate();
    let calib_rate = calib_bytes as f64 / (1 << 20) as f64 / calib_secs;
    println!("bench: {calib_rate:.0} MB/s FNV-1a");

    let mut scenarios: Vec<ScaleScenario> = Vec::new();
    for (name, n, d) in [
        ("scale_smoke", 1024usize, 1u64),
        ("scale_full", nodes, days),
    ] {
        if smoke_only && name != "scale_smoke" {
            continue;
        }
        println!("bench: {name} — {n} nodes, {d} simulated day(s)…");
        let sc = run_scale(name, n, d);
        println!(
            "bench: {name} {} jobs, {} events in {:.1}s wall \
             ({:.0} events/sec, {:.0} sim-secs/sec, world {} MiB resident, peak RSS {} MiB)",
            sc.jobs_completed,
            sc.events,
            sc.wall_secs,
            sc.events_per_sec(),
            if sc.wall_secs > 0.0 {
                sc.sim_secs / sc.wall_secs
            } else {
                0.0
            },
            sc.world_resident_bytes >> 20,
            sc.peak_rss_bytes >> 20,
        );
        if sc.jobs_completed < sc.jobs {
            eprintln!(
                "bench: {name} completed only {} of {} admitted jobs",
                sc.jobs_completed, sc.jobs
            );
            return ExitCode::FAILURE;
        }
        scenarios.push(sc);
    }

    let mut json =
        String::from("{\n  \"schema\": 1,\n  \"generator\": \"chaos-sweep --bench-scale-out\",\n");
    json.push_str(&format!(
        "  \"calibration\": {{\"bytes\": {calib_bytes}, \"wall_secs\": {calib_secs:.6}, \
         \"mb_per_sec\": {calib_rate:.1}}},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        json.push_str(&sc.to_json(calib_rate));
        json.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench: wrote {path}");
    ExitCode::SUCCESS
}

/// Benches the fault minimizer on the pinned seed-304 reference leak:
/// the full-replay baseline vs the snapshot-forked shrink, interleaved.
/// Each scenario's `events` counts *simulated* events (for the fork, only
/// the suffixes after each restore point), which is the work the snapshot
/// machinery exists to avoid — CI gates fork ≤ replay on that axis.
fn bench_minimize(path: &str) -> ExitCode {
    println!("bench: calibrating host…");
    let (calib_bytes, calib_secs) = calibrate();
    let calib_rate = calib_bytes as f64 / (1 << 20) as f64 / calib_secs;
    println!("bench: {calib_rate:.0} MB/s FNV-1a");

    // The legacy lease-free configuration whose seed-304 leak the repo
    // pins; both minimizers must shrink it to the same single partition.
    let legacy = ChaosConfig {
        seed: 304,
        lease: None,
        ..ChaosConfig::default()
    };
    let schedules_agree = std::cell::Cell::new(true);
    let (replay, fork) = time_scenario_pair(
        "minimize_replay_304",
        "minimize_fork_304",
        20,
        || {
            let (min, stats) = minimize_faults_replay_with_stats(&legacy);
            schedules_agree.set(schedules_agree.get() & min.is_some_and(|m| m.faults.len() == 1));
            stats.simulated_events
        },
        || {
            let (min, stats) = minimize_faults_with_stats(&legacy);
            schedules_agree.set(schedules_agree.get() & min.is_some_and(|m| m.faults.len() == 1));
            stats.simulated_events
        },
    );
    if !schedules_agree.get() {
        eprintln!("bench: minimizer did not reproduce the pinned 1-fault schedule");
        return ExitCode::FAILURE;
    }
    let event_ratio = if replay.events > 0 {
        fork.events as f64 / replay.events as f64
    } else {
        0.0
    };
    let wall_speedup = if fork.wall_secs > 0.0 {
        replay.wall_secs / fork.wall_secs
    } else {
        0.0
    };
    println!(
        "bench: minimize_replay_304 {} simulated events in {:.2}s",
        replay.events, replay.wall_secs
    );
    println!(
        "bench: minimize_fork_304 {} simulated events in {:.2}s \
         ({event_ratio:.3}x events, {wall_speedup:.2}x wall)",
        fork.events, fork.wall_secs
    );

    let mut json = String::from(
        "{\n  \"schema\": 1,\n  \"generator\": \"chaos-sweep --bench-minimize-out\",\n",
    );
    json.push_str(&format!(
        "  \"calibration\": {{\"bytes\": {calib_bytes}, \"wall_secs\": {calib_secs:.6}, \
         \"mb_per_sec\": {calib_rate:.1}}},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    let scenarios = [&replay, &fork];
    for (i, sc) in scenarios.iter().enumerate() {
        json.push_str(&sc.to_json(calib_rate));
        json.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fork_event_ratio\": {event_ratio:.4},\n  \"fork_wall_speedup\": {wall_speedup:.3}\n}}\n"
    ));

    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench: wrote {path}");
    ExitCode::SUCCESS
}

fn bench(path: &str, bench_seeds: u64, jobs: usize, baseline: Option<&str>) -> ExitCode {
    println!("bench: calibrating host…");
    let (calib_bytes, calib_secs) = calibrate();
    let calib_rate = calib_bytes as f64 / (1 << 20) as f64 / calib_secs;
    println!("bench: {calib_rate:.0} MB/s FNV-1a");

    // World construction (DFS preload, per-node setup) is not the event
    // loop the scenario measures; building the template once and cloning
    // it per repetition keeps the per-run cost to the clone + the run.
    let template = default_world();
    let single_default = time_scenario("single_default", 1000, || {
        template.clone().run().events_processed
    });
    println!(
        "bench: single_default {:.0} events/sec",
        single_default.events_per_sec()
    );
    let cfg304 = ChaosConfig {
        seed: 304,
        ..ChaosConfig::default()
    };
    let single_chaos = time_scenario("single_chaos_304", 500, || {
        run_chaos(&cfg304).metrics.events_processed
    });
    println!(
        "bench: single_chaos_304 {:.0} events/sec",
        single_chaos.events_per_sec()
    );
    // The SWIM run — the workload the report's telemetry section actually
    // observes — with and without the sim-time metrics registry,
    // interleaved: CI gates the metrics overhead by comparing the two
    // scenarios' `events_per_mb_hashed` within one report. (The chaos
    // world above would be a poor denominator: at ~330 events per run its
    // timing is dominated by per-run setup, not by per-event cost.)
    let swim_cfg = ClusterConfig::default();
    let swim_trace = SwimTrace::generate(&SwimConfig::default(), &mut SimRng::new(7));
    let (single_swim, single_swim_metrics) = time_scenario_pair(
        "single_swim",
        "single_swim_metrics",
        20,
        || {
            run_swim_recorded(&swim_cfg, FsMode::Ignem, &swim_trace, 1 << 22)
                .0
                .events_processed
        },
        || {
            run_swim_observed(
                &swim_cfg,
                FsMode::Ignem,
                &swim_trace,
                1 << 22,
                SimDuration::from_secs(10),
            )
            .0
            .events_processed
        },
    );
    println!(
        "bench: single_swim {:.0} events/sec",
        single_swim.events_per_sec()
    );
    println!(
        "bench: single_swim_metrics {:.0} events/sec",
        single_swim_metrics.events_per_sec()
    );
    // The scaling curve: jobs=1 (the inline serial loop `sweep` routes
    // single-worker requests to), 2 and 4 pooled workers, and the
    // requested `--jobs` count — all interleaved within each timing round.
    let curve = time_sweep_curve(
        bench_seeds,
        &[
            ("sweep_serial", 1),
            ("sweep_jobs2", 2),
            ("sweep_jobs4", 4),
            ("sweep_parallel", jobs),
        ],
    );
    for sc in &curve {
        println!(
            "bench: {} {} seeds in {:.2}s ({} jobs)",
            sc.name,
            bench_seeds,
            sc.wall_secs,
            sc.jobs.unwrap_or(1)
        );
    }
    let (sweep_serial, sweep_parallel) = (&curve[0], &curve[curve.len() - 1]);
    let parallel_speedup = if sweep_parallel.wall_secs > 0.0 {
        sweep_serial.wall_secs / sweep_parallel.wall_secs
    } else {
        0.0
    };

    let mut json =
        String::from("{\n  \"schema\": 1,\n  \"generator\": \"chaos-sweep --bench-out\",\n");
    json.push_str(&format!(
        "  \"jobs\": {jobs},\n  \"bench_seeds\": {bench_seeds},\n"
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"bytes\": {calib_bytes}, \"wall_secs\": {calib_secs:.6}, \
         \"mb_per_sec\": {calib_rate:.1}}},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    let mut scenarios: Vec<&Scenario> = vec![
        &single_default,
        &single_chaos,
        &single_swim,
        &single_swim_metrics,
    ];
    scenarios.extend(curve.iter());
    for (i, sc) in scenarios.iter().enumerate() {
        json.push_str(&sc.to_json(calib_rate));
        json.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sweep_parallel_speedup\": {parallel_speedup:.3}"
    ));

    if let Some(base_path) = baseline {
        match std::fs::read_to_string(base_path) {
            Ok(old) => {
                let old = old.trim();
                // Speedups vs the embedded baseline: wall-clock for the
                // sweep (what CI budgets), events/sec for single runs
                // (per-event dispatch cost). Raw ratios compare the two
                // hosts as-is; `events_per_mb_hashed` ratios divide each
                // side by its own calibration rate first, so they stay
                // meaningful when the baseline was recorded on a faster
                // (or merely less noisy) machine phase.
                let sweep_speedup = scenario_number(old, "sweep_serial", "wall_secs")
                    .map(|w| w / sweep_parallel.wall_secs.max(1e-9));
                let single_speedup = scenario_number(old, "single_default", "events_per_sec")
                    .map(|r| single_default.events_per_sec() / r.max(1e-9));
                let chaos_speedup = scenario_number(old, "single_chaos_304", "events_per_sec")
                    .map(|r| single_chaos.events_per_sec() / r.max(1e-9));
                let norm = |name: &str, sc: &Scenario| {
                    scenario_number(old, name, "events_per_mb_hashed")
                        .map(|r| sc.events_per_sec() / calib_rate.max(1e-9) / r.max(1e-9))
                };
                let single_norm = norm("single_default", &single_default);
                let chaos_norm = norm("single_chaos_304", &single_chaos);
                json.push_str(",\n  \"vs_baseline\": {");
                json.push_str(&format!(
                    "\"sweep_wall_speedup\": {:.3}, \"single_default_events_per_sec_ratio\": {:.3}, \
                     \"single_chaos_304_events_per_sec_ratio\": {:.3}, \
                     \"single_default_events_per_mb_hashed_ratio\": {:.3}, \
                     \"single_chaos_304_events_per_mb_hashed_ratio\": {:.3}}}",
                    sweep_speedup.unwrap_or(0.0),
                    single_speedup.unwrap_or(0.0),
                    chaos_speedup.unwrap_or(0.0),
                    single_norm.unwrap_or(0.0),
                    chaos_norm.unwrap_or(0.0)
                ));
                json.push_str(",\n  \"baseline\": ");
                json.push_str(old);
                if let Some(s) = sweep_speedup {
                    println!("bench: sweep wall-clock speedup vs baseline: {s:.2}x");
                }
                if let (Some(raw), Some(norm)) = (single_speedup, single_norm) {
                    println!(
                        "bench: single-run events/sec vs baseline: {raw:.2}x raw, \
                         {norm:.2}x calibration-normalized"
                    );
                }
                if let (Some(raw), Some(norm)) = (chaos_speedup, chaos_norm) {
                    println!(
                        "bench: single chaos run events/sec vs baseline: {raw:.2}x raw, \
                         {norm:.2}x calibration-normalized"
                    );
                }
            }
            Err(e) => eprintln!("could not read baseline {base_path}: {e}"),
        }
    }
    json.push_str("\n}\n");

    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench: wrote {path}");
    ExitCode::SUCCESS
}

fn parse(value: Option<String>, what: &str) -> u64 {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{what} needs an unsigned integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
