//! # ignem-cluster — the integrated cluster simulator
//!
//! Wires every substrate (storage, network, DFS, Ignem, compute) into one
//! deterministic discrete-event simulation of the paper's 8-node testbed
//! and runs workloads under the three file-system configurations
//! ([`config::FsMode`]): plain HDFS, HDFS-Inputs-in-RAM (vmtouch upper
//! bound), and Ignem.
//!
//! ```
//! use ignem_cluster::prelude::*;
//! use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
//! use ignem_simcore::time::SimDuration;
//!
//! let mut spec = JobSpec::new("demo", JobInput::DfsFiles(vec!["/in".into()]));
//! spec.submit = SubmitOptions::with_migration();
//! let files = vec![("/in".to_string(), 256u64 << 20)];
//! let plan = vec![PlannedJob::single("demo", SimDuration::from_secs(1), spec)];
//!
//! let world = World::new(ClusterConfig::default(), FsMode::Ignem, &files, plan, vec![]);
//! let metrics = world.run();
//! assert_eq!(metrics.plans.len(), 1);
//! assert!(metrics.plans[0].duration > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod columns;
pub mod config;
pub mod experiment;
pub mod explain;
pub mod metrics;
pub mod sanitizer;
pub mod sweep;
pub mod world;

/// Commonly used items.
pub mod prelude {
    pub use crate::chaos::{
        minimize_faults, run_chaos, run_chaos_with, ChaosConfig, ChaosReport, MinimizedSchedule,
    };
    pub use crate::config::{ClusterConfig, FsMode};
    pub use crate::explain::{
        BlockVerdict, JobLeadTime, LeakRecord, LossCause, TelemetryReport, Verdict,
    };
    pub use crate::metrics::{
        BlockRead, JobResult, LedgerEntry, PlanResult, ReadKind, ResidencyLedger, RunMetrics,
    };
    pub use crate::sanitizer::{bisect_divergence, double_run, Divergence, DoubleRun};
    pub use crate::sweep::{default_jobs, parallel_map, sweep};
    pub use crate::world::{ArrivalSource, Fault, PlannedJob, World};
}

pub use config::{ClusterConfig, FsMode};
pub use metrics::{ReadKind, RunMetrics};
pub use world::{Fault, PlannedJob, World};
