//! Cluster configuration: the paper's 8-node testbed by default.

use ignem_compute::config::ComputeConfig;
use ignem_core::master::MasterConfig;
use ignem_core::slave::IgnemConfig;
use ignem_dfs::namenode::DfsConfig;
use ignem_netsim::rpc::RpcConfig;
use ignem_netsim::NetConfig;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::GB;
use ignem_storage::device::DeviceProfile;

/// Which file-system configuration an experiment runs under (paper §IV-A):
/// plain HDFS, HDFS with all inputs force-locked in RAM via vmtouch (the
/// upper bound), or HDFS + Ignem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsMode {
    /// Default HDFS: cold inputs are read from disk.
    Hdfs,
    /// *HDFS-Inputs-in-RAM*: every input replica pinned in memory before
    /// the workload starts (vmtouch) — the speedup upper bound.
    HdfsInputsInRam,
    /// HDFS extended with Ignem migration.
    Ignem,
}

impl std::fmt::Display for FsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsMode::Hdfs => write!(f, "HDFS"),
            FsMode::HdfsInputsInRam => write!(f, "HDFS-Inputs-in-RAM"),
            FsMode::Ignem => write!(f, "Ignem"),
        }
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of servers (paper: 8, every one a DataNode/slave).
    pub nodes: usize,
    /// The data disk on each server.
    pub disk: DeviceProfile,
    /// The memory read path (the mmap/short-circuit pipeline).
    pub ram: DeviceProfile,
    /// RAM capacity per server (paper: 128 GB).
    pub mem_capacity: u64,
    /// Network fabric parameters (paper: 10 Gbps).
    pub net: NetConfig,
    /// Control-plane RPC reliability (drop/duplicate/jitter). The default
    /// is perfectly reliable, so fault-free runs are unchanged.
    pub rpc: RpcConfig,
    /// Interval of the master's reference-list cleanup sweep — the backstop
    /// that reclaims references a slave acquired from a command delivered
    /// *after* a master failover purged its state. Zero disables it.
    pub cleanup_sweep: SimDuration,
    /// DFS parameters (64 MB blocks, 3× replication).
    pub dfs: DfsConfig,
    /// Ignem slave parameters.
    pub ignem: IgnemConfig,
    /// Ignem master parameters.
    pub master: MasterConfig,
    /// Scheduler parameters.
    pub compute: ComputeConfig,
    /// Retain disk-read blocks in the serving node's page cache with LRU
    /// eviction (a PACMan-style hot-data cache). Off by default — the paper
    /// flushes caches before runs; the `extension-caching` experiment turns
    /// it on to show why caching alone cannot help singly-read data.
    pub cache_reads: bool,
    /// Replace per-node heartbeat chains with one cluster-wide sweep per
    /// heartbeat interval (rotating start node, short-circuited when no
    /// tasks are pending). At 12k nodes per-node chains alone are ~10^10
    /// events per simulated month; the sweep makes datacenter-scale runs
    /// feasible. Off by default: the paper-scale worlds keep per-node
    /// beats so every pinned stream is untouched.
    pub heartbeat_sweep: bool,
    /// Root seed: every run with the same seed and inputs is bit-identical.
    pub seed: u64,
}

impl Default for ClusterConfig {
    /// The paper's testbed: 8 servers, 1 HDD + 128 GB RAM + 10 GbE each,
    /// 64 MB blocks, 3× replication, 3 s heartbeats, 12 task slots per node
    /// (one per hyperthread of the Xeon E5-1650).
    fn default() -> Self {
        ClusterConfig {
            nodes: 8,
            disk: DeviceProfile::hdd(),
            ram: DeviceProfile::ram(),
            mem_capacity: 128 * GB,
            net: NetConfig::default(),
            rpc: RpcConfig::default(),
            cleanup_sweep: SimDuration::from_secs(30),
            dfs: DfsConfig::default(),
            ignem: IgnemConfig::default(),
            master: MasterConfig::default(),
            compute: ComputeConfig::default(),
            cache_reads: false,
            heartbeat_sweep: false,
            seed: 0x16E3,
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero nodes or zero memory.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "cluster needs nodes");
        assert!(self.mem_capacity > 0, "zero memory");
        self.rpc.validate();
        self.disk.validate();
        self.ram.validate();
        self.compute.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed() {
        let c = ClusterConfig::default();
        c.validate();
        assert_eq!(c.nodes, 8);
        assert_eq!(c.mem_capacity, 128 * GB);
        assert_eq!(c.dfs.replication, 3);
        assert_eq!(c.compute.slots_per_node, 12);
    }

    #[test]
    fn fs_mode_displays() {
        assert_eq!(FsMode::Hdfs.to_string(), "HDFS");
        assert_eq!(FsMode::HdfsInputsInRam.to_string(), "HDFS-Inputs-in-RAM");
        assert_eq!(FsMode::Ignem.to_string(), "Ignem");
    }
}
