//! Pre-assembled experiments: the paper's workloads turned into workload
//! plans and executed under each file-system configuration.
//!
//! Every table and figure in §IV is regenerated through these functions
//! (the `ignem-bench` crate and the examples call them; `EXPERIMENTS.md`
//! records the outputs).

use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_core::command::EvictionMode;
use ignem_core::policy::Policy;
use ignem_simcore::rng::SimRng;
use ignem_simcore::telemetry::FlightRecorder;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::GB;
use ignem_workloads::jobs::{sort_job, wordcount_job};
use ignem_workloads::swim::{SwimJob, SwimTrace};
use ignem_workloads::tpcds::HiveQuery;

use crate::config::{ClusterConfig, FsMode};
use crate::metrics::RunMetrics;
use crate::sweep;
use crate::world::{PlannedJob, World};

/// The three-configuration comparison the paper's tables report.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Plain HDFS (baseline).
    pub hdfs: RunMetrics,
    /// HDFS + Ignem.
    pub ignem: RunMetrics,
    /// HDFS-Inputs-in-RAM (upper bound).
    pub ram: RunMetrics,
}

impl Comparison {
    /// Runs the same plan under all three configurations. The three worlds
    /// are independent, so they run on the [`sweep::parallel_map`] pool
    /// ([`sweep::default_jobs`] threads); results come back in
    /// configuration order regardless of which finishes first.
    pub fn run(
        cfg: &ClusterConfig,
        files: &[(String, u64)],
        plan_for: impl Fn(bool) -> Vec<PlannedJob> + Sync,
    ) -> Comparison {
        let modes = vec![FsMode::Hdfs, FsMode::Ignem, FsMode::HdfsInputsInRam];
        let mut runs = sweep::parallel_map(modes, sweep::default_jobs(), |mode| {
            let migrate = matches!(mode, FsMode::Ignem);
            World::new(cfg.clone(), mode, files, plan_for(migrate), vec![]).run()
        })
        .into_iter();
        Comparison {
            hdfs: runs.next().expect("hdfs run"),
            ignem: runs.next().expect("ignem run"),
            ram: runs.next().expect("ram run"),
        }
    }
}

/// Converts a SWIM trace entry into a [`JobSpec`] over its dedicated input
/// file. SWIM mappers "spend most of their time reading and perform very
/// little computation" (§IV-C3), hence the high map CPU rate.
pub fn swim_spec(idx: usize, job: &SwimJob, migrate: bool) -> JobSpec {
    swim_spec_with(idx, job, migrate, EvictionMode::Explicit)
}

/// [`swim_spec`] with an explicit eviction mode (for the implicit-eviction
/// ablation).
pub fn swim_spec_with(idx: usize, job: &SwimJob, migrate: bool, mode: EvictionMode) -> JobSpec {
    let mut spec = JobSpec::new(
        format!("swim-{idx}"),
        JobInput::DfsFiles(vec![swim_path(idx)]),
    );
    spec.shuffle_bytes = job.shuffle_bytes;
    spec.output_bytes = job.output_bytes;
    spec.reducers = if job.shuffle_bytes > 0 || job.output_bytes > 0 {
        ((job.shuffle_bytes.max(job.output_bytes) / (128 << 20)) as usize).clamp(1, 16)
    } else {
        0
    };
    spec.map_cpu_rate = 300e6;
    spec.reduce_cpu_rate = 100e6;
    if migrate {
        spec.submit = SubmitOptions {
            migrate: Some(mode),
            ..SubmitOptions::default()
        };
    }
    spec
}

fn swim_path(idx: usize) -> String {
    format!("/swim/job-{idx}")
}

/// The DFS files backing a SWIM trace.
pub fn swim_files(trace: &SwimTrace) -> Vec<(String, u64)> {
    trace
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (swim_path(i), j.input_bytes))
        .collect()
}

/// The workload plan for a SWIM trace.
pub fn swim_plan(trace: &SwimTrace, migrate: bool) -> Vec<PlannedJob> {
    swim_plan_with(trace, migrate, EvictionMode::Explicit)
}

/// [`swim_plan`] with an explicit eviction mode.
pub fn swim_plan_with(trace: &SwimTrace, migrate: bool, mode: EvictionMode) -> Vec<PlannedJob> {
    trace
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            PlannedJob::single(
                format!("swim-{i}"),
                j.submit,
                swim_spec_with(i, j, migrate, mode),
            )
        })
        .collect()
}

/// Runs the SWIM workload under one configuration (Tables I–II,
/// Figs. 5–7). `policy_override` switches the §IV-C5 prioritization
/// ablation.
pub fn run_swim(
    cfg: &ClusterConfig,
    mode: FsMode,
    trace: &SwimTrace,
    policy_override: Option<Policy>,
) -> RunMetrics {
    let mut cfg = cfg.clone();
    if let Some(p) = policy_override {
        cfg.ignem.policy = p;
    }
    run_swim_with(&cfg, mode, trace, EvictionMode::Explicit)
}

/// Runs the SWIM workload with full configuration control (ablations:
/// eviction mode, migration concurrency, replica count, heartbeats are all
/// set through `cfg`).
pub fn run_swim_with(
    cfg: &ClusterConfig,
    mode: FsMode,
    trace: &SwimTrace,
    evict_mode: EvictionMode,
) -> RunMetrics {
    let files = swim_files(trace);
    let migrate = mode == FsMode::Ignem;
    World::new(
        cfg.clone(),
        mode,
        &files,
        swim_plan_with(trace, migrate, evict_mode),
        vec![],
    )
    .run()
}

/// Runs the SWIM workload like [`run_swim`], but with a
/// [`FlightRecorder`] of the given capacity installed; returns the
/// metrics together with the recorder, so callers can feed
/// [`FlightRecorder::events`] to the
/// [explainer](crate::explain::TelemetryReport) or export
/// [`FlightRecorder::to_jsonl`].
pub fn run_swim_recorded(
    cfg: &ClusterConfig,
    mode: FsMode,
    trace: &SwimTrace,
    capacity: usize,
) -> (RunMetrics, FlightRecorder) {
    let files = swim_files(trace);
    let migrate = mode == FsMode::Ignem;
    let recorder = FlightRecorder::new(capacity);
    let metrics = World::new(
        cfg.clone(),
        mode,
        &files,
        swim_plan_with(trace, migrate, EvictionMode::Explicit),
        vec![],
    )
    .with_telemetry(Box::new(recorder.clone()))
    .run();
    (metrics, recorder)
}

/// Runs the SWIM workload like [`run_swim_recorded`], but with a sim-time
/// [`MetricsRegistry`](ignem_simcore::metrics::MetricsRegistry) of the
/// given window attached as well; returns the metrics, the recorder, and
/// the windowed metrics report. The registry is purely observational —
/// the event stream and [`RunMetrics`] are bit-identical to an
/// unobserved run.
pub fn run_swim_observed(
    cfg: &ClusterConfig,
    mode: FsMode,
    trace: &SwimTrace,
    capacity: usize,
    window: ignem_simcore::time::SimDuration,
) -> (
    RunMetrics,
    FlightRecorder,
    ignem_simcore::metrics::MetricsReport,
) {
    let files = swim_files(trace);
    let migrate = mode == FsMode::Ignem;
    let recorder = FlightRecorder::new(capacity);
    let registry = ignem_simcore::metrics::MetricsRegistry::new(window);
    let metrics = World::new(
        cfg.clone(),
        mode,
        &files,
        swim_plan_with(trace, migrate, EvictionMode::Explicit),
        vec![],
    )
    .with_telemetry(Box::new(recorder.clone()))
    .with_metrics(registry.clone())
    .run();
    let report = registry.finish(metrics.makespan);
    (metrics, recorder, report)
}

/// Runs the SWIM workload with a [`HostProfiler`] attached, attributing
/// the engine's host wall-clock time to event-type buckets. The profiler
/// never influences the simulation — it only measures how long the host
/// spends handling each event kind — so the returned [`RunMetrics`] are
/// bit-identical to an unprofiled run.
///
/// [`HostProfiler`]: ignem_simcore::profile::HostProfiler
pub fn run_swim_profiled(
    cfg: &ClusterConfig,
    mode: FsMode,
    trace: &SwimTrace,
    profiler: ignem_simcore::profile::HostProfiler,
) -> RunMetrics {
    let files = swim_files(trace);
    let migrate = mode == FsMode::Ignem;
    World::new(
        cfg.clone(),
        mode,
        &files,
        swim_plan_with(trace, migrate, EvictionMode::Explicit),
        vec![],
    )
    .with_profiler(profiler)
    .run()
}

/// Runs the 40 GB sort job (Table III).
pub fn run_sort(cfg: &ClusterConfig, mode: FsMode, input_bytes: u64) -> RunMetrics {
    let parts = 8;
    let files: Vec<(String, u64)> = (0..parts)
        .map(|i| (format!("/sort/part-{i}"), input_bytes / parts as u64))
        .collect();
    let mut spec = sort_job(
        files.iter().map(|(p, _)| p.clone()).collect(),
        input_bytes,
        cfg.nodes * cfg.compute.slots_per_node,
    );
    if mode == FsMode::Ignem {
        spec.submit = SubmitOptions::with_migration();
    }
    let plan = vec![PlannedJob::single("sort", SimDuration::from_secs(1), spec)];
    World::new(cfg.clone(), mode, &files, plan, vec![]).run()
}

/// Runs wordcount over `gb` gigabytes with an optional artificial
/// lead-time (Fig. 8's *Ignem+10s*).
pub fn run_wordcount(
    cfg: &ClusterConfig,
    mode: FsMode,
    gb: u64,
    extra_lead_time: SimDuration,
) -> RunMetrics {
    let input = gb * GB;
    let parts = 4;
    let files: Vec<(String, u64)> = (0..parts)
        .map(|i| (format!("/wc/part-{i}"), input / parts as u64))
        .collect();
    let mut spec = wordcount_job(files.iter().map(|(p, _)| p.clone()).collect(), input);
    if mode == FsMode::Ignem {
        spec.submit = SubmitOptions::with_migration();
    }
    spec.submit.extra_lead_time = extra_lead_time;
    let plan = vec![PlannedJob::single(
        "wordcount",
        SimDuration::from_secs(1),
        spec,
    )];
    World::new(cfg.clone(), mode, &files, plan, vec![]).run()
}

/// Runs the Fig. 9 Hive query set sequentially (each query waits for the
/// previous one, as Hive CLI sessions do). Returns the run metrics; per-
/// query durations are in `metrics.plans`, in query order.
pub fn run_hive(cfg: &ClusterConfig, mode: FsMode, queries: &[HiveQuery]) -> RunMetrics {
    let files: Vec<(String, u64)> = queries
        .iter()
        .map(|q| (q.table_path(), q.input_bytes))
        .collect();
    // Sequential submission: stagger by a generous estimate and let each
    // query's plan carry all its stages. To keep queries strictly
    // sequential without coupling to runtime, submissions are spaced far
    // apart; the report uses per-query durations, not the makespan.
    let mut plans = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let stages = q.jobs(mode == FsMode::Ignem);
        plans.push(PlannedJob {
            name: q.name(),
            submit: SimDuration::from_secs(600 * i as u64),
            stages,
        });
    }
    World::new(cfg.clone(), mode, &files, plans, vec![]).run()
}

/// The related-work comparison workload (paper §V): `sets` distinct file
/// sets, each read by **two** jobs (a first cold read and a later repeat).
/// A PACMan-style LRU cache (`cfg.cache_reads`) can only help the repeats;
/// Ignem helps both. Returns `(first_reads_mean, repeat_reads_mean)` job
/// durations.
pub fn run_rereads(
    cfg: &ClusterConfig,
    mode: FsMode,
    sets: usize,
    bytes_per_set: u64,
) -> (RunMetrics, f64, f64) {
    let files: Vec<(String, u64)> = (0..sets)
        .map(|i| (format!("/rr/set-{i}"), bytes_per_set))
        .collect();
    let mut plans = Vec::new();
    // First-read jobs, then repeat jobs over the same files.
    for round in 0..2 {
        for (i, (path, _)) in files.iter().enumerate() {
            let mut spec = JobSpec::new(
                format!("r{round}-{i}"),
                JobInput::DfsFiles(vec![path.clone()]),
            );
            spec.map_cpu_rate = 300e6;
            if mode == FsMode::Ignem {
                spec.submit = SubmitOptions::with_migration();
            }
            plans.push(PlannedJob::single(
                format!("r{round}-{i}"),
                SimDuration::from_secs(5 + (round * sets + i) as u64 * 30),
                spec,
            ));
        }
    }
    let m = World::new(cfg.clone(), mode, &files, plans, vec![]).run();
    let mean_of = |round: &str| -> f64 {
        let v: Vec<f64> = m
            .plans
            .iter()
            .filter(|p| p.name.starts_with(round))
            .map(|p| p.duration)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let first = mean_of("r0-");
    let repeat = mean_of("r1-");
    (m, first, repeat)
}

/// Runs an iterative ML job (paper §I's motivation: cold reads inflate the
/// first iteration). Per-iteration durations land in `metrics.jobs`, in
/// stage order.
pub fn run_iterative(
    cfg: &ClusterConfig,
    mode: FsMode,
    job: &ignem_workloads::iterative::IterativeJob,
) -> RunMetrics {
    let parts = 4u64;
    let files: Vec<(String, u64)> = job
        .input_files
        .iter()
        .map(|p| (p.clone(), job.input_bytes / job.input_files.len() as u64))
        .collect();
    let _ = parts;
    let plan = vec![PlannedJob {
        name: job.name.clone(),
        submit: SimDuration::from_secs(1),
        stages: job.stages(mode == FsMode::Ignem),
    }];
    World::new(cfg.clone(), mode, &files, plan, vec![]).run()
}

/// A micro-workload of concurrent block-read-heavy mappers used for
/// Figs. 1–2: `jobs` single-wave map-only jobs arriving together, so block
/// reads contend the way the SWIM workload makes them contend.
pub fn run_read_micro(
    cfg: &ClusterConfig,
    mode: FsMode,
    jobs: usize,
    blocks_per_job: u64,
) -> RunMetrics {
    let block = cfg.dfs.block_size;
    let files: Vec<(String, u64)> = (0..jobs)
        .map(|i| (format!("/micro/job-{i}"), block * blocks_per_job))
        .collect();
    let mut rng = SimRng::new(cfg.seed ^ 0xF16);
    let plans: Vec<PlannedJob> = (0..jobs)
        .map(|i| {
            let mut spec = JobSpec::new(
                format!("micro-{i}"),
                JobInput::DfsFiles(vec![files[i].0.clone()]),
            );
            spec.map_cpu_rate = 300e6;
            if mode == FsMode::Ignem {
                spec.submit = SubmitOptions::with_migration();
            }
            // Slight arrival jitter, like trace jobs.
            let jitter = SimDuration::from_secs_f64(rng.uniform_range(0.0, 2.0));
            PlannedJob::single(format!("micro-{i}"), jitter, spec)
        })
        .collect();
    World::new(cfg.clone(), mode, &files, plans, vec![]).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::units::MB;
    use ignem_workloads::swim::SwimConfig;

    fn small_trace() -> SwimTrace {
        let cfg = SwimConfig {
            jobs: 12,
            total_input: 4 * GB,
            largest: GB,
            ..SwimConfig::default()
        };
        SwimTrace::generate(&cfg, &mut SimRng::new(7))
    }

    #[test]
    fn swim_comparison_orders_correctly() {
        let cfg = ClusterConfig::default();
        let trace = small_trace();
        let hdfs = run_swim(&cfg, FsMode::Hdfs, &trace, None);
        let ignem = run_swim(&cfg, FsMode::Ignem, &trace, None);
        let ram = run_swim(&cfg, FsMode::HdfsInputsInRam, &trace, None);
        assert_eq!(hdfs.plans.len(), 12);
        assert_eq!(ignem.plans.len(), 12);
        let (h, i, r) = (
            hdfs.mean_plan_duration(),
            ignem.mean_plan_duration(),
            ram.mean_plan_duration(),
        );
        assert!(r <= i && i <= h, "RAM {r} <= Ignem {i} <= HDFS {h}");
        assert!(ignem.memory_read_fraction() > 0.0);
    }

    #[test]
    fn sort_experiment_runs() {
        let cfg = ClusterConfig::default();
        let m = run_sort(&cfg, FsMode::Hdfs, 2 * GB);
        assert_eq!(m.plans.len(), 1);
        assert!(!m.reduce_task_secs.is_empty());
    }

    #[test]
    fn wordcount_lead_time_hurts_small_inputs() {
        let cfg = ClusterConfig::default();
        let plain = run_wordcount(&cfg, FsMode::Ignem, 1, SimDuration::ZERO);
        let delayed = run_wordcount(&cfg, FsMode::Ignem, 1, SimDuration::from_secs(10));
        // At 1 GB the sleep dominates (Fig. 8's Ignem+10s < HDFS point).
        assert!(
            delayed.mean_plan_duration() > plain.mean_plan_duration() + 8.0,
            "sleep must count against the job: {} vs {}",
            delayed.mean_plan_duration(),
            plain.mean_plan_duration()
        );
    }

    #[test]
    fn hive_runs_all_queries() {
        let cfg = ClusterConfig::default();
        let queries: Vec<HiveQuery> = ignem_workloads::tpcds::fig9_queries()
            .into_iter()
            .take(3)
            .collect();
        let m = run_hive(&cfg, FsMode::Ignem, &queries);
        assert_eq!(m.plans.len(), 3);
        // Stage jobs exceed query count (multi-stage queries).
        assert!(m.jobs.len() > 3);
    }

    #[test]
    fn read_micro_produces_block_reads() {
        let cfg = ClusterConfig::default();
        let m = run_read_micro(&cfg, FsMode::Hdfs, 6, 4);
        assert_eq!(m.block_reads.len(), 24);
        assert!(m.block_reads.iter().all(|r| r.bytes == 64 * 1024 * 1024));
        let _ = 512 * MB; // keep units import honest
    }
}
