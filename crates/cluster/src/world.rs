//! The integrated cluster simulation.
//!
//! [`World`] wires every substrate into one deterministic discrete-event
//! simulation of the paper's testbed: per-node disks and memory stores, the
//! network fabric, the HDFS-like NameNode, the Ignem master and slaves, and
//! the heartbeat-driven compute framework. A run executes a *workload plan*
//! (a list of [`PlannedJob`]s, each one or more MapReduce stages) under one
//! of the three file-system configurations and produces [`RunMetrics`].
//!
//! ## Where lead-time comes from
//!
//! Exactly the paper's §II-C sources, modelled explicitly: the submitter
//! overhead + optional artificial sleep, the wait for a node heartbeat
//! (3 s interval), task queueing behind busy slots, and per-task launch
//! overhead. Ignem migrates during all of them.
//!
//! ## Failure injection
//!
//! Faults can be scheduled before the run: master failover (slaves purge
//! reference lists), slave process restarts (migrated data discarded, reads
//! cancelled), whole-node failures (tasks re-executed elsewhere, replicas
//! dropped from location queries), **node crashes with recovery** (volatile
//! RAM wiped, NIC dark for the outage, then restart under a fresh
//! incarnation with re-registration, block report and re-ignition — see
//! *Crash and recovery* below), job kills (exercising the
//! threshold-triggered dead-job cleanup), and **gray faults**: degraded
//! disks, paused nodes and control-plane partitions.
//!
//! ## Crash and recovery
//!
//! A [`Fault::NodeCrash`] kills the whole server like [`Fault::NodeFail`]
//! (volatile MemStore wiped — pinned inputs, page cache and migrated
//! blocks alike — in-flight IO and transfers cancelled, tasks re-executed
//! elsewhere, NIC cut) but schedules a restart after the outage. On
//! restart the slave comes back under a fresh
//! [`Incarnation`](ignem_netsim::rpc::Incarnation) and re-registers with
//! the master over the lossy channel (retried with backoff); the
//! registration doubles as a full block report from the node's durable
//! disk, so the NameNode marks its replicas readable again. The master
//! purges every outbox entry and job-routing record addressed to the dead
//! incarnation — incarnations fence stale slave-directed state exactly
//! like epochs fence stale master-issued state — then re-replication
//! retries blocks still short a replica and migration is re-admitted
//! ("re-ignition") for live jobs. Reads degrade to surviving replicas or
//! disk while the node is dark. Invariant 8 (recovery convergence,
//! [`RunMetrics::recovery`]) checks at the end of the run that no
//! dangling dead-incarnation state survived anywhere.
//!
//! ## Unreliable control plane
//!
//! All Ignem master ↔ slave traffic (migrate batches, evicts, liveness
//! queries and replies) is routed through an
//! [`RpcChannel`](ignem_netsim::rpc::RpcChannel) that can drop, duplicate
//! and delay messages ([`ClusterConfig::rpc`]). Migrate and evict sends are
//! acknowledged; the master retransmits unacked sends with capped
//! exponential backoff and eventually gives up (slave-side command handling
//! is idempotent, so duplicates are harmless). Liveness traffic is not
//! acked — the slave's query cooldown naturally re-issues lost queries. A
//! periodic cleanup sweep reclaims references a slave acquired from a
//! command delivered *after* a master failover purged its state. With the
//! default (reliable) channel none of this machinery consumes randomness or
//! changes behaviour.
//!
//! ## Epochs, leases, and the residency ledger
//!
//! Every master→slave message carries the master's
//! [`Epoch`](ignem_netsim::rpc::Epoch), bumped on failover; slaves reject
//! commands stamped older than the newest epoch they have seen (a
//! retransmission from before a failover must not resurrect purged state)
//! and treat a *newer* epoch as a missed failover notification. When
//! [`IgnemConfig::lease`](ignem_core::slave::IgnemConfig) is set, each
//! job's references additionally carry a lease renewed by the job's own
//! control traffic and by liveness replies; [`Event::LeaseCheck`] timers
//! expire orphaned references deterministically even when the cleanup
//! sweep has already wound down. A per-node double-entry
//! [`ResidencyLedger`] mirrors the slaves' migrated/evicted byte counters
//! and, under [`with_validation`](World::with_validation), is reconciled
//! against every MemStore's occupancy after every event. All three
//! mechanisms are inert in a fault-free run: no events, no randomness, no
//! behaviour change.

// Deterministic-iteration policy (lint rule D02): every map or set this
// module iterates is an ordered container — a dense `IdMap`/`IdSet`
// (ascending-key iteration by construction) or a BTree container — so two
// runs of the same seed visit entries, and therefore draw randomness and
// schedule events, in one order. Hash containers are only acceptable for
// pure point lookups.
use std::collections::{BTreeSet, HashMap, HashSet};

use ignem_compute::job::{JobInput, JobSpec};
use ignem_compute::slots::Slots;
use ignem_compute::tracker::{
    choose_map_task, choose_reduce_task, JobTracker, MapInput, TaskId, TaskKind,
};
use ignem_core::command::{JobId, MigrateCommand, MigrateRequest, RpcPayload, SeqNo};
use ignem_core::master::{IgnemMaster, RetryDecision};
use ignem_core::slave::{IgnemSlave, SlaveAction};
use ignem_dfs::block::{split_into_blocks, BlockId};
use ignem_dfs::client::{plan_read, ReadSource};
use ignem_dfs::namenode::NameNode;
use ignem_netsim::rpc::{Epoch, Incarnation, RpcChannel, RpcPeer};
use ignem_netsim::{Fabric, NodeId, TransferId};
use ignem_simcore::event::Engine;
use ignem_simcore::idmap::IdMap;
use ignem_simcore::metrics::{MetricsRegistry, MetricsState};
use ignem_simcore::profile::HostProfiler;
use ignem_simcore::rng::SimRng;
use ignem_simcore::stats::TimeWeighted;
use ignem_simcore::telemetry::{
    Event as TelemetryEvent, EventRecord, EventSink, FlightRecorder, ReadClass, Telemetry,
    TraceAdapter,
};
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::trace::TraceSink;
use ignem_storage::disk::{Completion, Disk, IoKind, RequestId};
use ignem_storage::memstore::{MemStore, Residency};

use crate::columns::BitCol;
use crate::config::{ClusterConfig, FsMode};
use crate::metrics::{BlockRead, JobResult, PlanResult, ReadKind, ResidencyLedger, RunMetrics};

/// One workload entry: a job (or multi-stage query) with a submission time.
#[derive(Debug, Clone)]
pub struct PlannedJob {
    /// Display name (stage jobs get `-s<k>` suffixes from their specs).
    pub name: String,
    /// Submission offset from the start of the run.
    pub submit: SimDuration,
    /// The MapReduce stages, run sequentially.
    pub stages: Vec<JobSpec>,
}

impl PlannedJob {
    /// A single-stage planned job.
    pub fn single(name: impl Into<String>, submit: SimDuration, spec: JobSpec) -> Self {
        PlannedJob {
            name: name.into(),
            submit,
            stages: vec![spec],
        }
    }
}

/// A pull-based source of planned jobs in nondecreasing submit order — the
/// streaming front-end to [`World`].
///
/// A world built with [`World::with_arrivals`] admits one job at a time:
/// only the *next* pending arrival is materialized, and the source is
/// pulled again when that arrival's event fires. Memory stays proportional
/// to live jobs rather than trace length, which is what makes a
/// month-long, hundreds-of-thousands-of-jobs replay feasible.
///
/// Blanket-implemented for any `Clone + Send` iterator of [`PlannedJob`]s.
/// Cloning must fork the exact sequence position: [`World`] is `Clone` and
/// the snapshot machinery captures the source mid-stream.
pub trait ArrivalSource: Send {
    /// The next arrival, or `None` once the trace is exhausted.
    fn next_arrival(&mut self) -> Option<PlannedJob>;
    /// Forks this source at its current position.
    fn clone_source(&self) -> Box<dyn ArrivalSource>;
}

impl<I> ArrivalSource for I
where
    I: Iterator<Item = PlannedJob> + Clone + Send + 'static,
{
    fn next_arrival(&mut self) -> Option<PlannedJob> {
        self.next()
    }

    fn clone_source(&self) -> Box<dyn ArrivalSource> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn ArrivalSource> {
    fn clone(&self) -> Self {
        self.clone_source()
    }
}

/// A fault to inject at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The Ignem master crashes and restarts empty (§III-A5).
    MasterFail,
    /// The slave process on a node restarts; migrated data is discarded.
    SlaveRestart(NodeId),
    /// A whole server fails permanently.
    NodeFail(NodeId),
    /// A planned job is killed before completing (no evict is ever sent —
    /// exercises threshold-triggered dead-job cleanup).
    KillPlan(usize),
    /// Gray fault: the node's disk runs at the given percentage of its
    /// nominal bandwidth for the given duration, then recovers. IO keeps
    /// completing, just slowly.
    DiskDegrade(NodeId, u32, SimDuration),
    /// Gray fault: the node's control plane stops responding for the given
    /// duration (long GC / scheduler stall). Incoming control messages are
    /// deferred until it resumes and no new tasks are assigned to it, but
    /// already-running IO and compute continue.
    NodePause(NodeId, SimDuration),
    /// Gray fault: the given nodes are partitioned from the rest of the
    /// **control plane** (master and other slaves) for the given duration.
    /// Data-plane reads are deliberately unaffected — the paper's 10 GbE
    /// fabric is non-blocking; this models management-network flakiness.
    Partition(Vec<NodeId>, SimDuration),
    /// The whole server crashes and reboots after the given outage:
    /// volatile RAM contents are lost, durable disk blocks survive, and
    /// the restarted slave re-registers under a fresh incarnation (see the
    /// module-level *Crash and recovery* section). Crashing an
    /// already-dead node is a no-op.
    NodeCrash(NodeId, SimDuration),
}

#[derive(Debug, Clone)]
enum Event {
    Submit(usize),
    Queued(JobId),
    Heartbeat(u32),
    DiskTimer(u32, u64),
    RamTimer(u32, u64),
    NetTimer(u64),
    TaskLaunched(TaskId),
    TaskComputeDone(TaskId),
    DeliverMigrates(u32, SeqNo, Epoch, Incarnation, Vec<MigrateCommand>),
    DeliverEvict(u32, SeqNo, Epoch, Incarnation, JobId),
    DeliverAck(SeqNo),
    RpcTimeout(SeqNo),
    LivenessQuery(u32, Vec<JobId>),
    /// `(slave, master epoch, dead jobs, alive jobs)` — the alive list
    /// renews leases; the dead list releases references.
    LivenessReply(u32, Epoch, Vec<JobId>, Vec<JobId>),
    /// Lease-expiry timer for one node's slave; the generation counter
    /// invalidates timers superseded by a renewal.
    LeaseCheck(u32, u64),
    NodeResume(u32),
    DiskRestore(u32),
    PartitionHeal(usize),
    /// A crashed node's outage ends: the server boots, the slave restarts
    /// under a fresh incarnation and sends its registration.
    NodeRestart(u32),
    /// A restarted slave's registration arriving at the master; it doubles
    /// as the full block report from the node's durable store.
    DeliverRegister(u32, Incarnation),
    /// Registration retransmission timer: `(node, attempt)`. Inert once
    /// the master has absorbed the node's current incarnation.
    RegisterRetry(u32, u32),
    /// Deferred re-replication backoff timer (generation-guarded).
    RerepRetry(u64),
    CleanupSweep,
    /// The next streamed arrival is due: admit it and pull the following
    /// one from the [`ArrivalSource`]. Carries no payload — the pending
    /// plan lives in `World::next_arrival` (exactly one `Arrival` event is
    /// in flight whenever that field is `Some`).
    Arrival,
    /// One cluster-wide heartbeat round (carries the round counter for the
    /// rotating start offset); replaces per-node [`Event::Heartbeat`]
    /// chains when [`ClusterConfig::heartbeat_sweep`] is on.
    HeartbeatSweep(u64),
    Inject(usize),
}

impl Event {
    /// Stable bucket name for host-time profiling.
    fn kind_name(&self) -> &'static str {
        match self {
            Event::Submit(..) => "submit",
            Event::Queued(..) => "queued",
            Event::Heartbeat(..) => "heartbeat",
            Event::DiskTimer(..) => "disk_timer",
            Event::RamTimer(..) => "ram_timer",
            Event::NetTimer(..) => "net_timer",
            Event::TaskLaunched(..) => "task_launched",
            Event::TaskComputeDone(..) => "task_compute_done",
            Event::DeliverMigrates(..) => "deliver_migrates",
            Event::DeliverEvict(..) => "deliver_evict",
            Event::DeliverAck(..) => "deliver_ack",
            Event::RpcTimeout(..) => "rpc_timeout",
            Event::LivenessQuery(..) => "liveness_query",
            Event::LivenessReply(..) => "liveness_reply",
            Event::LeaseCheck(..) => "lease_check",
            Event::NodeResume(..) => "node_resume",
            Event::DiskRestore(..) => "disk_restore",
            Event::PartitionHeal(..) => "partition_heal",
            Event::NodeRestart(..) => "node_restart",
            Event::DeliverRegister(..) => "deliver_register",
            Event::RegisterRetry(..) => "register_retry",
            Event::RerepRetry(..) => "rerep_retry",
            Event::CleanupSweep => "cleanup_sweep",
            Event::Arrival => "arrival",
            Event::HeartbeatSweep(..) => "heartbeat_sweep",
            Event::Inject(..) => "inject",
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum DiskOwner {
    MapRead {
        task: TaskId,
        kind: ReadKind,
        block: Option<BlockId>,
        serving: u32,
        started: SimTime,
    },
    Migration {
        block: BlockId,
    },
    /// Re-replication read of an under-replicated block (after a node
    /// failure); on completion the bytes are written to `target`.
    Rereplicate {
        block: BlockId,
        target: u32,
    },
}

#[derive(Debug, Clone, Copy)]
enum NetOwner {
    MapRead {
        task: TaskId,
        block: BlockId,
        serving: u32,
        started: SimTime,
    },
    Shuffle {
        task: TaskId,
    },
}

#[derive(Debug, Clone)]
struct PlanState {
    current_stage: usize,
    submitted_at: Option<SimTime>,
    finished: bool,
    stage1_input: u64,
}

/// Struct-of-arrays per-node hot state (see [`crate::columns`]): the
/// fields every heartbeat, sweep and cancellation pass scans, kept as
/// dense columns — booleans packed one bit per node, the pause column
/// sentinel-encoded — so a 12k-node world's liveness scan stays in a few
/// cache lines.
#[derive(Debug, Clone)]
struct NodeColumns {
    /// Node is up (not dead, not crashed-dark).
    alive: BitCol,
    /// Nodes currently dark from a [`Fault::NodeCrash`] (restart pending).
    crashed_down: BitCol,
    /// Nodes that crashed at least once; invariant 8 audits exactly these.
    crashed_ever: BitCol,
    /// Whether node `n`'s heartbeat chain is still self-rescheduling; a
    /// chain dies when a beat fires on a dead node, and a restart re-arms
    /// it exactly once (two chains would double task assignment).
    hb_live: BitCol,
    /// Control-plane pause end (gray fault); `SimTime::MAX` = responsive.
    paused_until: Vec<SimTime>,
    /// Disk-completion timer generation (guards stale [`Event::DiskTimer`]).
    disk_gen: Vec<u64>,
    /// RAM-completion timer generation (guards stale [`Event::RamTimer`]).
    ram_gen: Vec<u64>,
    /// Lease-timer generation; bumped on every reschedule so superseded
    /// [`Event::LeaseCheck`]s are ignored.
    lease_gen: Vec<u64>,
    /// `(slave, mem)` version stamps at the last clean audit; `u64::MAX`
    /// sentinels force the first per-event validation pass.
    validated: Vec<(u64, u64)>,
    /// Per-node IO request counter. [`RequestId`]s only ever meet
    /// per-node maps (`disk_owner`/`ram_owner`, per-disk queues), so
    /// per-node allocation keeps each [`IdMap`] window as wide as one
    /// node's in-flight IO instead of the whole cluster's — the
    /// difference between kilobytes and megabytes per node at 12k nodes.
    next_req: Vec<u64>,
}

impl NodeColumns {
    fn new(nodes: usize) -> Self {
        NodeColumns {
            alive: BitCol::new(nodes, true),
            crashed_down: BitCol::new(nodes, false),
            crashed_ever: BitCol::new(nodes, false),
            hb_live: BitCol::new(nodes, true),
            paused_until: vec![SimTime::MAX; nodes],
            disk_gen: vec![0; nodes],
            ram_gen: vec![0; nodes],
            lease_gen: vec![0; nodes],
            validated: vec![(u64::MAX, u64::MAX); nodes],
            next_req: vec![0; nodes],
        }
    }

    /// The pause end of node `n`, `None` when responsive.
    fn paused(&self, n: usize) -> Option<SimTime> {
        let t = self.paused_until[n];
        (t != SimTime::MAX).then_some(t)
    }

    fn set_paused(&mut self, n: usize, until: Option<SimTime>) {
        self.paused_until[n] = until.unwrap_or(SimTime::MAX);
    }
}

/// The integrated simulator (see module docs).
///
/// `Clone` copies the *deterministic* state structurally — engine queue
/// (slot slab, generation stamps, insertion seq), every component, both
/// RNG streams — while the observability handles ([`Telemetry`],
/// [`MetricsRegistry`], [`HostProfiler`]) clone as shared references.
/// [`World::snapshot`]/[`World::restore`] build on this: see
/// [`WorldSnapshot`] for the exact capture contract.
#[derive(Clone)]
pub struct World {
    cfg: ClusterConfig,
    mode: FsMode,
    engine: Engine<Event>,
    rng: SimRng,

    namenode: NameNode,
    master: IgnemMaster,
    slaves: Vec<IgnemSlave>,
    mems: Vec<MemStore<BlockId>>,
    disks: Vec<Disk>,
    rams: Vec<Disk>,
    net: Fabric,
    /// Columnar per-node hot state (liveness bitmaps, pause sentinels,
    /// timer generations, request counters); see [`NodeColumns`].
    cols: NodeColumns,
    /// Control-plane channel; its RNG is a dedicated fork so fault
    /// injection never perturbs the main stream.
    rpc: RpcChannel,
    rpc_rng: SimRng,
    /// Check slave/memstore invariants after every event (chaos harness).
    validate: bool,

    net_gen: u64,
    /// Per-node residency accounts, mirrored from the slaves' counters
    /// (see module docs).
    ledger: ResidencyLedger,

    tracker: JobTracker,
    slots: Slots,

    next_job: u64,
    next_xfer: u64,

    /// Owner maps are per-node dense [`IdMap`]s: cancellation sweeps iterate
    /// them node 0..N, then ascending [`RequestId`] within a node — the same
    /// lexicographic `(node, request)` order the old `BTreeMap<(u32,
    /// RequestId), _>` gave — and that order decides the order IO
    /// cancellations (and their randomness draws) happen in.
    disk_owner: Vec<IdMap<RequestId, DiskOwner>>,
    ram_owner: Vec<IdMap<RequestId, DiskOwner>>,
    net_owner: IdMap<TransferId, NetOwner>,
    migration_req: HashMap<(u32, BlockId), RequestId>,

    plans: Vec<PlannedJob>,
    plan_state: Vec<PlanState>,
    /// Streaming admission (None = fully preloaded workload). The source
    /// yields arrivals lazily; `next_arrival` holds the one whose
    /// [`Event::Arrival`] is currently scheduled.
    arrivals: Option<Box<dyn ArrivalSource>>,
    next_arrival: Option<PlannedJob>,
    job_to_plan: IdMap<JobId, (usize, usize)>,
    task_launched_at: HashMap<TaskId, SimTime>,
    job_submit_time: HashMap<JobId, SimTime>,
    job_spec: HashMap<JobId, JobSpec>,
    job_migrated: HashSet<JobId>,
    live_jobs: HashSet<JobId>,

    hypothetical: Vec<TimeWeighted>,
    hyp_assign: HashMap<JobId, Vec<(u32, u64)>>,

    faults: Vec<(SimTime, Fault)>,
    /// Faults whose [`Event::Inject`] has been neutralized: the event
    /// still pops (preserving the engine's seq/tie-break bookkeeping) but
    /// injects nothing and emits nothing. The minimizer uses this to
    /// drop a fault from a snapshot-forked continuation without
    /// rebuilding the world.
    suppressed_faults: Vec<bool>,
    unfinished_plans: usize,
    rerep_queue: Vec<BlockId>,
    rerep_active: bool,
    /// Blocks whose re-replication found no legal source/target; retried
    /// with capped exponential backoff instead of being silently dropped.
    rerep_deferred: Vec<BlockId>,
    /// Consecutive all-deferred rounds (escalates the backoff; reset on
    /// any successful start).
    rerep_attempt: u32,
    /// Guards stale [`Event::RerepRetry`] timers.
    rerep_retry_gen: u64,
    /// Shared typed-event handle (disabled unless a sink is installed);
    /// clones of it live inside the master, every slave and the RPC
    /// channel, all stamping events off the same now-cursor.
    telemetry: Telemetry,
    /// Shared sim-time metrics handle (disabled unless installed); clones
    /// of it live in the master, every slave, the RPC channel and every
    /// disk, all windowed off the same now-cursor.
    mreg: MetricsRegistry,
    /// Host-time profiler charging engine wall-clock to event-kind
    /// buckets; purely observational.
    profiler: HostProfiler,
    metrics: RunMetrics,
}

/// A copy-on-write checkpoint of a [`World`] at an event boundary,
/// captured by [`World::snapshot`] and reinstated (any number of times)
/// by [`World::restore`].
///
/// **Captured:** every bit of deterministic simulation state — the
/// engine's event queue (slot slab, generation stamps, insertion
/// sequence, clock, processed count), NameNode, master, slaves, MemStores,
/// disks, fabric, RPC channel with its in-flight retransmissions, both
/// RNG streams, the residency ledger, accumulated run metrics, fault
/// suppression flags, and the telemetry/metrics *cursors* (emission seq,
/// open metrics window and totals).
///
/// **Deliberately not captured:** the contents of any attached telemetry
/// sink (recorded events are history, not state — a fork appends to
/// whatever sink is installed, gap-free, or swaps in a fresh one via
/// [`World::swap_recorder`]), and the host-time profiler's wall-clock
/// buckets (observational only; charging fork re-runs to the same
/// buckets is the desired behavior).
///
/// The equivalence contract: `run-to-t → snapshot → run-to-end` then
/// `restore → run-to-end` produces a continuation bit-identical — event
/// stream, fingerprint, span forest, metrics report — to the
/// uninterrupted run. Pinned by the `snapshot_equivalence` tests against
/// the three golden streams.
pub struct WorldSnapshot {
    state: Box<World>,
    telemetry_cursor: Option<(SimTime, u64)>,
    metrics_state: MetricsState,
}

impl std::fmt::Debug for WorldSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("at", &self.state.engine.now())
            .field("events_processed", &self.state.engine.processed())
            .finish()
    }
}

impl World {
    /// Builds a world: creates the cluster, loads `files` into the DFS
    /// (path, bytes), pins inputs if the mode is
    /// [`FsMode::HdfsInputsInRam`], and schedules the workload plan and
    /// fault list.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or duplicate file paths.
    pub fn new(
        cfg: ClusterConfig,
        mode: FsMode,
        files: &[(String, u64)],
        plans: Vec<PlannedJob>,
        faults: Vec<(SimTime, Fault)>,
    ) -> Self {
        cfg.validate();
        let mut engine = Engine::new(cfg.seed);
        let mut rng = engine.rng().fork();
        // A second fork dedicated to the RPC channel: with a reliable
        // channel it is never consumed, and with an unreliable one the main
        // stream's draws are unaffected either way.
        let rpc_rng = engine.rng().fork();

        let mut namenode = NameNode::new(cfg.dfs);
        for n in 0..cfg.nodes {
            namenode.register_node(NodeId(n as u32));
        }
        for (path, bytes) in files {
            namenode
                .create_file(path, *bytes, &mut rng)
                .unwrap_or_else(|e| panic!("loading {path}: {e}"));
        }

        let mut mems: Vec<MemStore<BlockId>> = (0..cfg.nodes)
            .map(|_| MemStore::new(cfg.mem_capacity))
            .collect();
        if mode == FsMode::HdfsInputsInRam {
            // vmtouch: lock every input replica in memory before the run.
            for (n, mem) in mems.iter_mut().enumerate() {
                for info in namenode.blocks_on(NodeId(n as u32)) {
                    if info.bytes > 0 {
                        mem.insert(SimTime::ZERO, info.id, info.bytes, Residency::Pinned)
                            .expect("inputs exceed cluster RAM");
                    }
                }
            }
        }

        let slaves = (0..cfg.nodes)
            .map(|n| IgnemSlave::new(NodeId(n as u32), cfg.ignem))
            .collect();
        let disks = (0..cfg.nodes).map(|_| Disk::new(cfg.disk)).collect();
        let rams = (0..cfg.nodes).map(|_| Disk::new(cfg.ram)).collect();
        let net = Fabric::new(cfg.nodes, cfg.net);
        let slots = Slots::new(cfg.nodes, cfg.compute.slots_per_node);

        // Schedule the plan, heartbeats and faults.
        for (i, p) in plans.iter().enumerate() {
            assert!(!p.stages.is_empty(), "plan {i} has no stages");
            engine.schedule_at(SimTime::ZERO + p.submit, Event::Submit(i));
        }
        let hb = cfg.compute.heartbeat;
        if cfg.heartbeat_sweep {
            // Datacenter scale: one sweep event per interval for the whole
            // cluster instead of `nodes` staggered chains.
            engine.schedule_at(SimTime::ZERO, Event::HeartbeatSweep(0));
        } else {
            for n in 0..cfg.nodes {
                let offset = SimDuration::from_micros(hb.as_micros() * n as u64 / cfg.nodes as u64);
                engine.schedule_at(SimTime::ZERO + offset, Event::Heartbeat(n as u32));
            }
        }
        for (i, (at, _)) in faults.iter().enumerate() {
            engine.schedule_at(*at, Event::Inject(i));
        }
        if mode == FsMode::Ignem && !cfg.cleanup_sweep.is_zero() {
            engine.schedule_at(SimTime::ZERO + cfg.cleanup_sweep, Event::CleanupSweep);
        }

        let unfinished = plans.len();
        let plan_state = plans
            .iter()
            .map(|_| PlanState {
                current_stage: 0,
                submitted_at: None,
                finished: false,
                stage1_input: 0,
            })
            .collect();
        World {
            mode,
            engine,
            rng,
            namenode,
            master: IgnemMaster::with_config(cfg.master),
            slaves,
            mems,
            disks,
            rams,
            net,
            cols: NodeColumns::new(cfg.nodes),
            rpc: RpcChannel::new(cfg.rpc),
            rpc_rng,
            validate: false,
            net_gen: 0,
            ledger: ResidencyLedger::new(cfg.nodes),
            tracker: JobTracker::new(),
            slots,
            next_job: 0,
            next_xfer: 0,
            disk_owner: (0..cfg.nodes).map(|_| IdMap::new()).collect(),
            ram_owner: (0..cfg.nodes).map(|_| IdMap::new()).collect(),
            net_owner: IdMap::new(),
            migration_req: HashMap::new(),
            plans,
            plan_state,
            arrivals: None,
            next_arrival: None,
            job_to_plan: IdMap::new(),
            task_launched_at: HashMap::new(),
            job_submit_time: HashMap::new(),
            job_spec: HashMap::new(),
            job_migrated: HashSet::new(),
            live_jobs: HashSet::new(),
            hypothetical: (0..cfg.nodes)
                .map(|_| TimeWeighted::new(0.0, true))
                .collect(),
            hyp_assign: HashMap::new(),
            suppressed_faults: vec![false; faults.len()],
            faults,
            unfinished_plans: unfinished,
            rerep_queue: Vec::new(),
            rerep_active: false,
            rerep_deferred: Vec::new(),
            rerep_attempt: 0,
            rerep_retry_gen: 0,
            telemetry: Telemetry::default(),
            mreg: MetricsRegistry::default(),
            profiler: HostProfiler::disabled(),
            metrics: RunMetrics::default(),
            cfg,
        }
    }

    /// Attaches a streaming [`ArrivalSource`]: jobs are admitted lazily,
    /// one [`Event::Arrival`] at a time, instead of being preloaded as a
    /// `Vec`. Composable with a preloaded plan list (streamed arrivals are
    /// appended after the preloaded plans as they arrive).
    ///
    /// The source must yield arrivals in nondecreasing submit order
    /// (checked as each is pulled). Input files must still be preloaded
    /// via `files` in [`World::new`] — DFS namespace creation draws from
    /// the main RNG stream, so creating files lazily would perturb every
    /// later draw.
    pub fn with_arrivals(mut self, source: Box<dyn ArrivalSource>) -> Self {
        assert!(
            self.arrivals.is_none() && self.next_arrival.is_none(),
            "arrival source already installed"
        );
        self.arrivals = Some(source);
        self.pull_next_arrival();
        self
    }

    /// Installs a legacy string-trace sink; every major state transition
    /// (job lifecycle, migrations, evictions, faults) is recorded with its
    /// simulated time. Implemented as a [`TraceAdapter`] over the typed
    /// event stream, so it sees exactly what
    /// [`with_telemetry`](Self::with_telemetry) sinks see. Tracing is free
    /// when no sink is installed.
    pub fn with_trace(self, sink: Box<dyn TraceSink>) -> Self {
        self.with_telemetry(Box::new(TraceAdapter::new(sink)))
    }

    /// Installs a typed event sink (e.g. a
    /// [`FlightRecorder`](ignem_simcore::telemetry::FlightRecorder)) and
    /// propagates the shared emission handle into the master, every slave
    /// and the RPC channel. Emission is zero-cost when no sink is
    /// installed, and consumes no randomness either way.
    pub fn with_telemetry(mut self, sink: Box<dyn EventSink>) -> Self {
        let telemetry = Telemetry::new(sink);
        self.master.set_telemetry(telemetry.clone());
        for slave in &mut self.slaves {
            slave.set_telemetry(telemetry.clone());
        }
        self.rpc.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Installs a sim-time metrics registry and propagates clones into the
    /// master, every slave, the RPC channel and every disk. Recording is
    /// zero-cost when the handle is disabled and consumes no randomness
    /// either way — same-seed runs are bit-identical with metrics on or
    /// off. Call [`MetricsRegistry::finish`] on your own clone after
    /// [`run`](Self::run) to collect the windows.
    pub fn with_metrics(mut self, reg: MetricsRegistry) -> Self {
        self.master.set_metrics(reg.clone());
        for slave in &mut self.slaves {
            slave.set_metrics(reg.clone());
        }
        self.rpc.set_metrics(reg.clone());
        for (n, d) in self.disks.iter_mut().enumerate() {
            d.set_metrics(reg.clone(), n as u64);
        }
        self.mreg = reg;
        self
    }

    /// Installs a host-time profiler; [`run`](Self::run) charges each
    /// handled event's wall-clock to its event-kind bucket. Purely
    /// observational — the simulation result is unaffected.
    pub fn with_profiler(mut self, profiler: HostProfiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The NameNode (for test assertions and custom setup).
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Enables per-event invariant checking: after every event, each alive
    /// slave's reference lists and memory accounting are cross-checked
    /// against its MemStore ([`IgnemSlave::check_consistency`]). Expensive;
    /// meant for the chaos harness.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Copies every slave's authoritative migrated/evicted byte counters
    /// into the residency ledger. Cheap (one entry per node), so it runs
    /// per event under validation and once more at finalization.
    fn sync_ledger(&mut self) {
        for n in 0..self.cfg.nodes {
            let st = self.slaves[n].stats();
            self.ledger.record(n, st.migrated_bytes, st.evicted_bytes);
        }
    }

    fn check_invariants(&mut self) {
        for n in 0..self.cfg.nodes {
            // Memoized per node: the checks below are pure functions of
            // (slave state, MemStore state), both of which carry monotone
            // mutation counters. An unchanged stamp means the previous
            // clean verdict still holds, so per-event validation only
            // re-audits the nodes the event actually touched. (Every
            // liveness transition moves the stamp: node death bumps the
            // slave version via `IgnemSlave::fail`, and a crash-restart
            // bumps it again via `IgnemSlave::restart` plus the MemStore
            // version via the crash wipe.)
            let stamp = (self.slaves[n].version(), self.mems[n].version());
            if self.cols.validated[n] == stamp {
                continue;
            }
            let st = self.slaves[n].stats();
            self.ledger.record(n, st.migrated_bytes, st.evicted_bytes);
            // The ledger must balance on every node, dead ones included: a
            // slave's restart/purge debits everything it held, so a dead
            // node's account settles at zero residency.
            if let Err(e) = self.ledger.reconcile(n, self.mems[n].migrated_used()) {
                panic!("ledger violated at {}: {e}", self.engine.now());
            }
            if self.cols.alive.get(n) {
                if let Err(e) = self.slaves[n].check_consistency(&self.mems[n]) {
                    panic!(
                        "slave invariant violated on node{n} at {}: {e}",
                        self.engine.now()
                    );
                }
            }
            self.cols.validated[n] = stamp;
        }
    }

    /// Runs the simulation to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the event count exceeds a safety bound (a stuck
    /// simulation) or a block becomes unreadable (all replicas dead).
    pub fn run(mut self) -> RunMetrics {
        self.run_to_end();
        self.finalize_mut()
    }

    /// Pops and handles exactly one event, returning `false` when the
    /// queue is exhausted. The single-step core of [`World::run`]; the
    /// snapshot machinery drives it directly so a fork can stop at any
    /// event boundary.
    ///
    /// # Panics
    ///
    /// As [`World::run`].
    pub fn step(&mut self) -> bool {
        const MAX_EVENTS: u64 = 200_000_000;
        let Some(ev) = self.engine.pop() else {
            return false;
        };
        let prof = self.profiler.clone();
        let kind = ev.kind_name();
        prof.measure(kind, || self.handle(ev));
        if self.validate {
            self.check_invariants();
        }
        assert!(
            self.engine.processed() < MAX_EVENTS,
            "simulation exceeded {MAX_EVENTS} events — likely stuck"
        );
        true
    }

    /// Drains the event queue without finalizing, so the caller can
    /// snapshot, inspect or finalize afterwards.
    pub fn run_to_end(&mut self) {
        while self.step() {}
    }

    /// Steps until the next pending event is a fault injection and
    /// returns its index into the fault list *without firing it* — the
    /// caller typically snapshots here, then calls [`World::step`] once
    /// to pop the injection. Returns `None` when the queue drains first.
    pub fn run_until_next_inject(&mut self) -> Option<usize> {
        loop {
            let next = match self.engine.peek() {
                Some((_, Event::Inject(i))) => Some(Some(*i)),
                Some(_) => None,
                None => Some(None),
            };
            match next {
                Some(result) => return result,
                None => {
                    self.step();
                }
            }
        }
    }

    /// Sanitizer mode: runs to completion with a fresh
    /// [`FlightRecorder`] of `capacity` events attached, returning the
    /// metrics, the recorded event stream and the number of records the
    /// ring had to evict. The determinism sanitizer
    /// ([`crate::sanitizer`]) runs two identically-built worlds through
    /// this and bisects any divergence between the two streams.
    ///
    /// # Panics
    ///
    /// As [`World::run`].
    pub fn run_recorded(self, capacity: usize) -> (RunMetrics, Vec<EventRecord>, u64) {
        let recorder = FlightRecorder::new(capacity);
        let metrics = self.with_telemetry(Box::new(recorder.clone())).run();
        (metrics, recorder.events(), recorder.dropped())
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Captures the full deterministic state at the current event
    /// boundary. See [`WorldSnapshot`] for the capture contract; the
    /// equivalence guarantee (restore + run-to-end is bit-identical to an
    /// uninterrupted run) is pinned by the `snapshot_equivalence` golden
    /// tests.
    pub fn snapshot(&self) -> WorldSnapshot {
        WorldSnapshot {
            state: Box::new(self.clone()),
            telemetry_cursor: self.telemetry.cursor(),
            metrics_state: self.mreg.state_snapshot(),
        }
    }

    /// Rewinds this world to a state captured by [`World::snapshot`].
    /// The snapshot is not consumed: one capture can seed any number of
    /// forked continuations. The telemetry sink is *not* rewound (its
    /// records are history, not simulation state); use
    /// [`World::swap_recorder`] to point the continuation at a fresh
    /// recorder when the forked stream matters.
    pub fn restore(&mut self, snap: &WorldSnapshot) {
        *self = (*snap.state).clone();
        // The cloned components share the telemetry/metrics interiors
        // with the live world, so the cursors are rewound through the
        // shared handles rather than re-propagated.
        if let Some((now, next_seq)) = snap.telemetry_cursor {
            self.telemetry.restore_cursor(now, next_seq);
        }
        self.mreg.restore_state(&snap.metrics_state);
    }

    /// Swaps the event sink every component emits into, returning the
    /// old one. The emission cursor (seq numbering) is untouched, so a
    /// forked continuation's records concatenate gap-free onto the
    /// prefix the previous sink captured.
    pub fn swap_recorder(&self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.telemetry.replace_sink(sink)
    }

    /// Neutralizes fault `idx`: its [`Event::Inject`] still pops (the
    /// engine's seq bookkeeping is part of snapshot equivalence) but
    /// injects nothing and emits nothing — behaviorally identical to a
    /// world built without the fault.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds of the fault list.
    pub fn suppress_fault(&mut self, idx: usize) {
        self.suppressed_faults[idx] = true;
    }

    /// Number of events the engine has popped so far (the "simulated
    /// events" cost measure the minimizer bench reports).
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The shared telemetry `(now, next_seq)` cursor, `None` when no sink
    /// is installed. The time-travel debugger steps until this passes the
    /// requested record seq.
    pub fn telemetry_cursor(&self) -> Option<(SimTime, u64)> {
        self.telemetry.cursor()
    }

    /// Renders the full world state as indented text — the time-travel
    /// debugger's view after reconstructing a run up to a recorded event.
    /// Everything here is read through the same accessors tests use; the
    /// dump mutates nothing.
    pub fn describe_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let now = self.engine.now();
        let _ = writeln!(
            out,
            "world @ {now} ({} events processed, {} pending)",
            self.engine.processed(),
            self.engine.pending(),
        );
        let _ = writeln!(
            out,
            "  master: epoch={:?} tracked_jobs={} pending_sends={}",
            self.master.epoch(),
            self.master.tracked_jobs(),
            self.master.pending_sends(),
        );
        for (seq, to, attempts) in self.master.pending_send_summaries() {
            let _ = writeln!(
                out,
                "    in-flight send seq={:?} to=node{} attempts={attempts}",
                seq, to.0
            );
        }
        // lint: allow(D02, reason = "collected into a Vec and sorted before rendering")
        let mut jobs: Vec<u64> = self.live_jobs.iter().map(|j| j.0).collect();
        jobs.sort_unstable();
        let _ = writeln!(
            out,
            "  jobs: live={jobs:?} unfinished_plans={}",
            self.unfinished_plans
        );
        let rpc = self.rpc.stats();
        let _ = writeln!(
            out,
            "  rpc: sent={} delivered={} dropped={} duplicated={} cut={}",
            rpc.sent, rpc.delivered, rpc.dropped, rpc.duplicated, rpc.cut
        );
        for (id, nodes) in self.rpc.active_partitions() {
            let _ = writeln!(out, "    partition id={id} cut_off={nodes:?}");
        }
        for n in 0..self.cfg.nodes {
            let status = if self.cols.crashed_down.get(n) {
                "crashed"
            } else if !self.cols.alive.get(n) {
                "dead"
            } else if self.cols.paused(n).is_some_and(|t| t > now) {
                "paused"
            } else {
                "alive"
            };
            let mem = &self.mems[n];
            let (mig_n, mig_b) = mem.residency_summary(Residency::Migrated);
            let (pin_n, pin_b) = mem.residency_summary(Residency::Pinned);
            let (cache_n, cache_b) = mem.residency_summary(Residency::Cached);
            let slave = &self.slaves[n];
            let _ = writeln!(
                out,
                "  node{n}: {status} inc={:?} hb={} mem={}/{} \
                 migrated={mig_n}x{mig_b}B pinned={pin_n}x{pin_b}B cached={cache_n}x{cache_b}B",
                slave.incarnation(),
                if self.cols.hb_live.get(n) {
                    "live"
                } else {
                    "down"
                },
                mem.used(),
                mem.capacity(),
            );
            let _ = writeln!(
                out,
                "    slave: queue={} in_flight={} refs={} disk_io={}",
                slave.queue_len(),
                slave.in_flight_migrations(),
                slave.total_references(),
                self.disks[n].in_flight(),
            );
            for (job, expiry) in slave.leases() {
                let _ = writeln!(out, "    lease job={} expires={expiry}", job.0);
            }
        }
        out
    }

    /// Assembles the run's metrics from the final world state. Borrows
    /// rather than consumes so a snapshot-forked continuation can
    /// finalize, be restored, and run again: the accumulated per-run
    /// metrics are *taken* (left default), but everything else is read
    /// non-destructively, and a subsequent [`World::restore`] reinstates
    /// the taken state wholesale.
    pub fn finalize_mut(&mut self) -> RunMetrics {
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.events_processed = self.engine.processed();
        let end = metrics
            .jobs
            .iter()
            .map(|j| j.submitted + SimDuration::from_secs_f64(j.duration))
            .max()
            .unwrap_or(self.engine.now());
        metrics.makespan = end;
        metrics.mem_series = self.mems.iter().map(|m| m.occupancy_changes()).collect();
        metrics.hypothetical_series = self
            .hypothetical
            .iter()
            .map(|h| h.sample_series_raw().to_vec())
            .collect();
        for s in &self.slaves {
            let st = s.stats();
            let agg = &mut metrics.slave_stats;
            agg.commands += st.commands;
            agg.migrated += st.migrated;
            agg.migrated_bytes += st.migrated_bytes;
            agg.deduped += st.deduped;
            agg.discarded += st.discarded;
            agg.wasted_reads += st.wasted_reads;
            agg.evicted += st.evicted;
            agg.evicted_bytes += st.evicted_bytes;
            agg.purges += st.purges;
            agg.liveness_queries += st.liveness_queries;
            agg.stale_epochs += st.stale_epochs;
            agg.lease_expiries += st.lease_expiries;
            agg.stale_incarnations += st.stale_incarnations;
        }
        self.sync_ledger();
        metrics.ledger = self.ledger.clone();
        metrics.master_stats = self.master.stats();
        metrics.rpc = self.rpc.stats();
        for n in 0..self.cfg.nodes {
            if self.cols.alive.get(n) {
                metrics.leaked_job_refs += self.slaves[n].total_references() as u64;
                metrics.final_migrated_bytes += self.mems[n].migrated_used();
            }
        }
        metrics.disk_utilization = self.disks.iter().map(|d| d.utilization(end)).collect();
        metrics.recovery = self.check_recovery();
        metrics
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        // One cursor update per dispatched event: every component emission
        // below (world, master, slaves, RPC channel) happens inside this
        // call, and the engine clock cannot advance during it.
        self.telemetry.set_now(self.engine.now());
        self.mreg.set_now(self.engine.now());
        match ev {
            Event::Submit(plan) => self.on_submit(plan),
            Event::Queued(job) => self.on_queued(job),
            Event::Heartbeat(n) => self.on_heartbeat(n),
            Event::DiskTimer(n, gen) => self.on_disk_timer(n, gen),
            Event::RamTimer(n, gen) => self.on_ram_timer(n, gen),
            Event::NetTimer(gen) => self.on_net_timer(gen),
            Event::TaskLaunched(t) => self.on_task_launched(t),
            Event::TaskComputeDone(t) => self.on_task_compute_done(t),
            Event::DeliverMigrates(n, seq, epoch, inc, cmds) => {
                self.on_deliver_migrates(n, seq, epoch, inc, cmds)
            }
            Event::DeliverEvict(n, seq, epoch, inc, job) => {
                self.on_deliver_evict(n, seq, epoch, inc, job)
            }
            Event::DeliverAck(seq) => self.master.on_ack(seq),
            Event::RpcTimeout(seq) => self.on_rpc_timeout(seq),
            Event::LivenessQuery(n, jobs) => self.on_liveness_query(n, jobs),
            Event::LivenessReply(n, epoch, dead, alive) => {
                self.on_liveness_reply(n, epoch, dead, alive)
            }
            Event::LeaseCheck(n, gen) => self.on_lease_check(n, gen),
            Event::NodeResume(n) => self.on_node_resume(n),
            Event::DiskRestore(n) => self.on_disk_restore(n),
            Event::PartitionHeal(id) => self.on_partition_heal(id),
            Event::NodeRestart(n) => self.on_node_restart(n),
            Event::DeliverRegister(n, inc) => self.on_deliver_register(n, inc),
            Event::RegisterRetry(n, attempt) => self.on_register_retry(n, attempt),
            Event::RerepRetry(gen) => self.on_rerep_retry(gen),
            Event::CleanupSweep => self.on_cleanup_sweep(),
            Event::Arrival => self.on_arrival(),
            Event::HeartbeatSweep(round) => self.on_heartbeat_sweep(round),
            Event::Inject(i) => self.on_inject(i),
        }
    }

    /// Is there (or might there be) more workload to run? Self-sustaining
    /// timers (heartbeats, cleanup sweeps) re-arm only while this holds:
    /// unfinished admitted plans, or a streamed arrival yet to be admitted.
    fn work_remaining(&self) -> bool {
        self.unfinished_plans > 0 || self.next_arrival.is_some()
    }

    /// Pulls the next arrival from the streaming source (if any) and
    /// schedules its [`Event::Arrival`]; drops the source when exhausted.
    fn pull_next_arrival(&mut self) {
        let Some(src) = self.arrivals.as_mut() else {
            return;
        };
        match src.next_arrival() {
            Some(plan) => {
                let at = SimTime::ZERO + plan.submit;
                assert!(
                    at >= self.engine.now(),
                    "arrival stream out of order: {at:?} < {:?}",
                    self.engine.now()
                );
                self.engine.schedule_at(at, Event::Arrival);
                self.next_arrival = Some(plan);
            }
            None => {
                self.arrivals = None;
                self.next_arrival = None;
            }
        }
    }

    /// Admits the pending streamed arrival as a plan and submits it. The
    /// submission runs inline (not via a separate [`Event::Submit`]) so
    /// the RNG draw order matches a preloaded world exactly.
    fn on_arrival(&mut self) {
        let plan = self
            .next_arrival
            .take()
            .expect("Arrival event with no pending arrival");
        let idx = self.plans.len();
        assert!(!plan.stages.is_empty(), "streamed plan {idx} has no stages");
        self.plans.push(plan);
        self.plan_state.push(PlanState {
            current_stage: 0,
            submitted_at: None,
            finished: false,
            stage1_input: 0,
        });
        self.unfinished_plans += 1;
        // Pull the successor before submitting: if the submission finishes
        // the whole workload synchronously, `work_remaining` must already
        // see the next arrival.
        self.pull_next_arrival();
        self.on_submit(idx);
    }

    fn on_submit(&mut self, plan: usize) {
        if self.plan_state[plan].finished {
            // The plan was killed before this submission fired.
            return;
        }
        let now = self.engine.now();
        let stage = self.plan_state[plan].current_stage;
        let spec = self.plans[plan].stages[stage].clone();
        let job = JobId(self.next_job);
        self.next_job += 1;
        self.telemetry.emit(|| TelemetryEvent::JobSubmitted {
            job: job.0,
            name: self.plans[plan].name.clone(),
            plan: plan as u64,
            stage: stage as u64,
        });
        self.job_to_plan.insert(job, (plan, stage));
        self.job_submit_time.insert(job, now);
        self.live_jobs.insert(job);
        if self.plan_state[plan].submitted_at.is_none() {
            self.plan_state[plan].submitted_at = Some(now);
            self.plan_state[plan].stage1_input = self.input_bytes_of(&spec);
        }

        // Hypothetical instantaneous scheme: whole input appears in memory
        // (one replica per block) at submission, vanishes at completion.
        if let JobInput::DfsFiles(files) = &spec.input {
            let mut assigns: Vec<(u32, u64)> = Vec::new();
            for f in files {
                for info in self.namenode.file_blocks(f).expect("input file missing") {
                    let locs = self.namenode.locations(info.id).expect("block vanished");
                    if locs.is_empty() || info.bytes == 0 {
                        continue;
                    }
                    let n = self.rng.choose(&locs).0;
                    assigns.push((n, info.bytes));
                }
            }
            for &(n, bytes) in &assigns {
                self.hypothetical[n as usize].add(now, bytes as f64);
            }
            self.hyp_assign.insert(job, assigns);
        }

        // The job-submitter's Ignem hook.
        if let (FsMode::Ignem, Some(mode)) = (self.mode, spec.submit.migrate) {
            if let JobInput::DfsFiles(files) = &spec.input {
                let req = MigrateRequest {
                    job,
                    files: files.clone(),
                    mode,
                    submitted: now,
                };
                match self
                    .master
                    .handle_migrate(&req, &self.namenode, &mut self.rng)
                {
                    Ok(batches) => {
                        self.job_migrated.insert(job);
                        for b in batches {
                            self.master_send(b.to.0, RpcPayload::Migrates(b.migrates));
                        }
                    }
                    Err(e) => {
                        // Migration is best-effort: a bad request must not
                        // take the simulation down — the job just reads cold.
                        self.telemetry.emit(|| TelemetryEvent::MigrationRejected {
                            job: job.0,
                            reason: e.to_string(),
                        });
                    }
                }
            }
        }

        self.job_spec.insert(job, spec.clone());
        // Lead-time sources between submission and schedulability: the
        // submitter itself, any artificial sleep (Fig. 8), and AM startup.
        let delay = self.cfg.compute.submit_overhead
            + spec.submit.extra_lead_time
            + self.cfg.compute.am_overhead;
        self.engine.schedule_in(delay, Event::Queued(job));
    }

    fn input_bytes_of(&self, spec: &JobSpec) -> u64 {
        match &spec.input {
            JobInput::DfsFiles(files) => files
                .iter()
                .map(|f| self.namenode.open(f).expect("input file missing").bytes)
                .sum(),
            JobInput::Cached(b) => *b,
        }
    }

    fn on_queued(&mut self, job: JobId) {
        if !self.live_jobs.contains(&job) {
            return; // killed while in the submitter
        }
        self.telemetry
            .emit(|| TelemetryEvent::JobScheduled { job: job.0 });
        let now = self.engine.now();
        let spec = self.job_spec[&job].clone();
        let inputs: Vec<MapInput> = match &spec.input {
            JobInput::DfsFiles(files) => {
                let mut v = Vec::new();
                for f in files {
                    for info in self.namenode.file_blocks(f).expect("input file missing") {
                        if info.bytes > 0 {
                            v.push(MapInput {
                                block: Some(info.id),
                                bytes: info.bytes,
                            });
                        }
                    }
                }
                v
            }
            JobInput::Cached(bytes) => split_into_blocks(*bytes, self.cfg.dfs.block_size)
                .into_iter()
                .map(|b| MapInput {
                    block: None,
                    bytes: b,
                })
                .collect(),
        };
        let submitted = self.job_submit_time[&job];
        if inputs.is_empty() {
            // Degenerate job (zero-byte input): completes instantly.
            self.finish_job_record(job, submitted, now, &spec);
            return;
        }
        self.tracker.submit(job, spec, submitted, now, &inputs);
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn on_heartbeat(&mut self, n: u32) {
        if !self.cols.alive.get(n as usize) {
            // The chain dies here; a crash-restart re-arms it exactly once.
            self.cols.hb_live.set(n as usize, false);
            return;
        }
        if self.cols.paused(n as usize).is_some() {
            // A paused node misses its heartbeat (no new work assigned)
            // but keeps beating once responsive again.
            if self.work_remaining() {
                self.engine
                    .schedule_in(self.cfg.compute.heartbeat, Event::Heartbeat(n));
            }
            return;
        }
        self.assign_tasks(NodeId(n), false);
        if self.cfg.compute.speculation && n == 0 {
            // One straggler sweep per heartbeat round (node 0's beat).
            self.check_stragglers();
        }
        if self.work_remaining() {
            self.engine
                .schedule_in(self.cfg.compute.heartbeat, Event::Heartbeat(n));
        }
    }

    /// One cluster-wide heartbeat round ([`ClusterConfig::heartbeat_sweep`]
    /// mode): visits every live, unpaused node in rotating order and runs
    /// the same per-beat assignment a node's own chain would. The rotation
    /// (`round % nodes`) keeps slot priority fair across rounds the way
    /// staggered chains are fair in expectation; the pending-task
    /// short-circuit skips the whole O(nodes) walk on quiet rounds, which
    /// at 12k nodes is nearly all of them.
    fn on_heartbeat_sweep(&mut self, round: u64) {
        if self.cfg.compute.speculation {
            self.check_stragglers();
        }
        let nodes = self.cfg.nodes;
        let start = (round % nodes as u64) as usize;
        for i in 0..nodes {
            if self.tracker.pending_maps().is_empty() && self.tracker.pending_reduces().is_empty() {
                break; // nothing left for any node's beat to assign
            }
            let n = (start + i) % nodes;
            if !self.cols.alive.get(n) || self.cols.paused(n).is_some() {
                continue;
            }
            if self.slots.free(NodeId(n as u32)) == 0 {
                continue;
            }
            self.assign_tasks(NodeId(n as u32), false);
        }
        if self.work_remaining() {
            self.engine
                .schedule_in(self.cfg.compute.heartbeat, Event::HeartbeatSweep(round + 1));
        }
    }

    /// Speculative execution: duplicate map tasks that have been running
    /// far longer than their job's mean completed-map time.
    fn check_stragglers(&mut self) {
        let now = self.engine.now();
        let threshold = self.cfg.compute.speculation_threshold;
        let mut to_speculate = Vec::new();
        let jobs: Vec<JobId> = self.tracker.jobs().map(|j| j.id).collect();
        for job in jobs {
            let j = self.tracker.job(job);
            if j.is_finished() {
                continue;
            }
            let done: Vec<f64> = j
                .map_tasks
                .iter()
                .filter_map(|t| self.tracker.task(*t).duration())
                .collect();
            if done.len() < 3 {
                continue; // not enough signal
            }
            let mean = done.iter().sum::<f64>() / done.len() as f64;
            for &t in &j.map_tasks {
                let rec = self.tracker.task(t);
                if let (ignem_compute::tracker::TaskState::Assigned(_), Some(at)) =
                    (rec.state, rec.assigned_at)
                {
                    let elapsed = now.duration_since(at).as_secs_f64();
                    if elapsed > threshold * mean {
                        to_speculate.push(t);
                    }
                }
            }
        }
        for t in to_speculate {
            if self.tracker.speculate(t).is_some() {
                self.metrics.speculated += 1;
                self.telemetry.emit(|| TelemetryEvent::TaskSpeculated {
                    task: t.0,
                    job: self.tracker.task(t).job.0,
                });
            }
        }
    }

    /// Cancels any in-flight IO owned by `task` (a cancelled speculative
    /// attempt).
    fn cancel_task_io(&mut self, task: TaskId) {
        let now = self.engine.now();
        // Owner maps iterate in key order (node 0..N, then ascending
        // request id), so two runs with the same seed cancel (and thus
        // draw randomness) in the same order.
        let disk_keys: Vec<(u32, RequestId)> = self
            .disk_owner
            .iter()
            .enumerate()
            .flat_map(|(n, owners)| {
                owners
                    .iter()
                    .filter(|(_, o)| matches!(o, DiskOwner::MapRead { task: t, .. } if *t == task))
                    .map(move |(req, _)| (n as u32, req))
            })
            .collect();
        for key in disk_keys {
            self.disk_owner[key.0 as usize].remove(&key.1);
            let done = self.disks[key.0 as usize].cancel(now, key.1);
            self.process_disk(key.0, done);
            self.resched_disk(key.0);
        }
        let ram_keys: Vec<(u32, RequestId)> = self
            .ram_owner
            .iter()
            .enumerate()
            .flat_map(|(n, owners)| {
                owners
                    .iter()
                    .filter(|(_, o)| matches!(o, DiskOwner::MapRead { task: t, .. } if *t == task))
                    .map(move |(req, _)| (n as u32, req))
            })
            .collect();
        for key in ram_keys {
            self.ram_owner[key.0 as usize].remove(&key.1);
            let done = self.rams[key.0 as usize].cancel(now, key.1);
            self.process_ram(key.0, done);
            self.resched_ram(key.0);
        }
        let xfers: Vec<TransferId> = self
            .net_owner
            .iter()
            .filter(|(_, o)| matches!(o, NetOwner::MapRead { task: t, .. } if *t == task))
            .map(|(k, _)| k)
            .collect();
        for id in xfers {
            self.net_owner.remove(&id);
            let done = self.net.cancel(now, id);
            self.process_net(done);
            self.resched_net();
        }
    }

    /// Fills free slots on `node`. At heartbeats any task may be assigned;
    /// on container reuse (`reuse = true`, immediately after a completion)
    /// Tez hands the freed container a new task without waiting for the
    /// next ResourceManager heartbeat — but a *brand-new* job's first tasks
    /// still wait for a heartbeat, preserving that lead-time source.
    fn assign_tasks(&mut self, node: NodeId, reuse: bool) {
        let now = self.engine.now();
        loop {
            if self.slots.free(node) == 0 {
                break;
            }
            let mems = &self.mems;
            let alive = &self.cols.alive;
            let namenode = &self.namenode;
            let pick = choose_map_task(
                &self.tracker,
                node,
                |nd, b| alive.get(nd.0 as usize) && mems[nd.0 as usize].contains(&b),
                |nd, b| namenode.has_alive_replica(b, nd),
            )
            .or_else(|| choose_reduce_task(&self.tracker));
            let Some(task) = pick else { break };
            if reuse
                && self
                    .tracker
                    .job(self.tracker.task(task).job)
                    .started_tasks()
                    == 0
            {
                // Container reuse only applies to jobs whose AM is already
                // running tasks; fresh jobs wait for a heartbeat.
                break;
            }
            assert!(self.slots.acquire(node), "slot vanished");
            self.telemetry.emit(|| TelemetryEvent::TaskAssigned {
                task: task.0,
                job: self.tracker.task(task).job.0,
                node: node.0,
            });
            self.tracker.assign(now, task, node);
            self.engine.schedule_in(
                self.cfg.compute.task_launch_overhead,
                Event::TaskLaunched(task),
            );
            if reuse {
                break; // one task per freed container
            }
        }
    }

    fn on_task_launched(&mut self, task: TaskId) {
        let rec = *self.tracker.task(task);
        let ignem_compute::tracker::TaskState::Assigned(node) = rec.state else {
            return; // requeued by a node failure while launching
        };
        // Task runtimes are measured from launch (first byte of IO), the
        // way the paper's Table II / Fig. 2 report mapper durations.
        self.task_launched_at.insert(task, self.engine.now());
        self.telemetry.emit(|| TelemetryEvent::TaskStarted {
            task: task.0,
            job: rec.job.0,
            node: node.0,
        });
        match rec.kind {
            TaskKind::Map { block, bytes } => self.start_map_read(task, node, block, bytes),
            TaskKind::Reduce { .. } => self.start_shuffle(task, node, rec.job),
        }
    }

    fn start_map_read(&mut self, task: TaskId, node: NodeId, block: Option<BlockId>, bytes: u64) {
        let now = self.engine.now();
        // A cached intermediate (no backing block) never leaves local
        // memory; handling it up front means every later arm has a real
        // block id in hand, instead of an `expect` tied to a non-local
        // invariant.
        let Some(b) = block else {
            let owner = DiskOwner::MapRead {
                task,
                kind: ReadKind::Memory,
                block: None,
                serving: node.0,
                started: now,
            };
            self.submit_ram(node.0, bytes, owner);
            return;
        };
        let source = {
            let mems = &self.mems;
            let alive = &self.cols.alive;
            match plan_read(
                &self.namenode,
                node,
                b,
                |nd, blk| alive.get(nd.0 as usize) && mems[nd.0 as usize].contains(&blk),
                &mut self.rng,
            ) {
                Ok(s) => s,
                Err(_) => {
                    // Every replica is currently dead (mid-failure
                    // window). Retry after a heartbeat instead of
                    // crashing: re-replication may restore a copy.
                    self.engine
                        .schedule_in(self.cfg.compute.heartbeat, Event::TaskLaunched(task));
                    return;
                }
            }
        };
        match source {
            ReadSource::LocalMemory => {
                let owner = DiskOwner::MapRead {
                    task,
                    kind: ReadKind::Memory,
                    block,
                    serving: node.0,
                    started: now,
                };
                self.submit_ram(node.0, bytes, owner);
            }
            ReadSource::RemoteMemory(holder) => {
                let id = TransferId(self.next_xfer);
                self.next_xfer += 1;
                self.net_owner.insert(
                    id,
                    NetOwner::MapRead {
                        task,
                        block: b,
                        serving: holder.0,
                        started: now,
                    },
                );
                let done = self.net.start(now, id, holder, node, bytes.max(1));
                self.process_net(done);
                self.resched_net();
            }
            ReadSource::LocalDisk => {
                let owner = DiskOwner::MapRead {
                    task,
                    kind: ReadKind::LocalDisk,
                    block,
                    serving: node.0,
                    started: now,
                };
                self.submit_disk(node.0, IoKind::Read, bytes, owner);
            }
            ReadSource::RemoteDisk(r) => {
                // Bottlenecked by the remote disk (10 GbE is faster).
                let owner = DiskOwner::MapRead {
                    task,
                    kind: ReadKind::RemoteDisk,
                    block,
                    serving: r.0,
                    started: now,
                };
                self.submit_disk(r.0, IoKind::Read, bytes, owner);
            }
        }
    }

    fn start_shuffle(&mut self, task: TaskId, node: NodeId, job: JobId) {
        let now = self.engine.now();
        let spec = &self.job_spec[&job];
        let reducers = spec.reducers.max(1) as u64;
        let share = spec.shuffle_bytes / reducers;
        let remote = share * (self.cfg.nodes as u64 - 1) / self.cfg.nodes as u64;
        if remote == 0 || self.cfg.nodes == 1 {
            self.schedule_reduce_compute(task, job, share);
            return;
        }
        // Pick a random alive source other than the reducer's node.
        let sources: Vec<NodeId> = (0..self.cfg.nodes as u32)
            .map(NodeId)
            .filter(|&nd| nd != node && self.cols.alive.get(nd.0 as usize))
            .collect();
        if sources.is_empty() {
            self.schedule_reduce_compute(task, job, share);
            return;
        }
        let src = *self.rng.choose(&sources);
        let id = TransferId(self.next_xfer);
        self.next_xfer += 1;
        self.net_owner.insert(id, NetOwner::Shuffle { task });
        let done = self.net.start(now, id, src, node, remote);
        self.process_net(done);
        self.resched_net();
    }

    fn schedule_reduce_compute(&mut self, task: TaskId, job: JobId, share: u64) {
        // lint: allow(P02, reason = "specs are inserted at submission and live until the job finishes")
        let spec = &self.job_spec[&job];
        let secs = share as f64 / spec.reduce_cpu_rate * self.jitter();
        self.engine.schedule_in(
            SimDuration::from_secs_f64(secs),
            Event::TaskComputeDone(task),
        );
    }

    /// A mean-one log-normal compute-time multiplier (1.0 when jitter is
    /// disabled).
    fn jitter(&mut self) -> f64 {
        let sigma = self.cfg.compute.compute_jitter_sigma;
        if sigma == 0.0 {
            return 1.0;
        }
        let mu = -sigma * sigma / 2.0;
        (mu + sigma * ignem_simcore::dist::standard_normal(&mut self.rng)).exp()
    }

    fn on_task_compute_done(&mut self, task: TaskId) {
        let now = self.engine.now();
        let rec = *self.tracker.task(task);
        let ignem_compute::tracker::TaskState::Assigned(node) = rec.state else {
            return; // node failed mid-compute; task requeued
        };
        if let TaskKind::Reduce { .. } = rec.kind {
            // Write this reducer's output share (buffered; flush contends).
            let spec = &self.job_spec[&rec.job];
            let share = spec.output_bytes / spec.reducers.max(1) as u64;
            if share > 0 {
                let done = self.disks[node.0 as usize].buffered_write(now, share);
                self.process_disk(node.0, done);
                self.resched_disk(node.0);
            }
        }
        let outcome = self.tracker.complete(now, task);
        self.slots.release(node);
        self.telemetry.emit(|| TelemetryEvent::TaskFinished {
            task: task.0,
            job: rec.job.0,
            node: node.0,
        });
        if let Some((loser, loser_node)) = outcome.cancelled_attempt {
            self.task_launched_at.remove(&loser);
            self.cancel_task_io(loser);
            if let Some(nd) = loser_node {
                if self.cols.alive.get(nd.0 as usize) {
                    self.slots.release(nd);
                    // The freed container can take new work immediately.
                    self.assign_tasks(nd, true);
                }
            }
        }
        if let Some(launched) = self.task_launched_at.remove(&task) {
            let d = now.duration_since(launched).as_secs_f64();
            match rec.kind {
                TaskKind::Map { .. } => self.metrics.map_task_secs.push(d),
                TaskKind::Reduce { .. } => self.metrics.reduce_task_secs.push(d),
            }
        }
        if outcome.job_finished {
            self.on_job_finished(rec.job);
        }
        // Tez container reuse: the freed slot takes another task at once.
        if self.cols.alive.get(node.0 as usize) {
            self.assign_tasks(node, true);
        }
    }

    fn on_job_finished(&mut self, job: JobId) {
        let now = self.engine.now();
        let spec = self.job_spec[&job].clone();
        let submitted = self.job_submit_time[&job];
        self.finish_job_record(job, submitted, now, &spec);
    }

    fn finish_job_record(&mut self, job: JobId, submitted: SimTime, now: SimTime, spec: &JobSpec) {
        let (plan, stage) = self.job_to_plan[&job];
        self.live_jobs.remove(&job);
        // Hypothetical scheme evicts at completion.
        if let Some(assigns) = self.hyp_assign.remove(&job) {
            for (n, bytes) in assigns {
                self.hypothetical[n as usize].add(now, -(bytes as f64));
            }
        }
        // Job completion evict (paper: the submitter issues it).
        if self.job_migrated.remove(&job) {
            for b in self.master.handle_evict(job) {
                for j in b.evicts {
                    self.master_send(b.to.0, RpcPayload::Evict(j));
                }
            }
        }
        self.telemetry.emit(|| TelemetryEvent::JobCompleted {
            job: job.0,
            duration_us: now.duration_since(submitted).as_micros(),
        });
        self.metrics.jobs.push(JobResult {
            name: spec.name.clone(),
            plan,
            stage,
            input_bytes: self.input_bytes_of(spec),
            submitted,
            duration: now.duration_since(submitted).as_secs_f64(),
        });
        // Advance the plan.
        let state = &mut self.plan_state[plan];
        if stage + 1 < self.plans[plan].stages.len() {
            state.current_stage = stage + 1;
            self.engine.schedule_now(Event::Submit(plan));
        } else if !state.finished {
            state.finished = true;
            let started = state.submitted_at.expect("plan finished before submit");
            self.metrics.plans.push(PlanResult {
                name: self.plans[plan].name.clone(),
                plan,
                input_bytes: state.stage1_input,
                duration: now.duration_since(started).as_secs_f64(),
            });
            self.unfinished_plans -= 1;
            // A finished plan is never submitted or killed again (both
            // paths gate on `finished`); dropping its stage specs keeps a
            // streamed month-long run's footprint proportional to *live*
            // jobs, not total jobs admitted.
            self.plans[plan].stages = Vec::new();
        }
        // Same reasoning for the per-job records: every later lookup
        // (re-ignition, stragglers, task paths) filters on live jobs.
        self.job_spec.remove(&job);
        self.job_submit_time.remove(&job);
        self.job_to_plan.remove(&job);
    }

    // ------------------------------------------------------------------
    // Ignem plumbing
    // ------------------------------------------------------------------

    /// Registers an acked send with the master (which stamps its current
    /// epoch, and its belief of the destination's incarnation, on it) and
    /// dispatches the first transmission through the unreliable channel.
    fn master_send(&mut self, to: u32, payload: RpcPayload) {
        let epoch = self.master.epoch();
        let incarnation = self.master.slave_incarnation(NodeId(to));
        let (seq, timeout) = self.master.register_send(NodeId(to), payload.clone());
        self.dispatch_send(seq, to, payload, epoch, incarnation, timeout);
    }

    /// Sends one (re)transmission attempt: schedules a delivery event for
    /// every copy the channel lets through, plus the ack timeout. The
    /// epoch and incarnation travel with the message — a retransmission
    /// from before a master failover still carries its *original* epoch,
    /// and one from before a slave crash its *original* incarnation; the
    /// receiving side rejects either kind of stale stamp.
    fn dispatch_send(
        &mut self,
        seq: SeqNo,
        to: u32,
        payload: RpcPayload,
        epoch: Epoch,
        incarnation: Incarnation,
        timeout: SimDuration,
    ) {
        let rpc = self.net.rpc_latency();
        let copies = self.rpc.deliveries(
            &mut self.rpc_rng,
            RpcPeer::Master,
            RpcPeer::Slave(NodeId(to)),
        );
        for extra in copies {
            let ev = match &payload {
                RpcPayload::Migrates(cmds) => {
                    Event::DeliverMigrates(to, seq, epoch, incarnation, cmds.clone())
                }
                RpcPayload::Evict(job) => Event::DeliverEvict(to, seq, epoch, incarnation, *job),
            };
            self.engine.schedule_in(rpc + extra, ev);
        }
        self.engine.schedule_in(timeout, Event::RpcTimeout(seq));
    }

    /// Routes a slave's acknowledgement back to the master (also lossy: a
    /// lost ack triggers a retransmission the slave absorbs idempotently).
    fn slave_ack(&mut self, n: u32, seq: SeqNo) {
        let rpc = self.net.rpc_latency();
        let copies = self.rpc.deliveries(
            &mut self.rpc_rng,
            RpcPeer::Slave(NodeId(n)),
            RpcPeer::Master,
        );
        for extra in copies {
            self.engine.schedule_in(rpc + extra, Event::DeliverAck(seq));
        }
    }

    fn on_rpc_timeout(&mut self, seq: SeqNo) {
        // The master itself emits RpcRetried / RpcGaveUp.
        match self.master.on_timeout(seq) {
            RetryDecision::Settled => {}
            RetryDecision::Retry {
                to,
                payload,
                epoch,
                incarnation,
                next_timeout,
            } => self.dispatch_send(seq, to.0, payload, epoch, incarnation, next_timeout),
            RetryDecision::GiveUp { .. } => {}
        }
    }

    /// Whether the node's control plane is paused; if so, re-queues `ev` for
    /// the resume instant and returns true.
    fn defer_if_paused(&mut self, n: u32, ev: Event) -> bool {
        if let Some(until) = self.cols.paused(n as usize) {
            self.engine.schedule_at(until, ev);
            return true;
        }
        false
    }

    fn on_deliver_migrates(
        &mut self,
        n: u32,
        seq: SeqNo,
        epoch: Epoch,
        inc: Incarnation,
        cmds: Vec<MigrateCommand>,
    ) {
        if !self.cols.alive.get(n as usize) {
            return; // dead node never acks; the master retries, then gives up
        }
        if self.defer_if_paused(n, Event::DeliverMigrates(n, seq, epoch, inc, cmds.clone())) {
            return;
        }
        // Stale-incarnation commands are dropped *without* an ack, like
        // stale epochs below: they were addressed to a pre-crash boot of
        // this slave, and registration purges them from the master's
        // outbox (their pending timeouts settle as stale).
        if !self.slaves[n as usize].observe_incarnation(inc) {
            return;
        }
        let now = self.engine.now();
        // Stale-epoch commands are dropped *without* an ack: they come from
        // a master incarnation that no longer exists, and the live master
        // never re-sends them (failover cleared its outbox).
        let Some(mut actions) =
            self.slaves[n as usize].observe_epoch(now, epoch, &mut self.mems[n as usize])
        else {
            return;
        };
        actions.extend(self.slaves[n as usize].enqueue(now, cmds, &mut self.mems[n as usize]));
        self.process_slave_actions(n, actions);
        self.slave_ack(n, seq);
    }

    fn on_deliver_evict(&mut self, n: u32, seq: SeqNo, epoch: Epoch, inc: Incarnation, job: JobId) {
        if !self.cols.alive.get(n as usize) {
            return;
        }
        if self.defer_if_paused(n, Event::DeliverEvict(n, seq, epoch, inc, job)) {
            return;
        }
        if !self.slaves[n as usize].observe_incarnation(inc) {
            return;
        }
        let now = self.engine.now();
        let Some(mut actions) =
            self.slaves[n as usize].observe_epoch(now, epoch, &mut self.mems[n as usize])
        else {
            return;
        };
        actions.extend(self.slaves[n as usize].on_evict_job(now, job, &mut self.mems[n as usize]));
        self.process_slave_actions(n, actions);
        self.slave_ack(n, seq);
    }

    /// A slave's liveness query arriving at the master: split the named
    /// jobs into dead and alive and route the verdict back through the
    /// channel. The alive list doubles as a lease renewal.
    fn on_liveness_query(&mut self, n: u32, jobs: Vec<JobId>) {
        let (alive, dead): (Vec<JobId>, Vec<JobId>) =
            jobs.into_iter().partition(|j| self.live_jobs.contains(j));
        let epoch = self.master.epoch();
        let rpc = self.net.rpc_latency();
        let copies = self.rpc.deliveries(
            &mut self.rpc_rng,
            RpcPeer::Master,
            RpcPeer::Slave(NodeId(n)),
        );
        for extra in copies {
            self.engine.schedule_in(
                rpc + extra,
                Event::LivenessReply(n, epoch, dead.clone(), alive.clone()),
            );
        }
    }

    // Liveness replies are deliberately not incarnation-fenced: one that
    // was in flight across a crash arrives at a freshly restarted slave
    // with no references, where both the dead and alive verdicts are
    // no-ops. Fencing them would only cost an extra stamp on the wire.
    fn on_liveness_reply(&mut self, n: u32, epoch: Epoch, dead: Vec<JobId>, alive: Vec<JobId>) {
        if !self.cols.alive.get(n as usize) {
            return;
        }
        if self.defer_if_paused(
            n,
            Event::LivenessReply(n, epoch, dead.clone(), alive.clone()),
        ) {
            return;
        }
        let now = self.engine.now();
        let Some(mut actions) =
            self.slaves[n as usize].observe_epoch(now, epoch, &mut self.mems[n as usize])
        else {
            return;
        };
        actions.extend(self.slaves[n as usize].on_liveness_result(
            now,
            dead,
            alive,
            &mut self.mems[n as usize],
        ));
        self.process_slave_actions(n, actions);
    }

    /// One node's lease timer fired: expire every overdue job lease. A
    /// stale generation means a renewal superseded this timer; a paused
    /// control plane defers expiry the same way it defers deliveries.
    fn on_lease_check(&mut self, n: u32, gen: u64) {
        if gen != self.cols.lease_gen[n as usize] || !self.cols.alive.get(n as usize) {
            return;
        }
        if self.defer_if_paused(n, Event::LeaseCheck(n, gen)) {
            return;
        }
        let now = self.engine.now();
        let actions = self.slaves[n as usize].expire_leases(now, &mut self.mems[n as usize]);
        self.process_slave_actions(n, actions);
    }

    /// (Re)schedules the lease timer for node `n` at its earliest expiry.
    /// A no-op when leasing is disabled, so reliable runs schedule nothing.
    fn resched_lease(&mut self, n: u32) {
        if self.cfg.ignem.lease.is_none() {
            return;
        }
        self.cols.lease_gen[n as usize] += 1;
        let gen = self.cols.lease_gen[n as usize];
        if let Some(at) = self.slaves[n as usize].next_lease_expiry() {
            self.engine
                .schedule_at(at.max(self.engine.now()), Event::LeaseCheck(n, gen));
        }
    }

    /// The master's periodic reference-cleanup sweep: for every responsive
    /// slave still interested in a job the master knows to be dead, push an
    /// unsolicited liveness verdict. This is the backstop for references
    /// created by a migrate batch delivered *after* a master failover purged
    /// the slave (the master has no job record, so no evict ever comes, and
    /// the slave's own threshold-triggered query may never fire once the
    /// buffer is quiet). In a healthy run every sweep finds nothing and the
    /// sweep neither consumes randomness nor sends anything.
    fn on_cleanup_sweep(&mut self) {
        let epoch = self.master.epoch();
        for n in 0..self.cfg.nodes as u32 {
            if !self.cols.alive.get(n as usize) || self.cols.paused(n as usize).is_some() {
                continue;
            }
            if !self.slaves[n as usize].has_interest() {
                // O(1) skip: at 12k nodes almost every node holds no
                // references on any given sweep, and materializing an
                // empty Vec per node per sweep would dominate the pass.
                continue;
            }
            let (alive, dead): (Vec<JobId>, Vec<JobId>) = self.slaves[n as usize]
                .interested_jobs()
                .into_iter()
                .partition(|j| self.live_jobs.contains(j));
            if dead.is_empty() {
                continue;
            }
            let rpc = self.net.rpc_latency();
            let copies = self.rpc.deliveries(
                &mut self.rpc_rng,
                RpcPeer::Master,
                RpcPeer::Slave(NodeId(n)),
            );
            for extra in copies {
                self.engine.schedule_in(
                    rpc + extra,
                    Event::LivenessReply(n, epoch, dead.clone(), alive.clone()),
                );
            }
        }
        // Keep sweeping while work may still create references, or any
        // alive slave still holds interest (a reply may have been lost).
        let interest =
            (0..self.cfg.nodes).any(|n| self.cols.alive.get(n) && self.slaves[n].has_interest());
        if self.work_remaining() || interest {
            self.engine
                .schedule_in(self.cfg.cleanup_sweep, Event::CleanupSweep);
        }
    }

    /// Applies a slave's requested actions and then re-arms its lease
    /// timer. Every world↔slave interaction funnels through here, so the
    /// timer always tracks the earliest outstanding lease.
    fn process_slave_actions(&mut self, n: u32, actions: Vec<SlaveAction>) {
        for a in actions {
            match a {
                SlaveAction::StartRead { block, bytes } => {
                    // The slave emits MigrationStarted when it issues this.
                    let owner = DiskOwner::Migration { block };
                    let req = self.submit_disk(n, IoKind::Migration, bytes, owner);
                    self.migration_req.insert((n, block), req);
                }
                SlaveAction::CancelRead { block } => {
                    if let Some(req) = self.migration_req.remove(&(n, block)) {
                        self.disk_owner[n as usize].remove(&req);
                        self.telemetry.emit(|| TelemetryEvent::MigrationCancelled {
                            node: n,
                            block: block.0,
                        });
                        let now = self.engine.now();
                        let done = self.disks[n as usize].cancel(now, req);
                        self.process_disk(n, done);
                        self.resched_disk(n);
                    }
                }
                SlaveAction::QueryJobLiveness { jobs } => {
                    // Routed through the lossy channel both ways (the dead
                    // set is evaluated when the query *arrives* at the
                    // master). Not acked: the slave's cooldown re-issues
                    // lost queries on the next buffer-pressure check.
                    let rpc = self.net.rpc_latency();
                    let copies = self.rpc.deliveries(
                        &mut self.rpc_rng,
                        RpcPeer::Slave(NodeId(n)),
                        RpcPeer::Master,
                    );
                    for extra in copies {
                        self.engine
                            .schedule_in(rpc + extra, Event::LivenessQuery(n, jobs.clone()));
                    }
                }
            }
        }
        self.resched_lease(n);
    }

    // ------------------------------------------------------------------
    // IO plumbing
    // ------------------------------------------------------------------

    /// Allocates a [`RequestId`] from node `n`'s counter. Ids only ever
    /// meet per-node structures, so per-node allocation is safe and keeps
    /// each owner map's [`IdMap`] window node-local (see
    /// [`NodeColumns::next_req`]); within a node the allocation order —
    /// and therefore the cancellation-sweep order — is unchanged.
    fn alloc_req(&mut self, n: u32) -> RequestId {
        let id = RequestId(self.cols.next_req[n as usize]);
        self.cols.next_req[n as usize] += 1;
        id
    }

    fn submit_disk(&mut self, n: u32, kind: IoKind, bytes: u64, owner: DiskOwner) -> RequestId {
        let now = self.engine.now();
        let id = self.alloc_req(n);
        self.disk_owner[n as usize].insert(id, owner);
        let done = self.disks[n as usize].submit(now, id, kind, bytes.max(1));
        self.process_disk(n, done);
        self.resched_disk(n);
        id
    }

    fn submit_ram(&mut self, n: u32, bytes: u64, owner: DiskOwner) -> RequestId {
        let now = self.engine.now();
        let id = self.alloc_req(n);
        self.ram_owner[n as usize].insert(id, owner);
        let done = self.rams[n as usize].submit(now, id, IoKind::Read, bytes.max(1));
        self.process_ram(n, done);
        self.resched_ram(n);
        id
    }

    fn resched_disk(&mut self, n: u32) {
        self.cols.disk_gen[n as usize] += 1;
        let gen = self.cols.disk_gen[n as usize];
        if let Some(t) = self.disks[n as usize].next_event() {
            self.engine.schedule_at(t, Event::DiskTimer(n, gen));
        }
    }

    fn resched_ram(&mut self, n: u32) {
        self.cols.ram_gen[n as usize] += 1;
        let gen = self.cols.ram_gen[n as usize];
        if let Some(t) = self.rams[n as usize].next_event() {
            self.engine.schedule_at(t, Event::RamTimer(n, gen));
        }
    }

    fn resched_net(&mut self) {
        self.net_gen += 1;
        let gen = self.net_gen;
        if let Some(t) = self.net.next_event() {
            self.engine.schedule_at(t, Event::NetTimer(gen));
        }
    }

    fn on_disk_timer(&mut self, n: u32, gen: u64) {
        if gen != self.cols.disk_gen[n as usize] {
            return;
        }
        let now = self.engine.now();
        let done = self.disks[n as usize].advance(now);
        self.process_disk(n, done);
        self.resched_disk(n);
    }

    fn on_ram_timer(&mut self, n: u32, gen: u64) {
        if gen != self.cols.ram_gen[n as usize] {
            return;
        }
        let now = self.engine.now();
        let done = self.rams[n as usize].advance(now);
        self.process_ram(n, done);
        self.resched_ram(n);
    }

    fn on_net_timer(&mut self, gen: u64) {
        if gen != self.net_gen {
            return;
        }
        let now = self.engine.now();
        let done = self.net.advance(now);
        self.process_net(done);
        self.resched_net();
    }

    fn process_disk(&mut self, n: u32, done: Vec<Completion>) {
        for c in done {
            let Some(owner) = self.disk_owner[n as usize].remove(&c.id) else {
                continue; // cancelled
            };
            match owner {
                DiskOwner::Migration { block } => {
                    // The slave emits MigrationCompleted / MigrationWasted.
                    self.migration_req.remove(&(n, block));
                    let now = self.engine.now();
                    let actions = self.slaves[n as usize].on_read_done(
                        now,
                        block,
                        &mut self.mems[n as usize],
                    );
                    self.process_slave_actions(n, actions);
                    self.mreg.gauge_set(
                        "mem_migrated_bytes",
                        n as u64,
                        self.mems[n as usize].migrated_used() as i64,
                    );
                }
                DiskOwner::MapRead {
                    task,
                    kind,
                    block,
                    serving,
                    started,
                } => self.finish_map_read(task, kind, block, serving, started, c.bytes),
                DiskOwner::Rereplicate { block, target } => {
                    self.rerep_active = false;
                    if self.cols.alive.get(target as usize) {
                        let now = self.engine.now();
                        let done = self.disks[target as usize].buffered_write(now, c.bytes);
                        self.process_disk(target, done);
                        self.resched_disk(target);
                        // The target may have raced a concurrent failure or
                        // already hold the replica; skip, don't crash.
                        if self.namenode.add_replica(block, NodeId(target)).is_ok() {
                            self.metrics.rereplicated += 1;
                        }
                    }
                    self.start_next_rereplication();
                }
            }
        }
    }

    /// Starts the next queued re-replication (one at a time cluster-wide,
    /// like HDFS's throttled replication monitor). Blocks with no legal
    /// source/target *right now* are deferred and retried with backoff —
    /// a crash outage is temporary, so "no target" is usually transient —
    /// instead of being silently dropped.
    fn start_next_rereplication(&mut self) {
        if self.rerep_active {
            return;
        }
        while let Some(block) = self.rerep_queue.pop() {
            if !self.namenode.is_under_replicated(block) {
                // Recovered while queued (its holder re-registered) or
                // satisfied by the alive-node clamp: nothing to do.
                continue;
            }
            let Ok(locations) = self.namenode.locations(block) else {
                continue;
            };
            if locations.is_empty() {
                continue; // lost block: nothing to copy from
            }
            let holders: Vec<NodeId> = locations;
            let candidates: Vec<NodeId> = (0..self.cfg.nodes as u32)
                .map(NodeId)
                .filter(|n| self.cols.alive.get(n.0 as usize) && !holders.contains(n))
                .collect();
            if candidates.is_empty() {
                self.defer_rereplication(block);
                continue;
            }
            let source = *self.rng.choose(&holders);
            let target = *self.rng.choose(&candidates);
            let Ok(info) = self.namenode.block_info(block) else {
                continue; // block deleted while queued for re-replication
            };
            let bytes = info.bytes;
            let owner = DiskOwner::Rereplicate {
                block,
                target: target.0,
            };
            self.rerep_active = true;
            self.rerep_attempt = 0; // progress resets the backoff
            self.telemetry
                .emit(|| TelemetryEvent::RereplicationStarted {
                    block: block.0,
                    source: source.0,
                    target: target.0,
                    bytes,
                });
            self.submit_disk(source.0, IoKind::Read, bytes, owner);
            return;
        }
        self.arm_rerep_retry();
    }

    fn process_ram(&mut self, n: u32, done: Vec<Completion>) {
        for c in done {
            let Some(owner) = self.ram_owner[n as usize].remove(&c.id) else {
                continue;
            };
            if let DiskOwner::MapRead {
                task,
                kind,
                block,
                serving,
                started,
            } = owner
            {
                self.finish_map_read(task, kind, block, serving, started, c.bytes);
            }
        }
    }

    fn process_net(&mut self, done: Vec<ignem_netsim::TransferDone>) {
        for t in done {
            let Some(owner) = self.net_owner.remove(&t.id) else {
                continue;
            };
            match owner {
                NetOwner::MapRead {
                    task,
                    block,
                    serving,
                    started,
                } => self.finish_map_read(
                    task,
                    ReadKind::Memory,
                    Some(block),
                    serving,
                    started,
                    t.bytes,
                ),
                NetOwner::Shuffle { task } => {
                    let rec = *self.tracker.task(task);
                    if let ignem_compute::tracker::TaskState::Assigned(_) = rec.state {
                        // lint: allow(P02, reason = "specs are inserted at submission and live until the job finishes")
                        let spec = &self.job_spec[&rec.job];
                        let share = spec.shuffle_bytes / spec.reducers.max(1) as u64;
                        self.schedule_reduce_compute(task, rec.job, share);
                    }
                }
            }
        }
    }

    fn finish_map_read(
        &mut self,
        task: TaskId,
        kind: ReadKind,
        block: Option<BlockId>,
        serving: u32,
        started: SimTime,
        bytes: u64,
    ) {
        let now = self.engine.now();
        let rec = *self.tracker.task(task);
        let ignem_compute::tracker::TaskState::Assigned(_) = rec.state else {
            return; // requeued meanwhile
        };
        if let Some(b) = block {
            // lint: allow(Q01, reason = "end-of-run metrics accumulator, bounded by the workload's block reads")
            self.metrics.block_reads.push(BlockRead {
                bytes,
                secs: now.duration_since(started).as_secs_f64(),
                kind,
            });
            // Emitted under exactly the guard that records the metric, so
            // the explainer's verdict counts reconcile with RunMetrics.
            self.telemetry.emit(|| TelemetryEvent::BlockRead {
                task: task.0,
                job: rec.job.0,
                block: b.0,
                node: serving,
                bytes,
                class: match kind {
                    ReadKind::Memory => ReadClass::Memory,
                    ReadKind::LocalDisk => ReadClass::LocalDisk,
                    ReadKind::RemoteDisk => ReadClass::RemoteDisk,
                },
                duration_us: now.duration_since(started).as_micros(),
            });
            self.mreg.observe(
                "block_read_us",
                kind as u64,
                now.duration_since(started).as_micros(),
            );
        }
        // Optional PACMan-style page cache on the serving node.
        if self.cfg.cache_reads && self.cols.alive.get(serving as usize) {
            if let Some(b) = block {
                match kind {
                    ReadKind::Memory => self.mems[serving as usize].touch(&b),
                    ReadKind::LocalDisk | ReadKind::RemoteDisk => {
                        self.mems[serving as usize].insert_cached(now, b, bytes);
                    }
                }
            }
        }
        // HDFS reads carry the job id; the serving slave reacts (implicit
        // eviction / missed-read cleanup).
        if self.mode == FsMode::Ignem {
            if let Some(b) = block {
                if self.cols.alive.get(serving as usize) {
                    let actions = self.slaves[serving as usize].on_block_read(
                        now,
                        b,
                        rec.job,
                        &mut self.mems[serving as usize],
                    );
                    self.process_slave_actions(serving, actions);
                }
            }
        }
        // lint: allow(P02, reason = "specs are inserted at submission and live until the job finishes")
        let rate = self.job_spec[&rec.job].map_cpu_rate;
        let secs = bytes as f64 / rate * self.jitter();
        self.engine.schedule_in(
            SimDuration::from_secs_f64(secs),
            Event::TaskComputeDone(task),
        );
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn on_inject(&mut self, idx: usize) {
        if self.suppressed_faults[idx] {
            // A suppressed fault injects nothing and emits nothing: the
            // continuation behaves exactly like a world built without it
            // (the Inject pop itself only moves the processed counter,
            // which no fingerprinted metric includes).
            return;
        }
        let now = self.engine.now();
        self.telemetry.emit(|| TelemetryEvent::FaultInjected {
            desc: format!("{:?}", self.faults[idx].1),
        });
        match self.faults[idx].1.clone() {
            Fault::MasterFail => {
                self.master.fail();
                let epoch = self.master.epoch();
                for n in 0..self.cfg.nodes {
                    if self.cols.alive.get(n) {
                        let actions =
                            self.slaves[n].on_master_failed(now, epoch, &mut self.mems[n]);
                        self.process_slave_actions(n as u32, actions);
                    }
                }
            }
            Fault::SlaveRestart(node) => {
                let n = node.0 as usize;
                if self.cols.alive.get(n) {
                    let actions = self.slaves[n].fail(now, &mut self.mems[n]);
                    self.process_slave_actions(node.0, actions);
                }
            }
            Fault::NodeFail(node) => self.fail_node(node),
            Fault::KillPlan(p) => self.kill_plan(p),
            Fault::DiskDegrade(node, percent, duration) => {
                let n = node.0 as usize;
                assert!(percent > 0 && percent <= 100, "bad degrade percent");
                if self.cols.alive.get(n) {
                    let factor = percent as f64 / 100.0;
                    let done = self.disks[n].set_speed_factor(now, factor);
                    self.process_disk(node.0, done);
                    self.resched_disk(node.0);
                    self.engine
                        .schedule_in(duration, Event::DiskRestore(node.0));
                }
            }
            Fault::NodePause(node, duration) => {
                let n = node.0 as usize;
                if self.cols.alive.get(n) {
                    self.cols.set_paused(n, Some(now + duration));
                    self.engine.schedule_in(duration, Event::NodeResume(node.0));
                }
            }
            Fault::Partition(nodes, duration) => {
                // The fault index keys the partition so overlapping
                // partitions heal independently.
                self.rpc.partition(idx, &nodes);
                self.engine.schedule_in(duration, Event::PartitionHeal(idx));
            }
            Fault::NodeCrash(node, down_for) => {
                let n = node.0 as usize;
                if !self.cols.alive.get(n) {
                    return; // already dead (failed or mid-crash): no-op
                }
                // Emitted before the purge so the BlockEvicted events the
                // purge produces at this instant classify as crash losses
                // in the explainer.
                self.telemetry
                    .emit(|| TelemetryEvent::NodeCrashed { node: node.0 });
                self.metrics.crashes += 1;
                self.cols.crashed_down.set(n, true);
                self.cols.crashed_ever.set(n, true);
                // Down is down: the full node-failure machinery (NameNode
                // death mark, slave purge, task re-execution, IO
                // cancellation with read re-issue, re-replication).
                self.fail_node(node);
                // The crash loses *all* volatile RAM — pinned inputs and
                // page cache too, not just the migrated blocks the slave
                // purge already debited. Durable disk blocks survive.
                self.mems[n].wipe(now);
                // A rebooting machine has no GC stall to wait out.
                self.cols.set_paused(n, None);
                // The NIC is dark for the outage. Partition ids at or
                // above `faults.len()` are reserved for crash NIC-downs
                // (fault indices key the injected partitions), and one
                // node has at most one active crash, so `faults.len() + n`
                // is collision-free.
                self.rpc.partition(self.faults.len() + n, &[node]);
                self.engine
                    .schedule_in(down_for, Event::NodeRestart(node.0));
            }
        }
    }

    fn on_disk_restore(&mut self, n: u32) {
        if !self.cols.alive.get(n as usize) {
            return;
        }
        self.telemetry.emit(|| TelemetryEvent::FaultHealed {
            desc: format!("node{n} disk restored to nominal speed"),
        });
        let now = self.engine.now();
        let done = self.disks[n as usize].set_speed_factor(now, 1.0);
        self.process_disk(n, done);
        self.resched_disk(n);
    }

    fn on_node_resume(&mut self, n: u32) {
        self.telemetry.emit(|| TelemetryEvent::FaultHealed {
            desc: format!("node{n} control plane resumed"),
        });
        self.cols.set_paused(n as usize, None);
    }

    fn on_partition_heal(&mut self, id: usize) {
        self.telemetry.emit(|| TelemetryEvent::FaultHealed {
            desc: format!("partition {id} healed"),
        });
        self.rpc.heal(id);
    }

    // ------------------------------------------------------------------
    // Crash recovery (see the module-level *Crash and recovery* section)
    // ------------------------------------------------------------------

    /// A crashed node's outage ends. The server boots with its durable
    /// disk intact and an empty RAM, the NIC comes back up, the slave
    /// restarts under a fresh incarnation and announces itself to the
    /// master. A [`Fault::NodeFail`] that hit during the outage was a
    /// no-op (the node was already dead), so restart is unconditional for
    /// a dark node.
    fn on_node_restart(&mut self, n: u32) {
        let idx = n as usize;
        if !self.cols.crashed_down.get(idx) {
            return;
        }
        let now = self.engine.now();
        self.cols.crashed_down.set(idx, false);
        self.cols.alive.set(idx, true);
        // NIC up *before* the registration send, or the channel would cut
        // it. A reboot also clears any lingering disk-speed degradation
        // (a later DiskRestore for a healed degrade is idempotent).
        self.rpc.heal(self.faults.len() + idx);
        let done = self.disks[idx].set_speed_factor(now, 1.0);
        self.process_disk(n, done);
        self.resched_disk(n);
        let incarnation = self.slaves[idx].restart();
        self.telemetry.emit(|| TelemetryEvent::NodeRestarted {
            node: n,
            incarnation: incarnation.0,
        });
        self.metrics.restarts += 1;
        // Heartbeats: the node's chain died while it was dark; re-arm it
        // once (guarded so a short outage that never dropped a beat does
        // not end up with two concurrent chains).
        if !self.cfg.heartbeat_sweep && self.work_remaining() && !self.cols.hb_live.get(idx) {
            // In sweep mode the cluster-wide round covers restarted nodes
            // automatically; only per-node chains need re-arming.
            self.cols.hb_live.set(idx, true);
            self.engine
                .schedule_in(self.cfg.compute.heartbeat, Event::Heartbeat(n));
        }
        self.send_register(n, 1);
    }

    /// Sends (or retransmits) a restarted slave's registration through the
    /// lossy channel and arms the next retry. Registration is idempotent
    /// at the master, so duplicates from generous retries are harmless.
    fn send_register(&mut self, n: u32, attempt: u32) {
        let incarnation = self.slaves[n as usize].incarnation();
        let rpc = self.net.rpc_latency();
        let copies = self.rpc.deliveries(
            &mut self.rpc_rng,
            RpcPeer::Slave(NodeId(n)),
            RpcPeer::Master,
        );
        for extra in copies {
            self.engine
                .schedule_in(rpc + extra, Event::DeliverRegister(n, incarnation));
        }
        // The master's ack-retry schedule doubles as the registration
        // backoff. No attempt cap: an unregistered node is useless, so the
        // slave keeps announcing itself (at the capped interval) until the
        // master hears it — under any fault schedule that heals, this
        // terminates, and invariant 8 would flag a node that never got
        // through.
        let timeout = self.cfg.master.retry.timeout_for(attempt);
        self.engine
            .schedule_in(timeout, Event::RegisterRetry(n, attempt));
    }

    fn on_register_retry(&mut self, n: u32, attempt: u32) {
        let idx = n as usize;
        // Inert once the master has absorbed this (or a newer) boot of the
        // node, or the node died again while the timer was pending.
        if !self.cols.alive.get(idx)
            || self.master.slave_incarnation(NodeId(n)) >= self.slaves[idx].incarnation()
        {
            return;
        }
        self.send_register(n, attempt.saturating_add(1));
    }

    /// A registration arriving at the master. Absorbing it purges every
    /// outbox entry and job-routing record addressed to the dead
    /// incarnation; the registration doubles as the node's full block
    /// report, so the NameNode marks its durable replicas readable again,
    /// re-replication re-examines what is still short, and migration is
    /// re-admitted for live jobs.
    fn on_deliver_register(&mut self, n: u32, incarnation: Incarnation) {
        if !self.cols.alive.get(n as usize) {
            return; // crashed again while the registration was in flight
        }
        if !self.master.handle_register(NodeId(n), incarnation) {
            return; // duplicate or out-of-order copy
        }
        // Block report from the durable store: the node is registered in
        // every normal construction path, so this only errs in exotic
        // test topologies where a no-op is the right answer.
        let _ = self.namenode.mark_alive(NodeId(n));
        let blocks = self.namenode.blocks_on(NodeId(n)).len() as u64;
        self.telemetry
            .emit(|| TelemetryEvent::BlockReportReceived { node: n, blocks });
        self.metrics.block_reports += 1;
        // Replicas lost in the crash may still be short (or a pending
        // deferral may have become satisfiable now that this node is back
        // as a target); re-examine.
        self.rerep_queue.extend(self.namenode.under_replicated());
        self.rerep_queue.sort();
        self.rerep_queue.dedup();
        self.rerep_queue.append(&mut self.rerep_deferred);
        self.start_next_rereplication();
        self.reignite();
    }

    /// Re-admits migration after a node recovered: every live migrate-mode
    /// job gets its request re-issued, so blocks whose RAM copy the crash
    /// wiped (and any the job never managed to migrate) heat up again.
    /// Idempotent end to end — slaves dedup commands for blocks they
    /// already hold, and the master stamps its fresh incarnation belief on
    /// every send, so re-ignition cannot resurrect dead state.
    fn reignite(&mut self) {
        if self.mode != FsMode::Ignem {
            return;
        }
        let now = self.engine.now();
        // job_to_plan iterates in job-id order: re-ignition visits jobs,
        // and therefore draws randomness, in one order on every run.
        let jobs: Vec<JobId> = self
            .job_to_plan
            .iter()
            .filter(|&(j, _)| self.live_jobs.contains(&j) && self.job_migrated.contains(&j))
            .map(|(j, _)| j)
            .collect();
        for job in jobs {
            // lint: allow(P02, reason = "specs are inserted at submission and live until the job finishes")
            let spec = self.job_spec[&job].clone();
            let (Some(mode), JobInput::DfsFiles(files)) = (spec.submit.migrate, &spec.input) else {
                continue;
            };
            let req = MigrateRequest {
                job,
                files: files.clone(),
                mode,
                // Re-migration lead time is measured from the recovery,
                // not the original submission: the explainer reports how
                // much runway the re-ignited blocks actually had.
                submitted: now,
            };
            if let Ok(batches) = self
                .master
                .handle_migrate(&req, &self.namenode, &mut self.rng)
            {
                self.metrics.reignited_jobs += 1;
                for b in batches {
                    self.master_send(b.to.0, RpcPayload::Migrates(b.migrates));
                }
            }
        }
    }

    /// Queues a block whose re-replication found no legal source/target
    /// right now, to be retried with backoff.
    fn defer_rereplication(&mut self, block: BlockId) {
        if !self.rerep_deferred.contains(&block) {
            self.rerep_deferred.push(block);
        }
        let attempt = self.rerep_attempt;
        self.telemetry
            .emit(|| TelemetryEvent::RereplicationDeferred {
                block: block.0,
                attempt,
            });
        self.metrics.rerep_deferrals += 1;
    }

    /// Arms the deferred-re-replication retry timer: capped exponential
    /// backoff per consecutive all-deferred round, bounded attempts, then
    /// give up (invariant 8 reports any durable block left without an
    /// alive replica, so giving up is visible, not silent).
    fn arm_rerep_retry(&mut self) {
        if self.rerep_active || self.rerep_deferred.is_empty() {
            return;
        }
        const MAX_REREP_ROUNDS: u32 = 10;
        if self.rerep_attempt >= MAX_REREP_ROUNDS {
            self.metrics.rerep_gave_up += self.rerep_deferred.len() as u64;
            self.rerep_deferred.clear();
            return;
        }
        self.rerep_attempt += 1;
        self.rerep_retry_gen += 1;
        let gen = self.rerep_retry_gen;
        let backoff = SimDuration::from_secs(1 << self.rerep_attempt.min(5));
        self.engine.schedule_in(backoff, Event::RerepRetry(gen));
    }

    fn on_rerep_retry(&mut self, gen: u64) {
        if gen != self.rerep_retry_gen {
            return;
        }
        self.rerep_queue.append(&mut self.rerep_deferred);
        self.rerep_queue.sort();
        self.rerep_queue.dedup();
        self.start_next_rereplication();
    }

    /// Invariant 8 — recovery convergence, audited at finalization when
    /// the run injected at least one crash. After the last fault heals: no
    /// node may still be dark, every crashed node that is alive at the end
    /// must have converged (master and slave agree on its incarnation, the
    /// NameNode serves its replicas), the master's retransmission outbox
    /// must have drained, and no durably written block may be left without
    /// an alive replica. Returns a violation description, `None` when
    /// converged.
    fn check_recovery(&self) -> Option<String> {
        if self.metrics.crashes == 0 {
            return None;
        }
        for n in 0..self.cfg.nodes {
            if self.cols.crashed_down.get(n) {
                return Some(format!("node{n} still dark at end of run"));
            }
            if !self.cols.crashed_ever.get(n) || !self.cols.alive.get(n) {
                // Never crashed, or permanently failed after recovering:
                // out of scope for convergence.
                continue;
            }
            let node = NodeId(n as u32);
            let master_inc = self.master.slave_incarnation(node);
            let slave_inc = self.slaves[n].incarnation();
            if master_inc != slave_inc {
                return Some(format!(
                    "node{n}: master believes {master_inc}, slave is {slave_inc} — \
                     registration never converged"
                ));
            }
            if !self.namenode.is_alive(node) {
                return Some(format!(
                    "node{n} re-registered with the master but not the NameNode"
                ));
            }
        }
        if self.master.pending_sends() != 0 {
            return Some(format!(
                "{} unsettled outbox entries at end of run",
                self.master.pending_sends()
            ));
        }
        let lost = self.namenode.blocks_without_alive_replica();
        if !lost.is_empty() {
            return Some(format!(
                "{} durable blocks left without an alive replica (first: {:?})",
                lost.len(),
                lost[0]
            ));
        }
        None
    }

    fn fail_node(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if !self.cols.alive.get(n) {
            return;
        }
        let now = self.engine.now();
        self.cols.alive.set(n, false);
        // The node is registered in every normal construction path; if a
        // test built an exotic topology, dying twice must stay harmless.
        let _ = self.namenode.mark_dead(node);
        // Slave dies with the node; cancel its migration read.
        let actions = self.slaves[n].fail(now, &mut self.mems[n]);
        self.process_slave_actions(node.0, actions);
        // Requeue tasks that were running on the node and drop their slots.
        let requeued = self.tracker.fail_node(node);
        self.slots.clear_node(node);
        let requeued: BTreeSet<TaskId> = requeued.into_iter().collect();
        // Cancel in-flight IO owned by requeued tasks or served by the dead
        // node, re-issuing reads for still-running remote readers. The
        // owner maps iterate in `(node, request id)` order, so two
        // identical runs cancel and re-issue in one order.
        let mut reissue: Vec<(TaskId, Option<BlockId>, u64)> = Vec::new();
        let disk_keys: Vec<(u32, RequestId)> = self
            .disk_owner
            .iter()
            .enumerate()
            .flat_map(|(dn, owners)| owners.keys().map(move |req| (dn as u32, req)))
            .collect();
        for key in disk_keys {
            let owner = self.disk_owner[key.0 as usize][&key.1];
            if let DiskOwner::Rereplicate { block, target } = owner {
                // A re-replication touched by the failure restarts later.
                if key.0 == node.0 || target == node.0 {
                    self.disk_owner[key.0 as usize].remove(&key.1);
                    let done = self.disks[key.0 as usize].cancel(now, key.1);
                    self.process_disk(key.0, done);
                    self.resched_disk(key.0);
                    self.rerep_active = false;
                    self.rerep_queue.push(block);
                }
                continue;
            }
            if let DiskOwner::MapRead {
                task,
                block,
                serving,
                ..
            } = owner
            {
                let dead_reader = requeued.contains(&task);
                let dead_server = serving == node.0 || key.0 == node.0;
                if dead_reader || dead_server {
                    self.disk_owner[key.0 as usize].remove(&key.1);
                    let done = self.disks[key.0 as usize].cancel(now, key.1);
                    self.process_disk(key.0, done);
                    self.resched_disk(key.0);
                    if !dead_reader {
                        let rec = *self.tracker.task(task);
                        if let TaskKind::Map { bytes, .. } = rec.kind {
                            reissue.push((task, block, bytes));
                        }
                    }
                }
            }
        }
        let ram_keys: Vec<RequestId> = self.ram_owner[n].keys().collect();
        for req in ram_keys {
            self.ram_owner[n].remove(&req);
            let done = self.rams[n].cancel(now, req);
            self.process_ram(node.0, done);
            self.resched_ram(node.0);
        }
        let xfers: Vec<TransferId> = self.net_owner.keys().collect();
        for id in xfers {
            // `process_net` inside this loop can complete and remove
            // *other* snapshotted transfers, so a stale id is possible.
            let Some(&owner) = self.net_owner.get(&id) else {
                continue;
            };
            match owner {
                NetOwner::MapRead {
                    task,
                    block,
                    serving,
                    ..
                } => {
                    let dead_reader = requeued.contains(&task);
                    if dead_reader || serving == node.0 {
                        self.net_owner.remove(&id);
                        let done = self.net.cancel(now, id);
                        self.process_net(done);
                        self.resched_net();
                        if !dead_reader {
                            let rec = *self.tracker.task(task);
                            if let TaskKind::Map { bytes, .. } = rec.kind {
                                reissue.push((task, Some(block), bytes));
                            }
                        }
                    }
                }
                NetOwner::Shuffle { task } => {
                    if requeued.contains(&task) {
                        self.net_owner.remove(&id);
                        let done = self.net.cancel(now, id);
                        self.process_net(done);
                        self.resched_net();
                    }
                }
            }
        }
        for (task, block, bytes) in reissue {
            let rec = *self.tracker.task(task);
            if let ignem_compute::tracker::TaskState::Assigned(reader) = rec.state {
                self.start_map_read(task, reader, block, bytes);
            }
        }
        // HDFS re-replicates the blocks that lost a replica.
        self.rerep_queue.extend(self.namenode.under_replicated());
        self.rerep_queue.sort();
        self.rerep_queue.dedup();
        self.start_next_rereplication();
    }

    fn kill_plan(&mut self, p: usize) {
        if self.plan_state[p].finished {
            return;
        }
        let now = self.engine.now();
        // job_to_plan iterates in job-id order, so the kill sweep visits
        // jobs in the same order on every run.
        let jobs: Vec<JobId> = self
            .job_to_plan
            .iter()
            .filter(|&(_, &(plan, _))| plan == p)
            .map(|(j, _)| j)
            .collect();
        for job in jobs {
            self.tracker.kill_job(job);
            self.live_jobs.remove(&job);
            if let Some(assigns) = self.hyp_assign.remove(&job) {
                for (n, bytes) in assigns {
                    self.hypothetical[n as usize].add(now, -(bytes as f64));
                }
            }
            // Note: deliberately NO evict to Ignem — the paper's dead-job
            // cleanup (threshold + liveness query) must reclaim the refs.
        }
        self.plan_state[p].finished = true;
        self.unfinished_plans -= 1;
    }
}
