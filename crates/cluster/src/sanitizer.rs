//! Runtime determinism sanitizer: double-run a world, hash the telemetry
//! event stream per step, and bisect any divergence to the first
//! differing event.
//!
//! The static rules in `ignem-lint` ban the *patterns* that break
//! same-seed replay; this module checks the *property* itself at runtime.
//! Two worlds built by the same closure are run through
//! [`World::run_recorded`], and each event stream is folded into a
//! per-step FNV-1a hash chain over the events' canonical JSON
//! ([`EventRecord::to_json`] is float-free, so the chain is bit-stable
//! across platforms). Because the chain at step `i` commits to the whole
//! prefix, equal chains at `i` mean equal histories — which is what makes
//! [`bisect_divergence`] a binary search rather than a linear scan, and
//! what lets a CI failure report *the* first diverging event seq instead
//! of "streams differ".
//!
//! The flight recorder is a bounded ring, so both runs use the same
//! capacity; a nonzero eviction count is reported rather than silently
//! shortening the compared window.

use ignem_simcore::telemetry::{EventRecord, FlightRecorder};

use crate::explain::TelemetryReport;
use crate::metrics::RunMetrics;
use crate::world::World;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The per-step hash chain of an event stream: `chain[i]` commits to
/// events `0..=i` via their canonical JSON.
pub fn hash_chain(events: &[EventRecord]) -> Vec<u64> {
    let mut out = Vec::with_capacity(events.len());
    let mut h = FNV_OFFSET;
    for rec in events {
        h = fnv1a(h, rec.to_json().as_bytes());
        out.push(h);
    }
    out
}

/// The first point where two event streams disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// 0-based position of the first differing event.
    pub index: usize,
    /// The event at `index` in the first run (`None` if that stream
    /// ended there).
    pub first: Option<EventRecord>,
    /// The event at `index` in the second run (`None` if that stream
    /// ended there).
    pub second: Option<EventRecord>,
    /// How many events the streams share before diverging (== `index`).
    pub common_len: usize,
}

impl Divergence {
    /// The telemetry seq of the first diverging event, preferring the
    /// first run's stream (they agree on every seq before this point).
    pub fn seq(&self) -> Option<u64> {
        self.first
            .as_ref()
            .or(self.second.as_ref())
            .map(|rec| rec.seq)
    }

    /// Renders the divergence for humans: the last events of the common
    /// prefix, the two competing events, and the explainer's view of the
    /// agreed-upon history (so the diverging step lands in context — what
    /// had already won or lost its migration race when the runs split).
    pub fn describe(&self, common_prefix: &[EventRecord]) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "determinism divergence at event index {} (seq {:?})\n",
            self.index,
            self.seq()
        ));
        let tail_start = common_prefix.len().saturating_sub(3);
        for rec in &common_prefix[tail_start..] {
            s.push_str(&format!("  … common: {}\n", rec.to_json()));
        }
        match &self.first {
            Some(rec) => s.push_str(&format!("  run A:    {}\n", rec.to_json())),
            None => s.push_str("  run A:    <stream ended>\n"),
        }
        match &self.second {
            Some(rec) => s.push_str(&format!("  run B:    {}\n", rec.to_json())),
            None => s.push_str("  run B:    <stream ended>\n"),
        }
        let report = TelemetryReport::from_events(common_prefix);
        s.push_str(&format!(
            "  context:  {} verdicts before divergence ({} won, {} lost), {} leak(s)\n",
            report.verdicts.len(),
            report.won(),
            report.lost(),
            report.leaked.len()
        ));
        s
    }
}

/// Finds the first diverging event between two streams, or `None` if they
/// are identical. Binary-searches the per-step hash chains: a chain entry
/// commits to its whole prefix, so "chains equal at `i`" is monotone in
/// `i` and the first mismatch is the first diverging event.
pub fn bisect_divergence(a: &[EventRecord], b: &[EventRecord]) -> Option<Divergence> {
    let ca = hash_chain(a);
    let cb = hash_chain(b);
    let n = ca.len().min(cb.len());
    let index = if n > 0 && ca[n - 1] == cb[n - 1] {
        // Shared prefix is clean; divergence only if one stream is longer.
        if a.len() == b.len() {
            return None;
        }
        n
    } else if n == 0 {
        if a.len() == b.len() {
            return None;
        }
        0
    } else {
        // Invariant: every chain entry < lo matches, some entry <= hi
        // mismatches. Narrow to the first mismatching step.
        let (mut lo, mut hi) = (0usize, n - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if ca[mid] == cb[mid] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    Some(Divergence {
        index,
        first: a.get(index).cloned(),
        second: b.get(index).cloned(),
        common_len: index,
    })
}

/// The outcome of a sanitizer double-run.
#[derive(Debug)]
pub struct DoubleRun {
    /// Metrics of the first run.
    pub metrics_a: RunMetrics,
    /// Metrics of the second run.
    pub metrics_b: RunMetrics,
    /// First run's event stream.
    pub events_a: Vec<EventRecord>,
    /// Second run's event stream.
    pub events_b: Vec<EventRecord>,
    /// Ring-buffer evictions in either run (should be zero for a valid
    /// comparison; a truncated window can mask an early divergence).
    pub dropped: (u64, u64),
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

impl DoubleRun {
    /// Whether the two runs produced bit-identical event streams with no
    /// recorder eviction.
    pub fn is_deterministic(&self) -> bool {
        self.divergence.is_none() && self.dropped == (0, 0)
    }

    /// Human-readable verdict; [`Divergence::describe`] with the real
    /// common prefix when the runs split.
    pub fn describe(&self) -> String {
        match &self.divergence {
            None if self.dropped == (0, 0) => format!(
                "deterministic: {} events, streams bit-identical",
                self.events_a.len()
            ),
            None => format!(
                "streams equal but recorder evicted {}/{} events — widen the capacity",
                self.dropped.0, self.dropped.1
            ),
            Some(d) => d.describe(&self.events_a[..d.common_len]),
        }
    }
}

/// Builds a world twice with `build`, runs both with `capacity`-event
/// flight recorders, and compares the telemetry streams step by step.
///
/// `build` must be a pure function of its captured configuration — any
/// divergence between the two runs is, by construction, nondeterminism in
/// the simulator (or in the builder), which is exactly what this check
/// exists to catch.
pub fn double_run<F>(build: F, capacity: usize) -> DoubleRun
where
    F: Fn() -> World,
{
    let (metrics_a, events_a, dropped_a) = build().run_recorded(capacity);
    let (metrics_b, events_b, dropped_b) = build().run_recorded(capacity);
    let divergence = bisect_divergence(&events_a, &events_b);
    DoubleRun {
        metrics_a,
        metrics_b,
        events_a,
        events_b,
        dropped: (dropped_a, dropped_b),
        divergence,
    }
}

/// A [`DoubleRun`] produced by [`double_run_forked`], plus the outcome of
/// the snapshot-forked suffix re-check.
#[derive(Debug)]
pub struct ForkedDoubleRun {
    /// The ordinary double-run comparison.
    pub run: DoubleRun,
    /// Emitted-event index of the snapshot the fork restored: the latest
    /// snapshot at or before the divergence (or before the stream's end
    /// when the runs agree — the re-check then audits snapshot
    /// equivalence on the final window).
    pub fork_at: usize,
    /// How many events the forked suffix re-simulated; everything before
    /// `fork_at` was *not* re-run.
    pub resimulated: usize,
    /// Whether the forked suffix reproduced run A's tail bit-for-bit.
    /// `false` here means the divergence is not stable under replay from
    /// the snapshot — i.e. the nondeterminism lives in state the snapshot
    /// captures, which localizes the bug to the suffix window.
    pub suffix_consistent: bool,
}

/// [`double_run`], but run A is driven step by step with a
/// [`World::snapshot`] taken every `stride` emitted events. When the two
/// streams diverge, the checker does **not** replay run A from `t = 0` to
/// study the split: it restores the latest snapshot at or before the
/// diverging event and re-simulates only the suspect suffix, confirming
/// the suffix reproduces run A's tail (snapshot equivalence). When the
/// runs agree, the same re-check audits the final window so the
/// equivalence property is exercised on every invocation.
///
/// # Panics
///
/// Panics if `stride` is zero.
pub fn double_run_forked<F>(build: F, capacity: usize, stride: usize) -> ForkedDoubleRun
where
    F: Fn() -> World,
{
    assert!(stride > 0, "snapshot stride must be at least one event");
    let recorder = FlightRecorder::new(capacity);
    let mut world = build().with_telemetry(Box::new(recorder.clone()));
    let mut snaps = vec![(0usize, world.snapshot())];
    let mut next_mark = stride;
    while world.step() {
        let emitted = world.telemetry_cursor().map_or(0, |(_, seq)| seq) as usize;
        if emitted >= next_mark {
            snaps.push((emitted, world.snapshot()));
            next_mark = emitted + stride;
        }
    }
    let metrics_a = world.finalize_mut();
    let events_a = recorder.events();
    let dropped_a = recorder.dropped();

    let (metrics_b, events_b, dropped_b) = build().run_recorded(capacity);
    let divergence = bisect_divergence(&events_a, &events_b);

    // Fork target: the divergence when there is one, else the end of the
    // stream. Restore the latest snapshot at or before it that still
    // leaves a nonempty suffix to re-simulate.
    let target = divergence
        .as_ref()
        .map_or(events_a.len(), |d| d.index)
        .min(events_a.len());
    let (fork_at, snap) = snaps
        .iter()
        .rev()
        .find(|(emitted, _)| *emitted <= target && *emitted < events_a.len().max(1))
        .unwrap_or(&snaps[0]);
    let fork_at = *fork_at;

    world.restore(snap);
    let fork_rec = FlightRecorder::new(capacity);
    world.swap_recorder(Box::new(fork_rec.clone()));
    world.run_to_end();
    let _ = world.finalize_mut();
    let suffix = fork_rec.events();
    let suffix_consistent =
        fork_rec.dropped() == 0 && bisect_divergence(&events_a[fork_at..], &suffix).is_none();

    ForkedDoubleRun {
        run: DoubleRun {
            metrics_a,
            metrics_b,
            events_a,
            events_b,
            dropped: (dropped_a, dropped_b),
            divergence,
        },
        fork_at,
        resimulated: suffix.len(),
        suffix_consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::telemetry::Event;
    use ignem_simcore::time::SimTime;

    fn rec(seq: u64, at_us: u64, node: u32) -> EventRecord {
        EventRecord {
            seq,
            at: SimTime::from_micros(at_us),
            event: Event::MigrationEnqueued {
                node,
                job: 1,
                block: 7,
                bytes: 64,
            },
        }
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a: Vec<EventRecord> = (0..100).map(|i| rec(i, i * 10, 1)).collect();
        assert!(bisect_divergence(&a, &a.clone()).is_none());
        assert!(bisect_divergence(&[], &[]).is_none());
    }

    #[test]
    fn injected_divergence_bisects_to_exact_seq() {
        let a: Vec<EventRecord> = (0..500).map(|i| rec(i, i * 10, 1)).collect();
        for inject_at in [0usize, 1, 250, 499] {
            let mut b = a.clone();
            // Artificial divergence: same seq, different payload.
            b[inject_at] = rec(inject_at as u64, inject_at as u64 * 10, 9);
            let d = bisect_divergence(&a, &b).expect("must diverge");
            assert_eq!(d.index, inject_at, "first diverging index");
            assert_eq!(d.seq(), Some(inject_at as u64), "first diverging seq");
            assert_eq!(d.common_len, inject_at);
        }
    }

    #[test]
    fn truncated_stream_diverges_at_the_cut() {
        let a: Vec<EventRecord> = (0..50).map(|i| rec(i, i * 10, 1)).collect();
        let b = a[..37].to_vec();
        let d = bisect_divergence(&a, &b).expect("length mismatch diverges");
        assert_eq!(d.index, 37);
        assert!(d.first.is_some());
        assert!(d.second.is_none());
        assert_eq!(d.seq(), Some(37));
    }

    #[test]
    fn describe_renders_context() {
        let a: Vec<EventRecord> = (0..10).map(|i| rec(i, i * 10, 1)).collect();
        let mut b = a.clone();
        b[6] = rec(6, 60, 2);
        let d = bisect_divergence(&a, &b).expect("diverges");
        let text = d.describe(&a[..d.common_len]);
        assert!(text.contains("divergence at event index 6"));
        assert!(text.contains("run A:"));
        assert!(text.contains("run B:"));
        assert!(text.contains("context:"));
    }
}
