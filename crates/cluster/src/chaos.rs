//! Chaos harness: randomized fault-plan generation and invariant checking.
//!
//! The harness turns one seed into a complete chaos experiment — a small
//! Ignem workload, an unreliable control-plane channel and a randomized
//! fault plan drawn from the full palette ([`Fault`]) — runs it with
//! per-event invariant validation, and checks eight end-state invariants:
//!
//! 1. **Do-not-harm**: every event leaves each slave's reference lists,
//!    queue and memory accounting mutually consistent
//!    ([`World::with_validation`] panics otherwise).
//! 2. **Reference leak-freedom**: at the end of the run no alive slave
//!    holds a reference entry — every migrated block was reclaimed.
//! 3. **Memory conservation**: no migrated bytes remain resident at the
//!    end; the migration buffer drained back to zero.
//! 4. **Completion**: every plan that was not deliberately killed finishes,
//!    as long as the fault plan leaves at least one replica of every block
//!    alive (the generator caps node failures at `replication − 1`).
//! 5. **Determinism**: two runs of the same `(seed, fault plan)` produce
//!    bit-identical metrics (compared via [`fingerprint`]).
//! 6. **Event-stream consistency**: the run's flight-recorder stream is
//!    internally coherent — sequence numbers strictly increase, every
//!    `MigrationCompleted` (and every wasted or cancelled read) matches an
//!    earlier `MigrationStarted` for the same `(node, block)`, and no node
//!    evicts more migrated bytes than it completed migrating.
//! 7. **Ledger conservation**: the double-entry residency ledger balances
//!    against the final resident bytes, and (when the recorder kept the
//!    whole stream) its credit/debit sides equal the bytes the event
//!    stream says were migrated and evicted.
//! 8. **Recovery convergence** (runs with [`Fault::NodeCrash`] injected):
//!    after the last fault heals, no dangling dead-incarnation state
//!    remains anywhere — every crashed node that survived to the end
//!    re-registered (master and slave agree on its incarnation, the
//!    NameNode serves its durable replicas), the master's retransmission
//!    outbox drained, and no durably written block lost its last alive
//!    replica. Audited by the world at finalization
//!    ([`RunMetrics::recovery`]); the harness surfaces the verdict.
//!
//! Chaos runs enable the epoch/lease reference lifecycle
//! ([`ChaosConfig::lease`]) so orphaned references expire even when the
//! periodic sweep has wound down; set it to `None` to reproduce the
//! legacy behaviour (and its seed-304 leak).
//!
//! When a seed fails, [`minimize_faults`] shrinks its fault plan to a
//! 1-minimal schedule — dropping any single remaining fault makes the
//! violation disappear — and [`MinimizedSchedule::describe`] renders it
//! with the explainer's leak records for the bug report.
//!
//! ```
//! use ignem_cluster::chaos::{run_chaos, ChaosConfig};
//!
//! let report = run_chaos(&ChaosConfig { seed: 7, ..ChaosConfig::default() });
//! report.assert_invariants();
//! ```

// BTreeMap keeps the invariant-check sweeps (which iterate these maps) in
// key order, satisfying lint rule D02 without per-site sorting.
use std::collections::BTreeMap;

use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_netsim::rpc::RpcConfig;
use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;
use ignem_simcore::telemetry::{Event, EventRecord, FlightRecorder};
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::units::MIB;

use crate::config::{ClusterConfig, FsMode};
use crate::explain::{LossCause, TelemetryReport};
use crate::metrics::RunMetrics;
use crate::world::{Fault, PlannedJob, World, WorldSnapshot};

/// Parameters of one chaos experiment. Everything downstream — workload,
/// fault plan, channel behaviour — is a pure function of these.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed; drives the fault plan, the channel and the simulation.
    pub seed: u64,
    /// Cluster size (≥ the DFS replication factor, default 3).
    pub nodes: usize,
    /// Number of planned jobs in the workload.
    pub jobs: usize,
    /// Number of faults to draw from the palette.
    pub faults: usize,
    /// Number of [`Fault::NodeCrash`] faults to draw *in addition to*
    /// `faults`. Kept separate (and default **0**) so crash support is
    /// zero-cost when unused: the base fault plan's randomness draws are
    /// byte-identical with and without crashes enabled, which is what
    /// keeps the pinned chaos-304 stream stable.
    pub crashes: usize,
    /// Control-plane channel behaviour.
    pub rpc: RpcConfig,
    /// Reference-lease duration handed to every slave
    /// ([`IgnemConfig::lease`](ignem_core::slave::IgnemConfig)). The
    /// default (60 s) outlives any healthy job's quiet periods but expires
    /// orphans deterministically; `None` disables leasing and restores
    /// the legacy sweep-only cleanup.
    pub lease: Option<SimDuration>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            nodes: 6,
            jobs: 4,
            faults: 3,
            crashes: 0,
            rpc: RpcConfig {
                drop_p: 0.1,
                dup_p: 0.1,
                jitter: SimDuration::from_millis(20),
            },
            lease: Some(SimDuration::from_secs(60)),
        }
    }
}

/// The outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The generated fault plan, in injection order.
    pub faults: Vec<(SimTime, Fault)>,
    /// Indices of plans the fault plan deliberately killed.
    pub killed_plans: Vec<usize>,
    /// Number of plans in the workload.
    pub total_plans: usize,
    /// The run's metrics.
    pub metrics: RunMetrics,
    /// Bit-exact digest of the metrics (see [`fingerprint`]).
    pub fingerprint: u64,
    /// The flight-recorder event stream of the run, in emission order.
    pub events: Vec<EventRecord>,
    /// Records the flight recorder had to evict to stay within its bound.
    /// Any nonzero count fails [`check_invariants`](Self::check_invariants)
    /// loudly: a truncated stream can legitimately miss
    /// `MigrationStarted` events, so invariant 6 would otherwise pass
    /// vacuously on a window that no longer covers the run.
    pub events_dropped: u64,
}

impl ChaosReport {
    /// Checks the end-state invariants (2–4, 6 and 7 of the module docs;
    /// 1 is enforced per event during the run, 5 by comparing two
    /// reports) without panicking.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant; the
    /// minimizer uses this to probe shrunken fault schedules.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.metrics.leaked_job_refs != 0 {
            return Err(format!(
                "reference leak: {} entries survive the run (faults: {:?})",
                self.metrics.leaked_job_refs, self.faults
            ));
        }
        if self.metrics.final_migrated_bytes != 0 {
            return Err(format!(
                "memory not conserved: {} migrated bytes remain (faults: {:?})",
                self.metrics.final_migrated_bytes, self.faults
            ));
        }
        // Every plan completes exactly once unless it was deliberately
        // killed; a killed plan may still complete if the kill fired after
        // its last stage finished.
        let completed: Vec<usize> = self.metrics.plans.iter().map(|p| p.plan).collect();
        let mut sorted = completed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != completed.len() {
            return Err(format!(
                "a plan completed twice (faults: {:?})",
                self.faults
            ));
        }
        for plan in 0..self.total_plans {
            if !completed.contains(&plan) && !self.killed_plans.contains(&plan) {
                return Err(format!(
                    "plan {plan} neither completed nor was killed (faults: {:?})",
                    self.faults
                ));
            }
        }
        self.check_ledger()?;
        if self.events_dropped > 0 {
            return Err(format!(
                "flight recorder overflowed: {} records dropped, so invariant 6 \
                 cannot audit the full run — raise the recorder capacity \
                 (faults: {:?})",
                self.events_dropped, self.faults
            ));
        }
        self.check_event_stream_consistent()?;
        // Invariant 8: recovery convergence. The world audits crash
        // recovery at finalization; a `Some` verdict names the first
        // piece of dead-incarnation state that failed to converge.
        if let Some(v) = &self.metrics.recovery {
            return Err(format!(
                "recovery did not converge: {v} (faults: {:?})",
                self.faults
            ));
        }
        Ok(())
    }

    /// Checks the end-state invariants, panicking on the first violation.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_invariants(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("{e}");
        }
    }

    /// Invariant 7: the residency ledger balances. The total balance must
    /// equal the migrated bytes still resident, and — when the flight
    /// recorder kept the whole run — each side of the ledger must equal
    /// what the event stream witnessed (credits ↔ completed migrations,
    /// debits ↔ evictions, one `BlockEvicted` per counted eviction).
    fn check_ledger(&self) -> Result<(), String> {
        let ledger = &self.metrics.ledger;
        if ledger.total_balance() != self.metrics.final_migrated_bytes {
            return Err(format!(
                "ledger balance {} != final migrated bytes {} (faults: {:?})",
                ledger.total_balance(),
                self.metrics.final_migrated_bytes,
                self.faults
            ));
        }
        if self.events_dropped != 0 {
            return Ok(());
        }
        let mut completed_bytes = 0u64;
        let mut evicted_bytes = 0u64;
        let mut evictions = 0u64;
        for rec in &self.events {
            match &rec.event {
                Event::MigrationCompleted { bytes, .. } => completed_bytes += bytes,
                Event::BlockEvicted { bytes, .. } => {
                    evicted_bytes += bytes;
                    evictions += 1;
                }
                _ => {}
            }
        }
        let credited: u64 = ledger.entries.iter().map(|e| e.credited).sum();
        let debited: u64 = ledger.entries.iter().map(|e| e.debited).sum();
        if credited != completed_bytes {
            return Err(format!(
                "ledger credits {credited} != {completed_bytes} bytes of completed \
                 migrations in the event stream (faults: {:?})",
                self.faults
            ));
        }
        if debited != evicted_bytes {
            return Err(format!(
                "ledger debits {debited} != {evicted_bytes} evicted bytes in the \
                 event stream (faults: {:?})",
                self.faults
            ));
        }
        if self.metrics.slave_stats.evicted != evictions {
            return Err(format!(
                "evicted counter {} != {evictions} BlockEvicted events (faults: {:?})",
                self.metrics.slave_stats.evicted, self.faults
            ));
        }
        Ok(())
    }

    /// Invariant 6: the flight-recorder stream is internally coherent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn check_event_stream_consistent(&self) -> Result<(), String> {
        // Disk reads the slaves claimed to finish must each match an
        // earlier start for the same (node, block); wasted and cancelled
        // reads consume a start the same way. Eviction can only release
        // bytes that a completed migration brought into memory.
        let mut outstanding: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        let mut completed_bytes: BTreeMap<u32, u64> = BTreeMap::new();
        let mut evicted_bytes: BTreeMap<u32, u64> = BTreeMap::new();
        let mut last_seq: Option<u64> = None;
        for rec in &self.events {
            if let Some(prev) = last_seq {
                if rec.seq <= prev {
                    return Err(format!(
                        "event sequence not strictly increasing: {} after {prev}",
                        rec.seq
                    ));
                }
            }
            last_seq = Some(rec.seq);
            match &rec.event {
                Event::MigrationStarted { node, block, .. } => {
                    *outstanding.entry((*node, *block)).or_default() += 1;
                }
                Event::MigrationCompleted { node, block, bytes } => {
                    let pending = outstanding.entry((*node, *block)).or_default();
                    if *pending == 0 {
                        return Err(format!(
                            "node{node} completed migrating block {block} without a start \
                             (seq {}, faults: {:?})",
                            rec.seq, self.faults
                        ));
                    }
                    *pending -= 1;
                    *completed_bytes.entry(*node).or_default() += bytes;
                }
                Event::MigrationWasted { node, block, .. }
                | Event::MigrationCancelled { node, block } => {
                    let pending = outstanding.entry((*node, *block)).or_default();
                    if *pending == 0 {
                        return Err(format!(
                            "node{node} wasted/cancelled block {block} without a start \
                             (seq {}, faults: {:?})",
                            rec.seq, self.faults
                        ));
                    }
                    *pending -= 1;
                }
                Event::BlockEvicted { node, bytes, .. } => {
                    *evicted_bytes.entry(*node).or_default() += bytes;
                }
                _ => {}
            }
        }
        for (node, &gone) in &evicted_bytes {
            let migrated = completed_bytes.get(node).copied().unwrap_or(0);
            if gone > migrated {
                return Err(format!(
                    "node{node} evicted {gone} bytes but completed only {migrated} \
                     (faults: {:?})",
                    self.faults
                ));
            }
        }
        Ok(())
    }

    /// Invariant 6, panicking form (kept for existing tests).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency.
    pub fn assert_event_stream_consistent(&self) {
        if let Err(e) = self.check_event_stream_consistent() {
            panic!("{e}");
        }
    }
}

/// Draws a randomized fault plan from the full palette. Destructive faults
/// are bounded so the workload stays completable: fewer than `replication`
/// distinct nodes fail permanently, and at most one plan is killed.
///
/// `crashes` extra [`Fault::NodeCrash`] draws are appended *after* the
/// base `count` draws so that `crashes == 0` consumes exactly the same
/// randomness as before crash support existed — the base fault sequence
/// (and therefore every pinned stream) is unchanged. The final sort is
/// stable, so equal-timestamp ordering also survives.
pub fn generate_faults(
    rng: &mut SimRng,
    nodes: usize,
    replication: usize,
    num_plans: usize,
    count: usize,
    crashes: usize,
) -> Vec<(SimTime, Fault)> {
    let mut out = Vec::new();
    let mut failed: Vec<u32> = Vec::new();
    let mut killed = false;
    for _ in 0..count {
        let at = SimTime::from_secs_f64(rng.uniform_range(2.0, 40.0));
        let node = NodeId(rng.index(nodes) as u32);
        let fault = match rng.index(8) {
            0 => Fault::MasterFail,
            1 => Fault::SlaveRestart(node),
            2 => {
                if failed.len() + 1 >= replication || failed.contains(&node.0) {
                    Fault::SlaveRestart(node) // budget spent: downgrade
                } else {
                    failed.push(node.0);
                    Fault::NodeFail(node)
                }
            }
            3 => {
                if killed {
                    Fault::MasterFail
                } else {
                    killed = true;
                    Fault::KillPlan(rng.index(num_plans))
                }
            }
            4 => Fault::DiskDegrade(
                node,
                rng.uniform_range(10.0, 60.0) as u32,
                SimDuration::from_secs_f64(rng.uniform_range(5.0, 20.0)),
            ),
            5 => Fault::NodePause(
                node,
                SimDuration::from_secs_f64(rng.uniform_range(2.0, 8.0)),
            ),
            _ => {
                let cut = 1 + rng.index(nodes / 2);
                let mut all: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
                rng.shuffle(&mut all);
                all.truncate(cut);
                Fault::Partition(
                    all,
                    SimDuration::from_secs_f64(rng.uniform_range(3.0, 12.0)),
                )
            }
        };
        out.push((at, fault));
    }
    for _ in 0..crashes {
        let at = SimTime::from_secs_f64(rng.uniform_range(2.0, 40.0));
        let node = NodeId(rng.index(nodes) as u32);
        let down_for = SimDuration::from_secs_f64(rng.uniform_range(3.0, 15.0));
        out.push((at, Fault::NodeCrash(node, down_for)));
    }
    out.sort_by_key(|(at, _)| *at);
    out
}

/// Builds the chaos workload: `jobs` single-stage migrating jobs over
/// separate input files, submitted at staggered offsets.
pub fn workload(jobs: usize) -> (Vec<(String, u64)>, Vec<PlannedJob>) {
    let mut files = Vec::new();
    let mut plans = Vec::new();
    for j in 0..jobs {
        let path = format!("/chaos/in{j}");
        // 3–6 blocks of 64 MiB, varied deterministically by index.
        let blocks = 3 + (j % 4) as u64;
        files.push((path.clone(), blocks * 64 * MIB));
        let mut spec = JobSpec::new(format!("chaos-{j}"), JobInput::DfsFiles(vec![path]));
        spec.submit = SubmitOptions::with_migration();
        plans.push(PlannedJob::single(
            format!("chaos-{j}"),
            SimDuration::from_secs(2 + 5 * j as u64),
            spec,
        ));
    }
    (files, plans)
}

/// Bit-exact digest of a run's metrics: every field that could reveal a
/// divergence between two runs of the same seed is folded into an FNV-1a
/// hash, f64s by their exact bit patterns.
pub fn fingerprint(m: &RunMetrics) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn u64(&mut self, x: u64) {
            for b in x.to_le_bytes() {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        fn f64(&mut self, x: f64) {
            self.u64(x.to_bits());
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    h.u64(m.makespan.as_micros());
    h.u64(m.jobs.len() as u64);
    for j in &m.jobs {
        h.u64(j.plan as u64);
        h.u64(j.stage as u64);
        h.u64(j.input_bytes);
        h.u64(j.submitted.as_micros());
        h.f64(j.duration);
    }
    h.u64(m.plans.len() as u64);
    for p in &m.plans {
        h.u64(p.plan as u64);
        h.f64(p.duration);
    }
    h.u64(m.map_task_secs.len() as u64);
    h.f64(m.map_task_secs.mean());
    h.u64(m.reduce_task_secs.len() as u64);
    h.f64(m.reduce_task_secs.mean());
    h.u64(m.block_reads.len() as u64);
    for r in &m.block_reads {
        h.u64(r.bytes);
        h.f64(r.secs);
    }
    let s = &m.slave_stats;
    for v in [
        s.commands,
        s.migrated,
        s.migrated_bytes,
        s.deduped,
        s.discarded,
        s.wasted_reads,
        s.evicted,
        s.evicted_bytes,
        s.purges,
        s.liveness_queries,
        s.stale_epochs,
        s.lease_expiries,
        s.stale_incarnations,
    ] {
        h.u64(v);
    }
    for e in &m.ledger.entries {
        h.u64(e.credited);
        h.u64(e.debited);
    }
    let ms = &m.master_stats;
    for v in [
        ms.migrate_requests,
        ms.blocks_assigned,
        ms.evict_requests,
        ms.unknown_evicts,
        ms.acks,
        ms.retries,
        ms.gave_up,
        ms.registrations,
    ] {
        h.u64(v);
    }
    let r = &m.rpc;
    for v in [r.sent, r.delivered, r.dropped, r.duplicated, r.cut] {
        h.u64(v);
    }
    h.u64(m.rereplicated);
    h.u64(m.rerep_deferrals);
    h.u64(m.rerep_gave_up);
    h.u64(m.crashes);
    h.u64(m.restarts);
    h.u64(m.block_reports);
    h.u64(m.reignited_jobs);
    h.u64(m.recovery.is_some() as u64);
    h.u64(m.speculated);
    h.u64(m.leaked_job_refs);
    h.u64(m.final_migrated_bytes);
    for u in &m.disk_utilization {
        h.f64(*u);
    }
    h.0
}

/// Runs one chaos experiment with per-event invariant validation,
/// drawing the fault plan from the seed.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    // The fault plan is drawn from a fork of its own so the workload shape
    // and the simulation streams are untouched by how many faults we draw.
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    run_chaos_with(cfg, faults)
}

/// The plans a fault schedule kills, in schedule order.
fn killed_plans_of(faults: &[(SimTime, Fault)]) -> Vec<usize> {
    faults
        .iter()
        .filter_map(|(_, f)| match f {
            Fault::KillPlan(p) => Some(*p),
            _ => None,
        })
        .collect()
}

/// Builds the chaos world for `(cfg, faults)` with a fresh
/// [`FlightRecorder`] attached and per-event validation on — shared by
/// the straight-line runner below and the snapshot-forked minimizer,
/// which drives the world step by step instead of calling
/// [`World::run`]. Also returns the recorder handle and the workload's
/// plan count.
fn build_chaos_world(
    cfg: &ChaosConfig,
    faults: Vec<(SimTime, Fault)>,
) -> (World, FlightRecorder, usize) {
    let mut cluster = ClusterConfig {
        nodes: cfg.nodes,
        seed: cfg.seed,
        rpc: cfg.rpc,
        ..ClusterConfig::default()
    };
    // Small buffers stress eviction and liveness-triggered cleanup.
    cluster.ignem.buffer_capacity = 512 * MIB;
    cluster.ignem.lease = cfg.lease;
    cluster.validate();

    let (files, plans) = workload(cfg.jobs);
    let total_plans = plans.len();
    // Generous bound: chaos workloads emit a few thousand events, so the
    // recorder keeps the whole run and invariant 6 sees everything.
    let recorder = FlightRecorder::new(1 << 20);
    let world = World::new(cluster, FsMode::Ignem, &files, plans, faults)
        .with_telemetry(Box::new(recorder.clone()))
        .with_validation();
    (world, recorder, total_plans)
}

/// Runs one chaos experiment against an *explicit* fault schedule instead
/// of a generated one — the minimizer's probe, and the replay vehicle for
/// pinned regression schedules.
pub fn run_chaos_with(cfg: &ChaosConfig, faults: Vec<(SimTime, Fault)>) -> ChaosReport {
    let killed_plans = killed_plans_of(&faults);
    let (world, recorder, total_plans) = build_chaos_world(cfg, faults.clone());
    let metrics = world.run();
    let fp = fingerprint(&metrics);
    ChaosReport {
        faults,
        killed_plans,
        total_plans,
        metrics,
        fingerprint: fp,
        events: recorder.events(),
        events_dropped: recorder.dropped(),
    }
}

/// [`run_chaos`] with a sim-time [`MetricsRegistry`] attached, returning
/// the chaos report alongside the windowed metrics. The metrics handle is
/// purely observational — the report (fingerprint, event stream) is
/// bit-identical to an unobserved [`run_chaos`] of the same config.
pub fn run_chaos_observed(
    cfg: &ChaosConfig,
    window: SimDuration,
) -> (ChaosReport, ignem_simcore::metrics::MetricsReport) {
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    let mut cluster = ClusterConfig {
        nodes: cfg.nodes,
        seed: cfg.seed,
        rpc: cfg.rpc,
        ..ClusterConfig::default()
    };
    cluster.ignem.buffer_capacity = 512 * MIB;
    cluster.ignem.lease = cfg.lease;
    cluster.validate();

    let killed_plans: Vec<usize> = faults
        .iter()
        .filter_map(|(_, f)| match f {
            Fault::KillPlan(p) => Some(*p),
            _ => None,
        })
        .collect();

    let (files, plans) = workload(cfg.jobs);
    let total_plans = plans.len();
    let recorder = FlightRecorder::new(1 << 20);
    let registry = ignem_simcore::metrics::MetricsRegistry::new(window);
    let world = World::new(cluster, FsMode::Ignem, &files, plans, faults.clone())
        .with_telemetry(Box::new(recorder.clone()))
        .with_metrics(registry.clone())
        .with_validation();
    let metrics = world.run();
    let report = registry.finish(metrics.makespan);
    let fp = fingerprint(&metrics);
    (
        ChaosReport {
            faults,
            killed_plans,
            total_plans,
            metrics,
            fingerprint: fp,
            events: recorder.events(),
            events_dropped: recorder.dropped(),
        },
        report,
    )
}

/// Time-travel debugger: runs the seed's chaos experiment until the
/// telemetry record with sequence number `seq` has been emitted, freezes
/// the world there, and renders its full state
/// ([`World::describe_state`]) next to the matched record.
///
/// The stop is step-granular: the world halts right after the simulation
/// step that emitted `seq` (a step may emit several records, so the dump
/// can also reflect the same step's later records). Returns `None` when
/// the run finishes before ever emitting `seq`.
pub fn state_at(cfg: &ChaosConfig, seq: u64) -> Option<(EventRecord, String)> {
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    let (mut world, recorder, _) = build_chaos_world(cfg, faults);
    loop {
        let emitted = world.telemetry_cursor().map_or(0, |(_, next)| next);
        if emitted > seq {
            break;
        }
        if !world.step() {
            return None;
        }
    }
    let record = recorder.events().into_iter().find(|r| r.seq == seq)?;
    Some((record, world.describe_state()))
}

/// A failing fault schedule shrunk to 1-minimality, plus the violation it
/// still reproduces.
#[derive(Debug, Clone)]
pub struct MinimizedSchedule {
    /// The seed whose experiment failed.
    pub seed: u64,
    /// The minimal fault schedule: removing any single entry makes the
    /// violation disappear.
    pub faults: Vec<(SimTime, Fault)>,
    /// The invariant violation the minimal schedule reproduces.
    pub violation: String,
    /// The report of the final (minimal) failing run.
    pub report: ChaosReport,
}

impl MinimizedSchedule {
    /// Renders the minimized schedule for a bug report: the violation,
    /// every remaining fault, and the explainer's leak records from the
    /// final failing run's event stream.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed {} violates: {}", self.seed, self.violation);
        let _ = writeln!(out, "minimal fault schedule ({}):", self.faults.len());
        for (at, fault) in &self.faults {
            let _ = writeln!(out, "  t={:.6}s  {fault:?}", at.as_secs_f64());
        }
        let leaks = TelemetryReport::from_events(&self.report.events).leaked;
        let _ = writeln!(out, "leaked references ({}):", leaks.len());
        for leak in &leaks {
            let _ = writeln!(
                out,
                "  [{}] node{} block {} ({} bytes) held for jobs {:?}",
                LossCause::LeakedReference.tag(),
                leak.node,
                leak.block,
                leak.bytes,
                leak.jobs
            );
        }
        out
    }
}

/// Cost counters from one minimization, for comparing the snapshot-forked
/// shrink against full-replay probing on the same seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Candidate schedules simulated, the initial full run included.
    pub probes: u64,
    /// Total events simulated across the initial run and every probe. For
    /// forked probes only the suffix after the restore point counts — the
    /// shared prefix is paid once, during the run that took the snapshot.
    pub simulated_events: u64,
}

/// Extracts a panic payload's message for use as a violation string.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "run panicked".into())
}

/// Probes one candidate schedule by replaying it from `t = 0`: `Ok` when
/// every invariant holds, `Err` with the violation (and the finished
/// report, when the run survived to produce one — a mid-run panic from
/// per-event validation yields `None`). Also returns the number of events
/// the probe simulated, for [`MinimizeStats`].
#[allow(clippy::type_complexity)]
fn probe(
    cfg: &ChaosConfig,
    faults: &[(SimTime, Fault)],
) -> (Result<(), Box<(String, Option<ChaosReport>)>>, u64) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_chaos_with(cfg, faults.to_vec())
    }));
    match outcome {
        Ok(report) => {
            let events = report.metrics.events_processed;
            match report.check_invariants() {
                Ok(()) => (Ok(()), events),
                Err(violation) => (Err(Box::new((violation, Some(report)))), events),
            }
        }
        // A panicked replay's event count is unknown (the report never
        // materialized); count it as zero on both sides of a comparison.
        Err(panic) => (Err(Box::new((panic_message(panic.as_ref()), None))), 0),
    }
}

/// Shrinks a failing seed's fault schedule to a 1-minimal reproducer by
/// replaying every candidate schedule from `t = 0`.
///
/// This is the pre-snapshot algorithm, kept as the baseline the forked
/// shrink ([`minimize_faults`]) is benchmarked and regression-tested
/// against; both produce identical minimal schedules.
pub fn minimize_faults_replay(cfg: &ChaosConfig) -> Option<MinimizedSchedule> {
    minimize_faults_replay_with_stats(cfg).0
}

/// [`minimize_faults_replay`] plus the probe-cost counters.
pub fn minimize_faults_replay_with_stats(
    cfg: &ChaosConfig,
) -> (Option<MinimizedSchedule>, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    let full = run_chaos(cfg);
    stats.probes = 1;
    stats.simulated_events = full.metrics.events_processed;
    let mut violation = match full.check_invariants() {
        Ok(()) => return (None, stats),
        Err(v) => v,
    };
    let mut faults = full.faults.clone();
    let mut report = full;
    let mut shrunk = true;
    while shrunk && !faults.is_empty() {
        shrunk = false;
        for i in 0..faults.len() {
            let mut candidate = faults.clone();
            candidate.remove(i);
            let (verdict, events) = probe(cfg, &candidate);
            stats.probes += 1;
            stats.simulated_events += events;
            if let Err(err) = verdict {
                let (v, r) = *err;
                faults = candidate;
                violation = v;
                // A panicking candidate produced no report; keep the last
                // completed failing one for the leak records.
                if let Some(r) = r {
                    report = r;
                }
                shrunk = true;
                break;
            }
        }
    }
    (
        Some(MinimizedSchedule {
            seed: cfg.seed,
            faults,
            violation,
            report,
        }),
        stats,
    )
}

/// Everything needed to branch a probe from the instant just before one
/// fault injection fires: the world snapshot, plus the flight-recorder
/// stream up to that instant (snapshots deliberately exclude emitted
/// telemetry, so the prefix rides alongside).
struct InjectSnapshot {
    snap: WorldSnapshot,
    prefix: Vec<EventRecord>,
    prefix_dropped: u64,
}

/// Runs `world` to completion, capturing an [`InjectSnapshot`] just before
/// every [`Event::Inject`](crate::world::Event) pops. `recorder` must be
/// the world's current telemetry sink and `prefix`/`prefix_dropped` the
/// stream it does *not* contain (empty for a from-scratch run; the restore
/// point's stream when continuing a fork). Returns the captured snapshots
/// as `(fault index, snapshot)` pairs and the finalized metrics.
fn run_capturing_snapshots(
    world: &mut World,
    recorder: &FlightRecorder,
    prefix: &[EventRecord],
    prefix_dropped: u64,
    captured: &mut Vec<(usize, InjectSnapshot)>,
) -> RunMetrics {
    while let Some(idx) = world.run_until_next_inject() {
        let mut stream = prefix.to_vec();
        stream.extend(recorder.events());
        captured.push((
            idx,
            InjectSnapshot {
                snap: world.snapshot(),
                prefix: stream,
                prefix_dropped: prefix_dropped + recorder.dropped(),
            },
        ));
        world.step();
    }
    world.finalize_mut()
}

/// Shrinks a failing seed's fault schedule to a 1-minimal reproducer,
/// forking each probe from a snapshot instead of replaying from `t = 0`.
///
/// Returns `None` when the seed's full schedule passes its invariants.
/// Otherwise repeatedly tries dropping each fault; any drop that still
/// fails is kept, until no single removal preserves the violation.
///
/// The initial run captures a [`World::snapshot`] just before every fault
/// injection. To probe "what if fault *k* never fired", the minimizer
/// restores the snapshot taken just before injection *k*, marks *k* (and
/// every previously dropped fault) suppressed, and simulates only the
/// suffix — the prefix up to *k* is byte-identical across the candidate
/// and its parent run, so re-simulating it would be pure waste. Snapshot
/// equivalence (see `DESIGN.md` §13) guarantees the forked probe's event
/// stream, metrics and fingerprint match a from-scratch replay of the
/// candidate schedule, so this produces the same minimal schedule as
/// [`minimize_faults_replay`] while simulating strictly fewer events.
/// The shrink is deterministic — candidates are probed in order.
pub fn minimize_faults(cfg: &ChaosConfig) -> Option<MinimizedSchedule> {
    minimize_faults_with_stats(cfg).0
}

/// [`minimize_faults`] plus the probe-cost counters.
///
/// A forked probe's event cost is the suffix it actually simulated; note
/// that a suppressed fault's `Inject` event still pops (inertly) so the
/// forked path's `RunMetrics::events_processed` can exceed a replay's by
/// the number of dropped faults, even though fewer events were *simulated*.
///
/// # Panics
///
/// Panics if the generated fault plan is not sorted by injection time
/// (the generator always sorts; the fork bookkeeping relies on it).
pub fn minimize_faults_with_stats(cfg: &ChaosConfig) -> (Option<MinimizedSchedule>, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let full_faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    // Index order must equal injection order: snapshots taken before
    // injection j stay valid when a *later* fault is dropped, and "later"
    // is tracked by index. Sorted times guarantee it (ties pop in
    // scheduling = index order).
    assert!(
        full_faults.windows(2).all(|w| w[0].0 <= w[1].0),
        "fault plan must be sorted by injection time"
    );
    let total_faults = full_faults.len();

    // The initial full run, capturing a snapshot before every injection.
    let (mut world, recorder, total_plans) = build_chaos_world(cfg, full_faults.clone());
    let mut captured = Vec::new();
    let metrics = run_capturing_snapshots(&mut world, &recorder, &[], 0, &mut captured);
    stats.probes = 1;
    stats.simulated_events = metrics.events_processed;
    let mut snaps: Vec<Option<InjectSnapshot>> = (0..total_faults).map(|_| None).collect();
    for (idx, snap) in captured {
        snaps[idx] = Some(snap);
    }
    let fp = fingerprint(&metrics);
    let full_report = ChaosReport {
        faults: full_faults.clone(),
        killed_plans: killed_plans_of(&full_faults),
        total_plans,
        metrics,
        fingerprint: fp,
        events: recorder.events(),
        events_dropped: recorder.dropped(),
    };
    let mut violation = match full_report.check_invariants() {
        Ok(()) => return (None, stats),
        Err(v) => v,
    };
    let mut report = full_report;

    // Greedy 1-minimal shrink. `dropped[j]` marks faults removed from the
    // accepted schedule; `active` is the remaining candidate set in
    // injection order.
    let mut dropped = vec![false; total_faults];
    let mut active: Vec<usize> = (0..total_faults).collect();
    let mut shrunk = true;
    while shrunk && !active.is_empty() {
        shrunk = false;
        for pos in 0..active.len() {
            let k = active[pos];
            stats.probes += 1;
            let accept = if snaps[k].is_some() {
                fork_probe(
                    &full_faults,
                    &dropped,
                    k,
                    &mut world,
                    &mut snaps,
                    total_plans,
                    &mut stats,
                )
            } else {
                // The accepted run panicked before injection k ever fired
                // (so no snapshot exists for it); fall back to a full
                // replay of the candidate.
                let candidate = candidate_faults(&full_faults, &dropped, k);
                let (verdict, events) = probe(cfg, &candidate);
                stats.simulated_events += events;
                match verdict {
                    Ok(()) => None,
                    Err(err) => {
                        let (v, r) = *err;
                        Some((v, r))
                    }
                }
            };
            if let Some((v, r)) = accept {
                violation = v;
                if let Some(r) = r {
                    report = r;
                }
                dropped[k] = true;
                active.remove(pos);
                // Snapshots taken before a *later* injection baked in the
                // old schedule's suffix behaviour only if the probe that
                // refreshed them was accepted — fork_probe handles the
                // refresh; the replay fallback leaves them stale, so
                // invalidate.
                if snaps[k].is_none() {
                    for entry in snaps.iter_mut().skip(k + 1) {
                        *entry = None;
                    }
                }
                shrunk = true;
                break;
            }
        }
    }
    (
        Some(MinimizedSchedule {
            seed: cfg.seed,
            faults: candidate_faults(&full_faults, &dropped, usize::MAX),
            violation,
            report,
        }),
        stats,
    )
}

/// The schedule that remains after removing `dropped` faults and fault
/// `extra` (pass `usize::MAX` for "none") from the full plan, in
/// injection order.
fn candidate_faults(
    full: &[(SimTime, Fault)],
    dropped: &[bool],
    extra: usize,
) -> Vec<(SimTime, Fault)> {
    full.iter()
        .enumerate()
        .filter(|(j, _)| !dropped[*j] && *j != extra)
        .map(|(_, f)| f.clone())
        .collect()
}

/// Probes "current schedule minus fault `k`" by restoring the snapshot
/// taken just before injection `k` and simulating only the suffix with
/// `k` suppressed. Returns `Some((violation, report))` when the candidate
/// still fails (accept the drop), `None` when it passes (keep fault `k`).
///
/// On acceptance the snapshots captured during this continuation replace
/// the stale ones for later injections — their histories now reflect the
/// new schedule — and any later snapshot the continuation never reached
/// (mid-run panic) is invalidated.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn fork_probe(
    full_faults: &[(SimTime, Fault)],
    dropped: &[bool],
    k: usize,
    world: &mut World,
    snaps: &mut [Option<InjectSnapshot>],
    total_plans: usize,
    stats: &mut MinimizeStats,
) -> Option<(String, Option<ChaosReport>)> {
    let Some(entry) = snaps[k].as_ref() else {
        // The caller dispatches here only when a snapshot exists; if one
        // ever goes missing, treat fault k as load-bearing (keep it)
        // rather than panicking mid-minimization.
        return None;
    };
    world.restore(&entry.snap);
    let (prefix, prefix_dropped) = (entry.prefix.clone(), entry.prefix_dropped);
    for (d, was_dropped) in dropped.iter().enumerate() {
        if *was_dropped || d == k {
            world.suppress_fault(d);
        }
    }
    let fork_rec = FlightRecorder::new(1 << 20);
    world.swap_recorder(Box::new(fork_rec.clone()));
    let start_events = world.events_processed();
    let mut captured = Vec::new();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_capturing_snapshots(world, &fork_rec, &prefix, prefix_dropped, &mut captured)
    }));
    stats.simulated_events += world.events_processed() - start_events;
    let accept = match outcome {
        Ok(metrics) => {
            let candidate = candidate_faults(full_faults, dropped, k);
            let mut events = prefix;
            events.extend(fork_rec.events());
            let fp = fingerprint(&metrics);
            let cand_report = ChaosReport {
                faults: candidate.clone(),
                killed_plans: killed_plans_of(&candidate),
                total_plans,
                metrics,
                fingerprint: fp,
                events,
                events_dropped: prefix_dropped + fork_rec.dropped(),
            };
            match cand_report.check_invariants() {
                Ok(()) => None,
                Err(v) => Some((v, Some(cand_report))),
            }
        }
        Err(panic) => Some((panic_message(panic.as_ref()), None)),
    };
    if accept.is_some() {
        // The continuation's history *is* the new accepted schedule:
        // refresh every later snapshot it reached, drop the rest. Earlier
        // snapshots (index < k) predate the divergence and stay valid.
        for entry in snaps.iter_mut().skip(k + 1) {
            *entry = None;
        }
        for (idx, snap) in captured {
            snaps[idx] = Some(snap);
        }
    }
    accept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_generator_respects_budgets() {
        for seed in 0..32 {
            let mut rng = SimRng::new(seed);
            let faults = generate_faults(&mut rng, 6, 3, 4, 10, 0);
            assert_eq!(faults.len(), 10);
            let node_fails: Vec<_> = faults
                .iter()
                .filter(|(_, f)| matches!(f, Fault::NodeFail(_)))
                .collect();
            assert!(node_fails.len() <= 2, "too many node failures");
            let kills = faults
                .iter()
                .filter(|(_, f)| matches!(f, Fault::KillPlan(_)))
                .count();
            assert!(kills <= 1, "too many plan kills");
            assert!(faults.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted");
        }
    }

    #[test]
    fn crash_draws_leave_base_plan_unchanged() {
        // Zero-cost-when-unused: enabling crashes must only *append*
        // draws — the base fault sequence is bit-identical either way.
        for seed in 0..8 {
            let mut a = SimRng::new(seed);
            let base = generate_faults(&mut a, 6, 3, 4, 10, 0);
            let mut b = SimRng::new(seed);
            let with = generate_faults(&mut b, 6, 3, 4, 10, 3);
            let crashes = with
                .iter()
                .filter(|(_, f)| matches!(f, Fault::NodeCrash(..)))
                .count();
            assert_eq!(crashes, 3);
            let without: Vec<_> = with
                .iter()
                .filter(|(_, f)| !matches!(f, Fault::NodeCrash(..)))
                .cloned()
                .collect();
            assert_eq!(without, base);
        }
    }

    #[test]
    fn fingerprint_distinguishes_metrics() {
        let mut a = RunMetrics::default();
        let b = RunMetrics::default();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        a.rereplicated = 1;
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn workload_is_deterministic() {
        let (f1, p1) = workload(3);
        let (f2, p2) = workload(3);
        assert_eq!(f1, f2);
        assert_eq!(p1.len(), p2.len());
        assert!(p1.iter().zip(&p2).all(|(a, b)| a.name == b.name));
    }
}
