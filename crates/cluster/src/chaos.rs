//! Chaos harness: randomized fault-plan generation and invariant checking.
//!
//! The harness turns one seed into a complete chaos experiment — a small
//! Ignem workload, an unreliable control-plane channel and a randomized
//! fault plan drawn from the full palette ([`Fault`]) — runs it with
//! per-event invariant validation, and checks eight end-state invariants:
//!
//! 1. **Do-not-harm**: every event leaves each slave's reference lists,
//!    queue and memory accounting mutually consistent
//!    ([`World::with_validation`] panics otherwise).
//! 2. **Reference leak-freedom**: at the end of the run no alive slave
//!    holds a reference entry — every migrated block was reclaimed.
//! 3. **Memory conservation**: no migrated bytes remain resident at the
//!    end; the migration buffer drained back to zero.
//! 4. **Completion**: every plan that was not deliberately killed finishes,
//!    as long as the fault plan leaves at least one replica of every block
//!    alive (the generator caps node failures at `replication − 1`).
//! 5. **Determinism**: two runs of the same `(seed, fault plan)` produce
//!    bit-identical metrics (compared via [`fingerprint`]).
//! 6. **Event-stream consistency**: the run's flight-recorder stream is
//!    internally coherent — sequence numbers strictly increase, every
//!    `MigrationCompleted` (and every wasted or cancelled read) matches an
//!    earlier `MigrationStarted` for the same `(node, block)`, and no node
//!    evicts more migrated bytes than it completed migrating.
//! 7. **Ledger conservation**: the double-entry residency ledger balances
//!    against the final resident bytes, and (when the recorder kept the
//!    whole stream) its credit/debit sides equal the bytes the event
//!    stream says were migrated and evicted.
//! 8. **Recovery convergence** (runs with [`Fault::NodeCrash`] injected):
//!    after the last fault heals, no dangling dead-incarnation state
//!    remains anywhere — every crashed node that survived to the end
//!    re-registered (master and slave agree on its incarnation, the
//!    NameNode serves its durable replicas), the master's retransmission
//!    outbox drained, and no durably written block lost its last alive
//!    replica. Audited by the world at finalization
//!    ([`RunMetrics::recovery`]); the harness surfaces the verdict.
//!
//! Chaos runs enable the epoch/lease reference lifecycle
//! ([`ChaosConfig::lease`]) so orphaned references expire even when the
//! periodic sweep has wound down; set it to `None` to reproduce the
//! legacy behaviour (and its seed-304 leak).
//!
//! When a seed fails, [`minimize_faults`] shrinks its fault plan to a
//! 1-minimal schedule — dropping any single remaining fault makes the
//! violation disappear — and [`MinimizedSchedule::describe`] renders it
//! with the explainer's leak records for the bug report.
//!
//! ```
//! use ignem_cluster::chaos::{run_chaos, ChaosConfig};
//!
//! let report = run_chaos(&ChaosConfig { seed: 7, ..ChaosConfig::default() });
//! report.assert_invariants();
//! ```

// BTreeMap keeps the invariant-check sweeps (which iterate these maps) in
// key order, satisfying lint rule D02 without per-site sorting.
use std::collections::BTreeMap;

use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_netsim::rpc::RpcConfig;
use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;
use ignem_simcore::telemetry::{Event, EventRecord, FlightRecorder};
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::units::MIB;

use crate::config::{ClusterConfig, FsMode};
use crate::explain::{LossCause, TelemetryReport};
use crate::metrics::RunMetrics;
use crate::world::{Fault, PlannedJob, World};

/// Parameters of one chaos experiment. Everything downstream — workload,
/// fault plan, channel behaviour — is a pure function of these.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed; drives the fault plan, the channel and the simulation.
    pub seed: u64,
    /// Cluster size (≥ the DFS replication factor, default 3).
    pub nodes: usize,
    /// Number of planned jobs in the workload.
    pub jobs: usize,
    /// Number of faults to draw from the palette.
    pub faults: usize,
    /// Number of [`Fault::NodeCrash`] faults to draw *in addition to*
    /// `faults`. Kept separate (and default **0**) so crash support is
    /// zero-cost when unused: the base fault plan's randomness draws are
    /// byte-identical with and without crashes enabled, which is what
    /// keeps the pinned chaos-304 stream stable.
    pub crashes: usize,
    /// Control-plane channel behaviour.
    pub rpc: RpcConfig,
    /// Reference-lease duration handed to every slave
    /// ([`IgnemConfig::lease`](ignem_core::slave::IgnemConfig)). The
    /// default (60 s) outlives any healthy job's quiet periods but expires
    /// orphans deterministically; `None` disables leasing and restores
    /// the legacy sweep-only cleanup.
    pub lease: Option<SimDuration>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            nodes: 6,
            jobs: 4,
            faults: 3,
            crashes: 0,
            rpc: RpcConfig {
                drop_p: 0.1,
                dup_p: 0.1,
                jitter: SimDuration::from_millis(20),
            },
            lease: Some(SimDuration::from_secs(60)),
        }
    }
}

/// The outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The generated fault plan, in injection order.
    pub faults: Vec<(SimTime, Fault)>,
    /// Indices of plans the fault plan deliberately killed.
    pub killed_plans: Vec<usize>,
    /// Number of plans in the workload.
    pub total_plans: usize,
    /// The run's metrics.
    pub metrics: RunMetrics,
    /// Bit-exact digest of the metrics (see [`fingerprint`]).
    pub fingerprint: u64,
    /// The flight-recorder event stream of the run, in emission order.
    pub events: Vec<EventRecord>,
    /// Records the flight recorder had to evict to stay within its bound.
    /// Any nonzero count fails [`check_invariants`](Self::check_invariants)
    /// loudly: a truncated stream can legitimately miss
    /// `MigrationStarted` events, so invariant 6 would otherwise pass
    /// vacuously on a window that no longer covers the run.
    pub events_dropped: u64,
}

impl ChaosReport {
    /// Checks the end-state invariants (2–4, 6 and 7 of the module docs;
    /// 1 is enforced per event during the run, 5 by comparing two
    /// reports) without panicking.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant; the
    /// minimizer uses this to probe shrunken fault schedules.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.metrics.leaked_job_refs != 0 {
            return Err(format!(
                "reference leak: {} entries survive the run (faults: {:?})",
                self.metrics.leaked_job_refs, self.faults
            ));
        }
        if self.metrics.final_migrated_bytes != 0 {
            return Err(format!(
                "memory not conserved: {} migrated bytes remain (faults: {:?})",
                self.metrics.final_migrated_bytes, self.faults
            ));
        }
        // Every plan completes exactly once unless it was deliberately
        // killed; a killed plan may still complete if the kill fired after
        // its last stage finished.
        let completed: Vec<usize> = self.metrics.plans.iter().map(|p| p.plan).collect();
        let mut sorted = completed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != completed.len() {
            return Err(format!(
                "a plan completed twice (faults: {:?})",
                self.faults
            ));
        }
        for plan in 0..self.total_plans {
            if !completed.contains(&plan) && !self.killed_plans.contains(&plan) {
                return Err(format!(
                    "plan {plan} neither completed nor was killed (faults: {:?})",
                    self.faults
                ));
            }
        }
        self.check_ledger()?;
        if self.events_dropped > 0 {
            return Err(format!(
                "flight recorder overflowed: {} records dropped, so invariant 6 \
                 cannot audit the full run — raise the recorder capacity \
                 (faults: {:?})",
                self.events_dropped, self.faults
            ));
        }
        self.check_event_stream_consistent()?;
        // Invariant 8: recovery convergence. The world audits crash
        // recovery at finalization; a `Some` verdict names the first
        // piece of dead-incarnation state that failed to converge.
        if let Some(v) = &self.metrics.recovery {
            return Err(format!(
                "recovery did not converge: {v} (faults: {:?})",
                self.faults
            ));
        }
        Ok(())
    }

    /// Checks the end-state invariants, panicking on the first violation.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_invariants(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("{e}");
        }
    }

    /// Invariant 7: the residency ledger balances. The total balance must
    /// equal the migrated bytes still resident, and — when the flight
    /// recorder kept the whole run — each side of the ledger must equal
    /// what the event stream witnessed (credits ↔ completed migrations,
    /// debits ↔ evictions, one `BlockEvicted` per counted eviction).
    fn check_ledger(&self) -> Result<(), String> {
        let ledger = &self.metrics.ledger;
        if ledger.total_balance() != self.metrics.final_migrated_bytes {
            return Err(format!(
                "ledger balance {} != final migrated bytes {} (faults: {:?})",
                ledger.total_balance(),
                self.metrics.final_migrated_bytes,
                self.faults
            ));
        }
        if self.events_dropped != 0 {
            return Ok(());
        }
        let mut completed_bytes = 0u64;
        let mut evicted_bytes = 0u64;
        let mut evictions = 0u64;
        for rec in &self.events {
            match &rec.event {
                Event::MigrationCompleted { bytes, .. } => completed_bytes += bytes,
                Event::BlockEvicted { bytes, .. } => {
                    evicted_bytes += bytes;
                    evictions += 1;
                }
                _ => {}
            }
        }
        let credited: u64 = ledger.entries.iter().map(|e| e.credited).sum();
        let debited: u64 = ledger.entries.iter().map(|e| e.debited).sum();
        if credited != completed_bytes {
            return Err(format!(
                "ledger credits {credited} != {completed_bytes} bytes of completed \
                 migrations in the event stream (faults: {:?})",
                self.faults
            ));
        }
        if debited != evicted_bytes {
            return Err(format!(
                "ledger debits {debited} != {evicted_bytes} evicted bytes in the \
                 event stream (faults: {:?})",
                self.faults
            ));
        }
        if self.metrics.slave_stats.evicted != evictions {
            return Err(format!(
                "evicted counter {} != {evictions} BlockEvicted events (faults: {:?})",
                self.metrics.slave_stats.evicted, self.faults
            ));
        }
        Ok(())
    }

    /// Invariant 6: the flight-recorder stream is internally coherent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn check_event_stream_consistent(&self) -> Result<(), String> {
        // Disk reads the slaves claimed to finish must each match an
        // earlier start for the same (node, block); wasted and cancelled
        // reads consume a start the same way. Eviction can only release
        // bytes that a completed migration brought into memory.
        let mut outstanding: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        let mut completed_bytes: BTreeMap<u32, u64> = BTreeMap::new();
        let mut evicted_bytes: BTreeMap<u32, u64> = BTreeMap::new();
        let mut last_seq: Option<u64> = None;
        for rec in &self.events {
            if let Some(prev) = last_seq {
                if rec.seq <= prev {
                    return Err(format!(
                        "event sequence not strictly increasing: {} after {prev}",
                        rec.seq
                    ));
                }
            }
            last_seq = Some(rec.seq);
            match &rec.event {
                Event::MigrationStarted { node, block, .. } => {
                    *outstanding.entry((*node, *block)).or_default() += 1;
                }
                Event::MigrationCompleted { node, block, bytes } => {
                    let pending = outstanding.entry((*node, *block)).or_default();
                    if *pending == 0 {
                        return Err(format!(
                            "node{node} completed migrating block {block} without a start \
                             (seq {}, faults: {:?})",
                            rec.seq, self.faults
                        ));
                    }
                    *pending -= 1;
                    *completed_bytes.entry(*node).or_default() += bytes;
                }
                Event::MigrationWasted { node, block, .. }
                | Event::MigrationCancelled { node, block } => {
                    let pending = outstanding.entry((*node, *block)).or_default();
                    if *pending == 0 {
                        return Err(format!(
                            "node{node} wasted/cancelled block {block} without a start \
                             (seq {}, faults: {:?})",
                            rec.seq, self.faults
                        ));
                    }
                    *pending -= 1;
                }
                Event::BlockEvicted { node, bytes, .. } => {
                    *evicted_bytes.entry(*node).or_default() += bytes;
                }
                _ => {}
            }
        }
        for (node, &gone) in &evicted_bytes {
            let migrated = completed_bytes.get(node).copied().unwrap_or(0);
            if gone > migrated {
                return Err(format!(
                    "node{node} evicted {gone} bytes but completed only {migrated} \
                     (faults: {:?})",
                    self.faults
                ));
            }
        }
        Ok(())
    }

    /// Invariant 6, panicking form (kept for existing tests).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency.
    pub fn assert_event_stream_consistent(&self) {
        if let Err(e) = self.check_event_stream_consistent() {
            panic!("{e}");
        }
    }
}

/// Draws a randomized fault plan from the full palette. Destructive faults
/// are bounded so the workload stays completable: fewer than `replication`
/// distinct nodes fail permanently, and at most one plan is killed.
///
/// `crashes` extra [`Fault::NodeCrash`] draws are appended *after* the
/// base `count` draws so that `crashes == 0` consumes exactly the same
/// randomness as before crash support existed — the base fault sequence
/// (and therefore every pinned stream) is unchanged. The final sort is
/// stable, so equal-timestamp ordering also survives.
pub fn generate_faults(
    rng: &mut SimRng,
    nodes: usize,
    replication: usize,
    num_plans: usize,
    count: usize,
    crashes: usize,
) -> Vec<(SimTime, Fault)> {
    let mut out = Vec::new();
    let mut failed: Vec<u32> = Vec::new();
    let mut killed = false;
    for _ in 0..count {
        let at = SimTime::from_secs_f64(rng.uniform_range(2.0, 40.0));
        let node = NodeId(rng.index(nodes) as u32);
        let fault = match rng.index(8) {
            0 => Fault::MasterFail,
            1 => Fault::SlaveRestart(node),
            2 => {
                if failed.len() + 1 >= replication || failed.contains(&node.0) {
                    Fault::SlaveRestart(node) // budget spent: downgrade
                } else {
                    failed.push(node.0);
                    Fault::NodeFail(node)
                }
            }
            3 => {
                if killed {
                    Fault::MasterFail
                } else {
                    killed = true;
                    Fault::KillPlan(rng.index(num_plans))
                }
            }
            4 => Fault::DiskDegrade(
                node,
                rng.uniform_range(10.0, 60.0) as u32,
                SimDuration::from_secs_f64(rng.uniform_range(5.0, 20.0)),
            ),
            5 => Fault::NodePause(
                node,
                SimDuration::from_secs_f64(rng.uniform_range(2.0, 8.0)),
            ),
            _ => {
                let cut = 1 + rng.index(nodes / 2);
                let mut all: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
                rng.shuffle(&mut all);
                all.truncate(cut);
                Fault::Partition(
                    all,
                    SimDuration::from_secs_f64(rng.uniform_range(3.0, 12.0)),
                )
            }
        };
        out.push((at, fault));
    }
    for _ in 0..crashes {
        let at = SimTime::from_secs_f64(rng.uniform_range(2.0, 40.0));
        let node = NodeId(rng.index(nodes) as u32);
        let down_for = SimDuration::from_secs_f64(rng.uniform_range(3.0, 15.0));
        out.push((at, Fault::NodeCrash(node, down_for)));
    }
    out.sort_by_key(|(at, _)| *at);
    out
}

/// Builds the chaos workload: `jobs` single-stage migrating jobs over
/// separate input files, submitted at staggered offsets.
pub fn workload(jobs: usize) -> (Vec<(String, u64)>, Vec<PlannedJob>) {
    let mut files = Vec::new();
    let mut plans = Vec::new();
    for j in 0..jobs {
        let path = format!("/chaos/in{j}");
        // 3–6 blocks of 64 MiB, varied deterministically by index.
        let blocks = 3 + (j % 4) as u64;
        files.push((path.clone(), blocks * 64 * MIB));
        let mut spec = JobSpec::new(format!("chaos-{j}"), JobInput::DfsFiles(vec![path]));
        spec.submit = SubmitOptions::with_migration();
        plans.push(PlannedJob::single(
            format!("chaos-{j}"),
            SimDuration::from_secs(2 + 5 * j as u64),
            spec,
        ));
    }
    (files, plans)
}

/// Bit-exact digest of a run's metrics: every field that could reveal a
/// divergence between two runs of the same seed is folded into an FNV-1a
/// hash, f64s by their exact bit patterns.
pub fn fingerprint(m: &RunMetrics) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn u64(&mut self, x: u64) {
            for b in x.to_le_bytes() {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        fn f64(&mut self, x: f64) {
            self.u64(x.to_bits());
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    h.u64(m.makespan.as_micros());
    h.u64(m.jobs.len() as u64);
    for j in &m.jobs {
        h.u64(j.plan as u64);
        h.u64(j.stage as u64);
        h.u64(j.input_bytes);
        h.u64(j.submitted.as_micros());
        h.f64(j.duration);
    }
    h.u64(m.plans.len() as u64);
    for p in &m.plans {
        h.u64(p.plan as u64);
        h.f64(p.duration);
    }
    h.u64(m.map_task_secs.len() as u64);
    h.f64(m.map_task_secs.mean());
    h.u64(m.reduce_task_secs.len() as u64);
    h.f64(m.reduce_task_secs.mean());
    h.u64(m.block_reads.len() as u64);
    for r in &m.block_reads {
        h.u64(r.bytes);
        h.f64(r.secs);
    }
    let s = &m.slave_stats;
    for v in [
        s.commands,
        s.migrated,
        s.migrated_bytes,
        s.deduped,
        s.discarded,
        s.wasted_reads,
        s.evicted,
        s.evicted_bytes,
        s.purges,
        s.liveness_queries,
        s.stale_epochs,
        s.lease_expiries,
        s.stale_incarnations,
    ] {
        h.u64(v);
    }
    for e in &m.ledger.entries {
        h.u64(e.credited);
        h.u64(e.debited);
    }
    let ms = &m.master_stats;
    for v in [
        ms.migrate_requests,
        ms.blocks_assigned,
        ms.evict_requests,
        ms.unknown_evicts,
        ms.acks,
        ms.retries,
        ms.gave_up,
        ms.registrations,
    ] {
        h.u64(v);
    }
    let r = &m.rpc;
    for v in [r.sent, r.delivered, r.dropped, r.duplicated, r.cut] {
        h.u64(v);
    }
    h.u64(m.rereplicated);
    h.u64(m.rerep_deferrals);
    h.u64(m.rerep_gave_up);
    h.u64(m.crashes);
    h.u64(m.restarts);
    h.u64(m.block_reports);
    h.u64(m.reignited_jobs);
    h.u64(m.recovery.is_some() as u64);
    h.u64(m.speculated);
    h.u64(m.leaked_job_refs);
    h.u64(m.final_migrated_bytes);
    for u in &m.disk_utilization {
        h.f64(*u);
    }
    h.0
}

/// Runs one chaos experiment with per-event invariant validation,
/// drawing the fault plan from the seed.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    // The fault plan is drawn from a fork of its own so the workload shape
    // and the simulation streams are untouched by how many faults we draw.
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    run_chaos_with(cfg, faults)
}

/// Runs one chaos experiment against an *explicit* fault schedule instead
/// of a generated one — the minimizer's probe, and the replay vehicle for
/// pinned regression schedules.
pub fn run_chaos_with(cfg: &ChaosConfig, faults: Vec<(SimTime, Fault)>) -> ChaosReport {
    let mut cluster = ClusterConfig {
        nodes: cfg.nodes,
        seed: cfg.seed,
        rpc: cfg.rpc,
        ..ClusterConfig::default()
    };
    // Small buffers stress eviction and liveness-triggered cleanup.
    cluster.ignem.buffer_capacity = 512 * MIB;
    cluster.ignem.lease = cfg.lease;
    cluster.validate();

    let killed_plans: Vec<usize> = faults
        .iter()
        .filter_map(|(_, f)| match f {
            Fault::KillPlan(p) => Some(*p),
            _ => None,
        })
        .collect();

    let (files, plans) = workload(cfg.jobs);
    let total_plans = plans.len();
    // Generous bound: chaos workloads emit a few thousand events, so the
    // recorder keeps the whole run and invariant 6 sees everything.
    let recorder = FlightRecorder::new(1 << 20);
    let world = World::new(cluster, FsMode::Ignem, &files, plans, faults.clone())
        .with_telemetry(Box::new(recorder.clone()))
        .with_validation();
    let metrics = world.run();
    let fp = fingerprint(&metrics);
    ChaosReport {
        faults,
        killed_plans,
        total_plans,
        metrics,
        fingerprint: fp,
        events: recorder.events(),
        events_dropped: recorder.dropped(),
    }
}

/// [`run_chaos`] with a sim-time [`MetricsRegistry`] attached, returning
/// the chaos report alongside the windowed metrics. The metrics handle is
/// purely observational — the report (fingerprint, event stream) is
/// bit-identical to an unobserved [`run_chaos`] of the same config.
pub fn run_chaos_observed(
    cfg: &ChaosConfig,
    window: SimDuration,
) -> (ChaosReport, ignem_simcore::metrics::MetricsReport) {
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    let mut cluster = ClusterConfig {
        nodes: cfg.nodes,
        seed: cfg.seed,
        rpc: cfg.rpc,
        ..ClusterConfig::default()
    };
    cluster.ignem.buffer_capacity = 512 * MIB;
    cluster.ignem.lease = cfg.lease;
    cluster.validate();

    let killed_plans: Vec<usize> = faults
        .iter()
        .filter_map(|(_, f)| match f {
            Fault::KillPlan(p) => Some(*p),
            _ => None,
        })
        .collect();

    let (files, plans) = workload(cfg.jobs);
    let total_plans = plans.len();
    let recorder = FlightRecorder::new(1 << 20);
    let registry = ignem_simcore::metrics::MetricsRegistry::new(window);
    let world = World::new(cluster, FsMode::Ignem, &files, plans, faults.clone())
        .with_telemetry(Box::new(recorder.clone()))
        .with_metrics(registry.clone())
        .with_validation();
    let metrics = world.run();
    let report = registry.finish(metrics.makespan);
    let fp = fingerprint(&metrics);
    (
        ChaosReport {
            faults,
            killed_plans,
            total_plans,
            metrics,
            fingerprint: fp,
            events: recorder.events(),
            events_dropped: recorder.dropped(),
        },
        report,
    )
}

/// A failing fault schedule shrunk to 1-minimality, plus the violation it
/// still reproduces.
#[derive(Debug, Clone)]
pub struct MinimizedSchedule {
    /// The seed whose experiment failed.
    pub seed: u64,
    /// The minimal fault schedule: removing any single entry makes the
    /// violation disappear.
    pub faults: Vec<(SimTime, Fault)>,
    /// The invariant violation the minimal schedule reproduces.
    pub violation: String,
    /// The report of the final (minimal) failing run.
    pub report: ChaosReport,
}

impl MinimizedSchedule {
    /// Renders the minimized schedule for a bug report: the violation,
    /// every remaining fault, and the explainer's leak records from the
    /// final failing run's event stream.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed {} violates: {}", self.seed, self.violation);
        let _ = writeln!(out, "minimal fault schedule ({}):", self.faults.len());
        for (at, fault) in &self.faults {
            let _ = writeln!(out, "  t={:.6}s  {fault:?}", at.as_secs_f64());
        }
        let leaks = TelemetryReport::from_events(&self.report.events).leaked;
        let _ = writeln!(out, "leaked references ({}):", leaks.len());
        for leak in &leaks {
            let _ = writeln!(
                out,
                "  [{}] node{} block {} ({} bytes) held for jobs {:?}",
                LossCause::LeakedReference.tag(),
                leak.node,
                leak.block,
                leak.bytes,
                leak.jobs
            );
        }
        out
    }
}

/// Probes one candidate schedule: `Ok` when every invariant holds, `Err`
/// with the violation (and the finished report, when the run survived to
/// produce one — a mid-run panic from per-event validation yields `None`).
fn probe(
    cfg: &ChaosConfig,
    faults: &[(SimTime, Fault)],
) -> Result<(), Box<(String, Option<ChaosReport>)>> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_chaos_with(cfg, faults.to_vec())
    }));
    match outcome {
        Ok(report) => match report.check_invariants() {
            Ok(()) => Ok(()),
            Err(violation) => Err(Box::new((violation, Some(report)))),
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "run panicked".into());
            Err(Box::new((msg, None)))
        }
    }
}

/// Shrinks a failing seed's fault schedule to a 1-minimal reproducer.
///
/// Returns `None` when the seed's full schedule passes its invariants.
/// Otherwise repeatedly tries dropping each fault; any drop that still
/// fails is kept, until no single removal preserves the violation. The
/// shrink is deterministic — candidate schedules are probed in order —
/// and quadratic in the schedule length, which the generator caps at a
/// handful of faults.
pub fn minimize_faults(cfg: &ChaosConfig) -> Option<MinimizedSchedule> {
    let full = run_chaos(cfg);
    let mut violation = match full.check_invariants() {
        Ok(()) => return None,
        Err(v) => v,
    };
    let mut faults = full.faults.clone();
    let mut report = full;
    let mut shrunk = true;
    while shrunk && !faults.is_empty() {
        shrunk = false;
        for i in 0..faults.len() {
            let mut candidate = faults.clone();
            candidate.remove(i);
            if let Err(err) = probe(cfg, &candidate) {
                let (v, r) = *err;
                faults = candidate;
                violation = v;
                // A panicking candidate produced no report; keep the last
                // completed failing one for the leak records.
                if let Some(r) = r {
                    report = r;
                }
                shrunk = true;
                break;
            }
        }
    }
    Some(MinimizedSchedule {
        seed: cfg.seed,
        faults,
        violation,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_generator_respects_budgets() {
        for seed in 0..32 {
            let mut rng = SimRng::new(seed);
            let faults = generate_faults(&mut rng, 6, 3, 4, 10, 0);
            assert_eq!(faults.len(), 10);
            let node_fails: Vec<_> = faults
                .iter()
                .filter(|(_, f)| matches!(f, Fault::NodeFail(_)))
                .collect();
            assert!(node_fails.len() <= 2, "too many node failures");
            let kills = faults
                .iter()
                .filter(|(_, f)| matches!(f, Fault::KillPlan(_)))
                .count();
            assert!(kills <= 1, "too many plan kills");
            assert!(faults.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted");
        }
    }

    #[test]
    fn crash_draws_leave_base_plan_unchanged() {
        // Zero-cost-when-unused: enabling crashes must only *append*
        // draws — the base fault sequence is bit-identical either way.
        for seed in 0..8 {
            let mut a = SimRng::new(seed);
            let base = generate_faults(&mut a, 6, 3, 4, 10, 0);
            let mut b = SimRng::new(seed);
            let with = generate_faults(&mut b, 6, 3, 4, 10, 3);
            let crashes = with
                .iter()
                .filter(|(_, f)| matches!(f, Fault::NodeCrash(..)))
                .count();
            assert_eq!(crashes, 3);
            let without: Vec<_> = with
                .iter()
                .filter(|(_, f)| !matches!(f, Fault::NodeCrash(..)))
                .cloned()
                .collect();
            assert_eq!(without, base);
        }
    }

    #[test]
    fn fingerprint_distinguishes_metrics() {
        let mut a = RunMetrics::default();
        let b = RunMetrics::default();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        a.rereplicated = 1;
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn workload_is_deterministic() {
        let (f1, p1) = workload(3);
        let (f2, p2) = workload(3);
        assert_eq!(f1, f2);
        assert_eq!(p1.len(), p2.len());
        assert!(p1.iter().zip(&p2).all(|(a, b)| a.name == b.name));
    }
}
