//! Parallel deterministic sweep runner.
//!
//! Fans independent pieces of work (chaos seeds, bench worlds) out to a
//! scoped-thread worker pool and hands results back **in input order**,
//! so everything derived from a sweep — printed progress, the exit code,
//! the minimized-schedule artifact — is byte-identical to a serial run.
//! Determinism comes from two properties:
//!
//! 1. each work item runs against its own isolated [`World`]-building
//!    closure (workers share nothing but the claim counter), and
//! 2. results are *consumed* strictly in input order on the calling
//!    thread, regardless of the order workers finish in.
//!
//! Worker scheduling (which thread runs which seed, and when) is the only
//! nondeterministic part, and it is unobservable: it can change wall-clock
//! timing but never the consumed sequence. `--jobs 1` takes a lock-free
//! inline path that is trivially identical to the old serial loop; the
//! threaded path is identical by the order-restoring merge.
//!
//! Everything here is std-only: [`std::thread::scope`] workers, one
//! mutex-guarded ring of result slots, and a condvar for both
//! backpressure (workers stay at most `2 × jobs` items ahead of the
//! consumer, bounding memory and wasted work after an early stop) and
//! result hand-off.
//!
//! [`World`]: crate::world::World

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Default worker count for sweeps: the machine's available parallelism,
/// falling back to 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Shared sweep state: a ring of result slots plus the claim/consume
/// cursors. Slot `i % window` may only be reused once result `i` has been
/// consumed, which the claim condition (`claimed < consumed + window`)
/// guarantees.
struct State<T> {
    slots: Vec<Option<T>>,
    claimed: usize,
    consumed: usize,
    stop: bool,
}

fn lock<'a, T>(m: &'a Mutex<State<T>>) -> MutexGuard<'a, State<T>> {
    // A worker panic (propagated by the scope after join) is the real
    // report; poisoning must not deadlock the teardown path.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Sets `stop` and wakes everyone when dropped while armed — used so a
/// panicking worker (or consumer) releases the other side instead of
/// deadlocking; `std::thread::scope` then joins and re-raises the panic.
struct StopGuard<'a, T> {
    state: &'a Mutex<State<T>>,
    cv: &'a Condvar,
    armed: bool,
}

impl<T> Drop for StopGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            lock(self.state).stop = true;
            self.cv.notify_all();
        }
    }
}

/// Runs `run(seed)` for every seed in `start..start + count` on a pool of
/// `jobs` scoped worker threads and feeds each result to `consume` in
/// ascending seed order on the calling thread.
///
/// `consume` returning [`ControlFlow::Break`] stops the sweep early:
/// workers quit at the next claim, in-flight seeds finish but are
/// discarded, and the break value is returned. A completed sweep returns
/// `None`.
///
/// With `jobs <= 1` this degenerates to the plain serial loop (no
/// threads, no locks); with any `jobs` value the `consume` call sequence
/// is identical, which is what makes parallel sweeps byte-equivalent to
/// serial ones.
///
/// # Panics
///
/// Panics if `count` does not fit in `usize` (only reachable on targets
/// narrower than 64 bits): the parallel path indexes per-seed slots in
/// memory, so a >4G-seed sweep on a 32-bit host must be split by the
/// caller rather than silently truncated.
pub fn sweep<T, B>(
    start: u64,
    count: u64,
    jobs: usize,
    run: impl Fn(u64) -> T + Sync,
    mut consume: impl FnMut(u64, T) -> ControlFlow<B>,
) -> Option<B>
where
    T: Send,
{
    if jobs <= 1 || count <= 1 {
        for seed in start..start.saturating_add(count) {
            if let ControlFlow::Break(b) = consume(seed, run(seed)) {
                return Some(b);
            }
        }
        return None;
    }

    let total = checked_seed_total(count);
    let window = jobs.saturating_mul(2).min(total).max(1);
    let state = Mutex::new(State {
        slots: (0..window).map(|_| None).collect(),
        claimed: 0,
        consumed: 0,
        stop: false,
    });
    let cv = Condvar::new();
    let mut out = None;

    std::thread::scope(|s| {
        for _ in 0..jobs.min(total) {
            s.spawn(|| {
                let mut guard = StopGuard {
                    state: &state,
                    cv: &cv,
                    armed: true,
                };
                loop {
                    let idx = {
                        let mut st = lock(&state);
                        loop {
                            if st.stop || st.claimed == total {
                                guard.armed = false;
                                return;
                            }
                            if st.claimed < st.consumed + window {
                                break;
                            }
                            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                        let i = st.claimed;
                        st.claimed += 1;
                        i
                    };
                    let value = run(start + idx as u64);
                    let mut st = lock(&state);
                    st.slots[idx % window] = Some(value);
                    cv.notify_all();
                }
            });
        }

        let guard = StopGuard {
            state: &state,
            cv: &cv,
            armed: true,
        };
        'consume: for i in 0..total {
            let value = {
                let mut st = lock(&state);
                loop {
                    if let Some(v) = st.slots[i % window].take() {
                        st.consumed = i + 1;
                        cv.notify_all();
                        break v;
                    }
                    if st.stop {
                        // A worker died before filling this slot; bail out
                        // and let the scope join re-raise its panic.
                        break 'consume;
                    }
                    st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            if let ControlFlow::Break(b) = consume(start + i as u64, value) {
                out = Some(b);
                break;
            }
        }
        // Normal teardown doubles as the early-stop signal; leaving the
        // guard armed is exactly the broadcast we want.
        drop(guard);
    });
    out
}

/// Converts a sweep's seed count into the in-memory work-list length the
/// parallel path indexes by. Refusing (rather than clamping to
/// `usize::MAX`, as this used to) is deliberate: a silent clamp on a
/// 32-bit target would quietly run fewer seeds than asked for and report
/// statistics over the truncated set. See
/// [`seed_count_fits_pointer_width`] for the decision logic.
fn checked_seed_total(count: u64) -> usize {
    assert!(
        seed_count_fits_pointer_width(count, usize::MAX as u128),
        "sweep seed count {count} exceeds usize::MAX on this target; split the sweep into smaller ranges"
    );
    count as usize
}

/// Whether a `count`-seed sweep fits a target whose `usize::MAX` is
/// `usize_max`. Factored out (with the width as a parameter) so the
/// 32-bit refusal is unit-testable from a 64-bit host.
fn seed_count_fits_pointer_width(count: u64, usize_max: u128) -> bool {
    u128::from(count) <= usize_max
}

/// Maps `f` over `items` on `jobs` scoped worker threads, returning the
/// results in input order. The order-restoring merge makes the output
/// independent of worker scheduling, so parallel bench runs stay
/// bit-reproducible. `jobs <= 1` (or a single item) maps inline.
pub fn parallel_map<I, T>(items: Vec<I>, jobs: usize, f: impl Fn(I) -> T + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each index is claimed exactly once");
                let value = f(item);
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot is filled once the scope joins")
        })
        .collect()
}

/// Distribution summary of one integer metric across the seeds of a
/// sweep: minimum, nearest-rank median and p99, and maximum. Used to
/// aggregate per-seed [`MetricsReport`](ignem_simcore::metrics::MetricsReport)
/// totals (and any other per-seed counter) into one line per metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedStat {
    /// Smallest observed value.
    pub min: u64,
    /// Median: the true middle value for odd sample sizes, the upper of
    /// the two middle values for even ones.
    pub p50: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Largest observed value.
    pub max: u64,
}

impl SeedStat {
    /// Summarizes `values` (one per seed). Sorts a copy; the input order
    /// does not matter. Returns the default (all zeros) for an empty
    /// slice.
    ///
    /// The median takes the *upper* middle value on even sample sizes
    /// (`sorted[n / 2]`, zero-indexed). The previous nearest-rank
    /// `ceil(n/2)` formula took the lower middle, which degenerates for a
    /// two-element sample: p50 of `[10, 2]` came out as 2 — the minimum —
    /// so a sweep over two seeds reported min == p50 unconditionally.
    /// With the upper-middle convention at least half the sample is `<=
    /// p50` and the two-seed median is no longer pinned to the minimum.
    pub fn from_values(values: &[u64]) -> SeedStat {
        if values.is_empty() {
            return SeedStat::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |q_num: usize, q_den: usize| {
            // Nearest-rank: ceil(q * n) clamped to [1, n], 1-indexed.
            let n = sorted.len();
            let r = (q_num * n).div_ceil(q_den).clamp(1, n);
            sorted[r - 1]
        };
        SeedStat {
            min: sorted[0],
            p50: sorted[sorted.len() / 2],
            p99: rank(99, 100),
            max: sorted[sorted.len() - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects the exact consume sequence a sweep produces.
    fn consumed_sequence(jobs: usize, start: u64, count: u64) -> (Vec<(u64, u64)>, Option<u64>) {
        let mut seen = Vec::new();
        let broke = sweep(
            start,
            count,
            jobs,
            |seed| seed * 10 + 1,
            |seed, v| {
                seen.push((seed, v));
                ControlFlow::<u64>::Continue(())
            },
        );
        (seen, broke)
    }

    #[test]
    fn serial_and_parallel_consume_identically() {
        let serial = consumed_sequence(1, 7, 64);
        for jobs in [2, 3, 8] {
            assert_eq!(consumed_sequence(jobs, 7, 64), serial, "jobs={jobs}");
        }
        assert_eq!(serial.0.len(), 64);
        assert_eq!(serial.0[0], (7, 71));
        assert!(serial.1.is_none());
    }

    #[test]
    fn early_break_returns_value_and_stops_in_order() {
        for jobs in [1, 4] {
            let mut seen = Vec::new();
            let broke = sweep(
                0,
                100,
                jobs,
                |seed| seed,
                |seed, v| {
                    seen.push(v);
                    if seed == 5 {
                        ControlFlow::Break(format!("stop at {seed}"))
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(broke.as_deref(), Some("stop at 5"), "jobs={jobs}");
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "jobs={jobs}");
        }
    }

    #[test]
    fn crash_enabled_chaos_outcomes_identical_serial_and_pooled() {
        // The synthetic tests above prove the consume *sequence* matches;
        // this one proves it for the real payload: full crash-enabled
        // chaos verification runs, fingerprints and all, are
        // byte-identical between the `--jobs 1` inline loop and the
        // bounded-ring thread pool.
        use crate::chaos::{fingerprint, run_chaos, ChaosConfig};
        let outcome = |seed: u64| {
            let cfg = ChaosConfig {
                seed,
                crashes: 1,
                ..ChaosConfig::default()
            };
            let report = run_chaos(&cfg);
            (
                fingerprint(&report.metrics),
                report.metrics.crashes,
                report.check_invariants().is_ok(),
            )
        };
        let collect = |jobs: usize| {
            let mut seen = Vec::new();
            sweep(0, 8, jobs, outcome, |seed, v| {
                seen.push((seed, v));
                ControlFlow::<()>::Continue(())
            });
            seen
        };
        let serial = collect(1);
        assert_eq!(collect(4), serial);
        assert!(serial.iter().all(|(_, (_, _, ok))| *ok), "invariants");
        assert!(
            serial.iter().any(|(_, (_, crashes, _))| *crashes > 0),
            "no crash landed in the sweep range"
        );
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        assert_eq!(consumed_sequence(4, 3, 0), (vec![], None));
        assert_eq!(consumed_sequence(4, 3, 1), (vec![(3, 31)], None));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..50).collect();
        let serial = parallel_map(items.clone(), 1, |x| x * x);
        for jobs in [2, 5] {
            assert_eq!(parallel_map(items.clone(), jobs, |x| x * x), serial);
        }
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn seed_stat_percentiles() {
        // 1..=100 (even n): p50 is the upper middle (51st value), p99 the
        // nearest-rank 99th.
        let values: Vec<u64> = (1..=100).rev().collect();
        let s = SeedStat::from_values(&values);
        assert_eq!(s.min, 1);
        assert_eq!(s.p50, 51);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        // Odd n: the true median.
        let odd: Vec<u64> = (1..=7).collect();
        assert_eq!(SeedStat::from_values(&odd).p50, 4);
    }

    #[test]
    fn seed_stat_small_and_empty_inputs() {
        assert_eq!(SeedStat::from_values(&[]), SeedStat::default());
        let one = SeedStat::from_values(&[7]);
        assert_eq!((one.min, one.p50, one.p99, one.max), (7, 7, 7, 7));
        // Regression: the lower-middle formula made the two-sample median
        // collapse onto the minimum; it must be the upper middle.
        let two = SeedStat::from_values(&[10, 2]);
        assert_eq!((two.min, two.p50, two.p99, two.max), (2, 10, 10, 10));
    }

    /// Pins the refusal decision for seed counts wider than the target's
    /// pointer width (the parallel path indexes per-seed slots in memory,
    /// so clamping would silently truncate a >4G-seed sweep on 32-bit).
    #[test]
    fn seed_count_overflow_is_refused_not_clamped() {
        let five_g = 5_000_000_000u64;
        // Fits a 64-bit host, refused on a 32-bit one.
        assert!(seed_count_fits_pointer_width(five_g, u64::MAX as u128));
        assert!(!seed_count_fits_pointer_width(five_g, u32::MAX as u128));
        assert!(seed_count_fits_pointer_width(
            u64::from(u32::MAX),
            u32::MAX as u128
        ));
        // On this host the conversion itself must round-trip exactly.
        assert_eq!(checked_seed_total(123_456), 123_456usize);
    }
}
