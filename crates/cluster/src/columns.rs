//! Columnar (struct-of-arrays) per-node hot state.
//!
//! At datacenter scale — 12k nodes — the world scans per-node liveness
//! state on every heartbeat, eviction pass, cancellation sweep and
//! re-replication round. Keeping each field as its own dense column, and
//! packing the boolean columns into 64-bit words, keeps those scans
//! cache-resident: the five liveness flags of 12 288 nodes fit in
//! 5 × 1.5 KiB of bitmap instead of 5 × 12 KiB of `Vec<bool>`, and a
//! sweep that skips dead or uninterested nodes can discard 64 nodes per
//! word test instead of loading a byte each.

/// A packed boolean column: one bit per node, 64 nodes per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCol {
    words: Vec<u64>,
    len: usize,
}

impl BitCol {
    /// A column of `len` bits, every bit set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let fill = if value { u64::MAX } else { 0 };
        let mut col = BitCol {
            words: vec![fill; len.div_ceil(64)],
            len,
        };
        col.trim_tail();
        col
    }

    /// Clears the bits beyond `len` in the last word so popcounts and
    /// word-level scans never see ghost nodes.
    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits in the column.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set bits, ascending; skips 64 nodes per zero word.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Resident bytes of the column's backing storage.
    pub fn resident_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut col = BitCol::new(130, false);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!col.get(i));
            col.set(i, true);
            assert!(col.get(i));
        }
        assert_eq!(col.count_ones(), 8);
        col.set(64, false);
        assert!(!col.get(64));
        assert_eq!(col.count_ones(), 7);
    }

    #[test]
    fn new_true_has_no_ghost_bits() {
        let col = BitCol::new(70, true);
        assert_eq!(col.count_ones(), 70);
        assert_eq!(col.iter_set().count(), 70);
    }

    #[test]
    fn iter_set_skips_zero_words() {
        let mut col = BitCol::new(1000, false);
        for i in [3, 64, 700, 999] {
            col.set(i, true);
        }
        let set: Vec<usize> = col.iter_set().collect();
        assert_eq!(set, vec![3, 64, 700, 999]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        BitCol::new(10, false).get(10);
    }
}
