//! Migration-race explainer: folds a telemetry event stream into per-block
//! verdicts and per-job lead-time decompositions.
//!
//! The paper's central race is *migration vs. the task that wants the
//! block*: Ignem migrates cold data upward while the scheduler is still
//! paying submitter, ApplicationMaster, and heartbeat latencies, and a
//! block read hits memory only if the migration finished first. Aggregate
//! metrics say *how often* the migration won; this module says *why* it
//! lost, block by block, from the typed event stream
//! ([`ignem_simcore::telemetry`]):
//!
//! * [`Verdict::WonRace`] — the read was served from memory; `margin` is
//!   how long the migrated block sat resident before the read started.
//! * [`Verdict::LostRace`] — the read went to disk; [`LossCause`] names
//!   the furthest stage the migration reached before the read started,
//!   and `shortfall` estimates how late it was.
//!
//! The verdict fold is intentionally *reconcilable*: `World` emits
//! `BlockRead` under exactly the guard that records a
//! [`BlockRead`](crate::metrics::BlockRead) metric, so
//! [`TelemetryReport::reconcile`] can assert `#WonRace == memory reads`
//! and `#LostRace == disk reads` — any drift means the instrumentation
//! and the metrics disagree about what happened.
//!
//! Lead-time decomposition ([`JobLeadTime`]) splits the head start a job
//! unknowingly gives its migrations into queue delay (submission →
//! schedulable), heartbeat delay (schedulable → first task assignment),
//! and the migration service time spent on the job's own blocks.

// BTreeMap throughout: the report folds iterate these maps, and lint rule
// D02 demands a deterministic visit order so two replays render identical
// reports.
use std::collections::BTreeMap;

use ignem_simcore::span::CriticalPath;
use ignem_simcore::telemetry::{Event, EventRecord, ReadClass};
use ignem_simcore::time::{SimDuration, SimTime};

use crate::metrics::{ReadKind, RunMetrics};

/// Why a block read lost the migration race, ordered by how far the
/// migration got before the read started (furthest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LossCause {
    /// The block *was* migrated but got evicted again before the read.
    Evicted,
    /// The block *was* migrated but the node crashed and its volatile
    /// store was wiped before the read: the eviction that lost it
    /// coincides with a [`NodeCrashed`](Event::NodeCrashed) on the same
    /// node at the same instant.
    LostToCrash,
    /// The disk read for the migration was in flight (or the block was
    /// resident on a node the reader didn't use) — the disk was the
    /// bottleneck.
    DiskContended,
    /// The migration command reached the slave but sat behind other
    /// queued migrations.
    QueuedBehind,
    /// The master assigned the migration but no slave ever acted on it
    /// before the read — the command was lost or still retrying.
    RpcLost,
    /// The master never assigned a migration for this block at all.
    NeverScheduled,
    /// Terminal diagnosis, not a per-read race outcome: a migration
    /// completed but was never evicted by the end of the stream — the
    /// reference lifecycle leaked it. Produced by the leak fold
    /// ([`TelemetryReport::leaked`]), never by the race fold.
    LeakedReference,
}

impl LossCause {
    /// Stable lowercase tag for CSV/JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            LossCause::Evicted => "evicted",
            LossCause::LostToCrash => "lost_to_crash",
            LossCause::DiskContended => "disk_contended",
            LossCause::QueuedBehind => "queued_behind",
            LossCause::RpcLost => "rpc_lost",
            LossCause::NeverScheduled => "never_scheduled",
            LossCause::LeakedReference => "leaked_reference",
        }
    }

    /// All causes, in the order [`LossCause`] declares them.
    pub const ALL: [LossCause; 7] = [
        LossCause::Evicted,
        LossCause::LostToCrash,
        LossCause::DiskContended,
        LossCause::QueuedBehind,
        LossCause::RpcLost,
        LossCause::NeverScheduled,
        LossCause::LeakedReference,
    ];
}

/// The outcome of one block read's race against its migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The read was served from memory.
    WonRace {
        /// How long the block had been resident when the read started
        /// (zero when the completing migration fell outside the recorded
        /// window).
        margin: SimDuration,
    },
    /// The read went to disk.
    LostRace {
        /// How late the migration was: time from the read's start to the
        /// moment the block would have been (or was) available, falling
        /// back to the age of the furthest migration step when no later
        /// completion exists.
        shortfall: SimDuration,
        /// The furthest stage the migration reached before the read.
        cause: LossCause,
    },
}

impl Verdict {
    /// The loss cause, if this verdict is a loss.
    pub fn cause(&self) -> Option<LossCause> {
        match self {
            Verdict::WonRace { .. } => None,
            Verdict::LostRace { cause, .. } => Some(*cause),
        }
    }
}

/// One block read, explained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockVerdict {
    /// Reading task.
    pub task: u64,
    /// Owning job.
    pub job: u64,
    /// Block read.
    pub block: u64,
    /// Node that served the bytes.
    pub node: u32,
    /// Bytes read.
    pub bytes: u64,
    /// When the read started.
    pub read_start: SimTime,
    /// The race outcome.
    pub verdict: Verdict,
}

/// How much head start a job's migrations got, decomposed the way the
/// paper argues in §II: the block upload can overlap the job's own
/// startup latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLeadTime {
    /// Job id.
    pub job: u64,
    /// Submission → schedulable (submitter + AM overhead).
    pub queue_delay: SimDuration,
    /// Schedulable → first task assignment (heartbeat latency).
    pub heartbeat_delay: SimDuration,
    /// Total disk time spent migrating blocks this job asked for first.
    pub migration_service: SimDuration,
}

/// Recovery lead times for one node restart: how long after the reboot
/// the master accepted the fresh incarnation's registration, and how long
/// until the first migration landed back in the node's RAM — the
/// re-ignition analogue of [`JobLeadTime`]. `None` means the stream ended
/// (or was truncated) before the milestone was witnessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReignitionLead {
    /// The node that restarted.
    pub node: u32,
    /// When the restart happened.
    pub restarted_at: SimTime,
    /// Restart → the master accepting the new incarnation's
    /// registration ([`Event::SlaveRegistered`]).
    pub register_lead: Option<SimDuration>,
    /// Restart → the first migration completing on the node afterwards:
    /// the moment upward migration is burning again on the rebooted
    /// machine.
    pub remigrate_lead: Option<SimDuration>,
}

/// Per-`(node, block)` migration timeline, indexed in the first pass and
/// queried per read in the second.
#[derive(Debug, Default)]
struct Timeline {
    enqueued: Vec<SimTime>,
    started: Vec<SimTime>,
    completed: Vec<SimTime>,
    evicted: Vec<SimTime>,
}

impl Timeline {
    fn is_empty(&self) -> bool {
        self.enqueued.is_empty()
            && self.started.is_empty()
            && self.completed.is_empty()
            && self.evicted.is_empty()
    }

    /// Last element of a (chronologically sorted) time list at or before
    /// `t`.
    fn last_at_or_before(times: &[SimTime], t: SimTime) -> Option<SimTime> {
        times.iter().rev().find(|&&x| x <= t).copied()
    }

    /// First element strictly after `t`.
    fn first_after(times: &[SimTime], t: SimTime) -> Option<SimTime> {
        times.iter().find(|&&x| x > t).copied()
    }
}

/// A migrated block still resident at the end of the event stream: some
/// migration round completed for it after its last eviction, so a
/// reference is still pinning it ([`LossCause::LeakedReference`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakRecord {
    /// Node holding the block.
    pub node: u32,
    /// The leaked block.
    pub block: u64,
    /// Bytes still resident.
    pub bytes: u64,
    /// Jobs that enqueued migrations for the block since its last
    /// eviction — the owners of the references that never drained.
    pub jobs: Vec<u64>,
}

/// The explainer's output: every block read's verdict, every job's
/// lead-time decomposition, end-of-stream leak records, and bulk counts
/// for reporting.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Per-read verdicts, in read-completion order.
    pub verdicts: Vec<BlockVerdict>,
    /// Per-job lead times, for jobs whose submission, scheduling, and
    /// first assignment all fell inside the recorded window.
    pub lead_times: Vec<JobLeadTime>,
    /// Blocks whose completed migrations outnumber their evictions at
    /// stream end, ordered by `(node, block)`. Empty for a leak-free run.
    pub leaked: Vec<LeakRecord>,
    /// Per-restart recovery lead times, in restart order. Empty for runs
    /// without [`Fault::NodeCrash`](crate::world::Fault::NodeCrash).
    pub reignitions: Vec<ReignitionLead>,
}

impl TelemetryReport {
    /// Folds an event stream (e.g.
    /// [`FlightRecorder::events`](ignem_simcore::telemetry::FlightRecorder::events))
    /// into verdicts and lead times. The stream must be in emission order;
    /// a truncated stream (ring-buffer eviction) degrades gracefully —
    /// reads whose migration history fell off the front get zero margins /
    /// `NeverScheduled` verdicts rather than errors.
    pub fn from_events(events: &[EventRecord]) -> TelemetryReport {
        // Pass 1: index migration timelines, assignments, job lifecycle
        // times, and attribute completed migration rounds to the job that
        // first asked for them.
        let mut timelines: BTreeMap<(u32, u64), Timeline> = BTreeMap::new();
        let mut assigned: BTreeMap<(u64, u64), Vec<(u32, SimTime)>> = BTreeMap::new();
        let mut submitted: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut scheduled: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut first_assign: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut migration_service: BTreeMap<u64, SimDuration> = BTreeMap::new();
        // Current migration round per (node, block): the first enqueued
        // waiter owns the round; `started` opens it, completion/waste/
        // cancellation closes it.
        let mut round_owner: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        let mut round_started: BTreeMap<(u32, u64), SimTime> = BTreeMap::new();
        let mut job_order: Vec<u64> = Vec::new();
        // Leak fold state: the jobs that enqueued migrations for each
        // (node, block) since its last eviction, and the block's size as
        // witnessed by its latest completed migration.
        let mut leak_jobs: BTreeMap<(u32, u64), Vec<u64>> = BTreeMap::new();
        let mut block_bytes: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        // Crash/recovery fold state: when each node crashed (to reclassify
        // same-instant evictions as crash losses) and the per-restart
        // recovery milestones.
        let mut crash_times: BTreeMap<u32, Vec<SimTime>> = BTreeMap::new();
        let mut reignitions: Vec<ReignitionLead> = Vec::new();

        for rec in events {
            match &rec.event {
                Event::JobSubmitted { job, .. } => {
                    submitted.entry(*job).or_insert(rec.at);
                    job_order.push(*job);
                }
                Event::JobScheduled { job } => {
                    scheduled.entry(*job).or_insert(rec.at);
                }
                Event::TaskAssigned { job, .. } => {
                    first_assign.entry(*job).or_insert(rec.at);
                }
                Event::MigrationAssigned {
                    job, block, node, ..
                } => {
                    assigned
                        .entry((*job, *block))
                        .or_default()
                        .push((*node, rec.at));
                }
                Event::MigrationEnqueued {
                    node, job, block, ..
                } => {
                    let key = (*node, *block);
                    timelines.entry(key).or_default().enqueued.push(rec.at);
                    round_owner.entry(key).or_insert(*job);
                    let owners = leak_jobs.entry(key).or_default();
                    if !owners.contains(job) {
                        owners.push(*job);
                    }
                }
                Event::MigrationStarted { node, block, .. } => {
                    let key = (*node, *block);
                    timelines.entry(key).or_default().started.push(rec.at);
                    round_started.insert(key, rec.at);
                }
                Event::MigrationCompleted { node, block, bytes } => {
                    let key = (*node, *block);
                    timelines.entry(key).or_default().completed.push(rec.at);
                    block_bytes.insert(key, *bytes);
                    if let (Some(owner), Some(started)) =
                        (round_owner.remove(&key), round_started.remove(&key))
                    {
                        *migration_service.entry(owner).or_default() +=
                            rec.at.saturating_duration_since(started);
                    }
                    // First completion after a restart closes that
                    // restart's re-ignition lead.
                    if let Some(r) = reignitions
                        .iter_mut()
                        .rev()
                        .find(|r| r.node == *node && r.remigrate_lead.is_none())
                    {
                        r.remigrate_lead = Some(rec.at.saturating_duration_since(r.restarted_at));
                    }
                }
                Event::MigrationWasted { node, block, .. }
                | Event::MigrationCancelled { node, block } => {
                    // The round ended without delivering the block; its
                    // `started` evidence stays in the timeline, but no
                    // service time is credited.
                    let key = (*node, *block);
                    round_owner.remove(&key);
                    round_started.remove(&key);
                }
                Event::MigrationDiscarded { node, block } => {
                    // A queued (never-started) waiter went away; release
                    // ownership only if no read is in flight.
                    let key = (*node, *block);
                    if !round_started.contains_key(&key) {
                        round_owner.remove(&key);
                    }
                }
                Event::BlockEvicted { node, block, .. } => {
                    let key = (*node, *block);
                    timelines.entry(key).or_default().evicted.push(rec.at);
                    // The eviction drained the block's references; any
                    // migration enqueued afterwards opens a fresh account.
                    leak_jobs.remove(&key);
                }
                Event::NodeCrashed { node } => {
                    crash_times.entry(*node).or_default().push(rec.at);
                }
                Event::NodeRestarted { node, .. } => {
                    reignitions.push(ReignitionLead {
                        node: *node,
                        restarted_at: rec.at,
                        register_lead: None,
                        remigrate_lead: None,
                    });
                }
                Event::SlaveRegistered { node, .. } => {
                    // Credit the latest unregistered restart of this node;
                    // duplicate deliveries are rejected by the master and
                    // never reach this event.
                    if let Some(r) = reignitions
                        .iter_mut()
                        .rev()
                        .find(|r| r.node == *node && r.register_lead.is_none())
                    {
                        r.register_lead = Some(rec.at.saturating_duration_since(r.restarted_at));
                    }
                }
                // The remaining events carry no pass-1 evidence. Each one
                // is named (no catch-all) so that adding an `Event`
                // variant forces a decision here; the X02 cross-check
                // audits the explainer against the enum.
                // `BlockRead` is consumed by pass 2 below.
                Event::BlockRead { .. }
                | Event::JobCompleted { .. }
                | Event::TaskStarted { .. }
                | Event::TaskFinished { .. }
                | Event::TaskSpeculated { .. }
                | Event::MigrationRejected { .. }
                | Event::RpcSent { .. }
                | Event::RpcDropped { .. }
                | Event::RpcDuplicated { .. }
                | Event::RpcCut { .. }
                | Event::RpcRetried { .. }
                | Event::RpcAcked { .. }
                | Event::RpcGaveUp { .. }
                | Event::LeaseExpired { .. }
                | Event::EpochRejected { .. }
                | Event::IncarnationRejected { .. }
                | Event::BlockReportReceived { .. }
                | Event::RereplicationStarted { .. }
                | Event::RereplicationDeferred { .. }
                | Event::FaultInjected { .. }
                | Event::FaultHealed { .. } => {}
            }
        }

        // Pass 2: verdict per block read.
        let mut verdicts = Vec::new();
        for rec in events {
            if let Event::BlockRead {
                task,
                job,
                block,
                node,
                bytes,
                class,
                duration_us,
            } = &rec.event
            {
                let read_start =
                    SimTime::from_micros(rec.at.as_micros().saturating_sub(*duration_us));
                let verdict = match class {
                    ReadClass::Memory => {
                        let margin = timelines
                            .get(&(*node, *block))
                            .and_then(|tl| Timeline::last_at_or_before(&tl.completed, read_start))
                            .map(|done| read_start.saturating_duration_since(done))
                            .unwrap_or(SimDuration::ZERO);
                        Verdict::WonRace { margin }
                    }
                    ReadClass::LocalDisk | ReadClass::RemoteDisk => explain_disk_read(
                        &timelines,
                        &assigned,
                        &crash_times,
                        *job,
                        *block,
                        read_start,
                    ),
                };
                verdicts.push(BlockVerdict {
                    task: *task,
                    job: *job,
                    block: *block,
                    node: *node,
                    bytes: *bytes,
                    read_start,
                    verdict,
                });
            }
        }

        // Lead times, in submission order, for jobs fully inside the
        // recorded window.
        let mut lead_times = Vec::new();
        for job in job_order {
            let (Some(&sub), Some(&sched), Some(&assign)) = (
                submitted.get(&job),
                scheduled.get(&job),
                first_assign.get(&job),
            ) else {
                continue;
            };
            lead_times.push(JobLeadTime {
                job,
                queue_delay: sched.saturating_duration_since(sub),
                heartbeat_delay: assign.saturating_duration_since(sched),
                migration_service: migration_service
                    .get(&job)
                    .copied()
                    .unwrap_or(SimDuration::ZERO),
            });
        }

        // Leak fold: a block whose completed migrations outnumber its
        // evictions is still resident, pinned by references that never
        // drained ([`LossCause::LeakedReference`]).
        let mut leaked: Vec<LeakRecord> = Vec::new();
        for (&key, tl) in &timelines {
            if tl.completed.len() > tl.evicted.len() {
                leaked.push(LeakRecord {
                    node: key.0,
                    block: key.1,
                    bytes: block_bytes.get(&key).copied().unwrap_or(0),
                    jobs: leak_jobs.get(&key).cloned().unwrap_or_default(),
                });
            }
        }

        TelemetryReport {
            verdicts,
            lead_times,
            leaked,
            reignitions,
        }
    }

    /// Number of reads that won the race (memory reads).
    pub fn won(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.verdict, Verdict::WonRace { .. }))
            .count()
    }

    /// Number of reads that lost the race (disk reads), all causes.
    pub fn lost(&self) -> usize {
        self.verdicts.len() - self.won()
    }

    /// Number of lost reads with the given cause.
    pub fn lost_with(&self, cause: LossCause) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.verdict.cause() == Some(cause))
            .count()
    }

    /// Checks that the verdicts agree with a run's metrics: one verdict
    /// per recorded block read, `#WonRace` equal to the memory-read count,
    /// and `#LostRace` (all causes) equal to the disk-read count. Returns
    /// a description of the first mismatch.
    ///
    /// Only meaningful when the flight recorder kept the whole run (no
    /// ring-buffer eviction); a truncated stream legitimately undercounts.
    pub fn reconcile(&self, metrics: &RunMetrics) -> Result<(), String> {
        if self.verdicts.len() != metrics.block_reads.len() {
            return Err(format!(
                "verdict count {} != recorded block reads {}",
                self.verdicts.len(),
                metrics.block_reads.len()
            ));
        }
        let mem = metrics
            .block_reads
            .iter()
            .filter(|r| r.kind == ReadKind::Memory)
            .count();
        if self.won() != mem {
            return Err(format!(
                "{} WonRace verdicts != {mem} memory reads",
                self.won()
            ));
        }
        let disk = metrics.block_reads.len() - mem;
        if self.lost() != disk {
            return Err(format!(
                "{} LostRace verdicts != {disk} disk reads",
                self.lost()
            ));
        }
        Ok(())
    }
}

/// Cross-checks the span-based critical path against the explainer's
/// lead-time decomposition and a run's metrics, by **integer equality**:
/// for every job the explainer decomposed, the span forest's `queueing`,
/// `master_processing` and `disk_contention` sums must equal the
/// explainer's `queue_delay`, `heartbeat_delay` and `migration_service`
/// exactly, and the forest's retry count must equal the master's retry
/// counter. Returns a description of the first mismatch.
///
/// Only meaningful on an untruncated stream (no ring-buffer eviction) —
/// both folds degrade gracefully under truncation, but not identically.
pub fn reconcile_critical_path(
    path: &CriticalPath,
    report: &TelemetryReport,
    metrics: &RunMetrics,
) -> Result<(), String> {
    for lt in &report.lead_times {
        let Some(j) = path.job(lt.job) else {
            return Err(format!("job {} missing from the critical path", lt.job));
        };
        if j.queueing != lt.queue_delay {
            return Err(format!(
                "job {}: span queueing {} != explainer queue_delay {}",
                lt.job,
                j.queueing.as_micros(),
                lt.queue_delay.as_micros()
            ));
        }
        if j.master_processing != lt.heartbeat_delay {
            return Err(format!(
                "job {}: span master_processing {} != explainer heartbeat_delay {}",
                lt.job,
                j.master_processing.as_micros(),
                lt.heartbeat_delay.as_micros()
            ));
        }
        if j.disk_contention != lt.migration_service {
            return Err(format!(
                "job {}: span disk_contention {} != explainer migration_service {}",
                lt.job,
                j.disk_contention.as_micros(),
                lt.migration_service.as_micros()
            ));
        }
    }
    if path.retries != metrics.master_stats.retries {
        return Err(format!(
            "span forest saw {} retries, master counted {}",
            path.retries, metrics.master_stats.retries
        ));
    }
    Ok(())
}

/// Ranks how far a migration got on one node by `read_start` and derives
/// the verdict; the caller keeps the max-progress verdict across every
/// node the master assigned.
fn explain_disk_read(
    timelines: &BTreeMap<(u32, u64), Timeline>,
    assigned: &BTreeMap<(u64, u64), Vec<(u32, SimTime)>>,
    crash_times: &BTreeMap<u32, Vec<SimTime>>,
    job: u64,
    block: u64,
    read_start: SimTime,
) -> Verdict {
    let Some(assignments) = assigned.get(&(job, block)).filter(|a| !a.is_empty()) else {
        return Verdict::LostRace {
            shortfall: SimDuration::ZERO,
            cause: LossCause::NeverScheduled,
        };
    };
    let first_assigned_at = assignments[0].1;

    // (rank, shortfall, cause): higher rank = the migration got further.
    let mut best: Option<(u8, SimDuration, LossCause)> = None;
    for &(node, _) in assignments {
        let Some(tl) = timelines.get(&(node, block)).filter(|tl| !tl.is_empty()) else {
            continue;
        };
        let completed = Timeline::last_at_or_before(&tl.completed, read_start);
        let evicted = Timeline::last_at_or_before(&tl.evicted, read_start);
        let started = Timeline::last_at_or_before(&tl.started, read_start);
        let enqueued = Timeline::last_at_or_before(&tl.enqueued, read_start);

        let candidate = if let Some(done) = completed {
            match evicted {
                Some(gone) if gone >= done => {
                    // A crash purge evicts at the crash instant
                    // (`NodeCrashed` is emitted first, same timestamp):
                    // the block wasn't released, it went down with the
                    // machine's volatile store.
                    let crashed = crash_times.get(&node).is_some_and(|ts| ts.contains(&gone));
                    (
                        3,
                        read_start.saturating_duration_since(gone),
                        if crashed {
                            LossCause::LostToCrash
                        } else {
                            LossCause::Evicted
                        },
                    )
                }
                // Resident on this node at read time, yet the reader used
                // another replica's disk: the contended disk path won the
                // planner's cost model, so charge contention with no
                // measurable shortfall.
                _ => (3, SimDuration::ZERO, LossCause::DiskContended),
            }
        } else if let Some(begun) = started {
            let shortfall = Timeline::first_after(&tl.completed, read_start)
                .map(|done| done.saturating_duration_since(read_start))
                .unwrap_or_else(|| read_start.saturating_duration_since(begun));
            (2, shortfall, LossCause::DiskContended)
        } else if let Some(queued) = enqueued {
            let shortfall = Timeline::first_after(&tl.started, read_start)
                .map(|begun| begun.saturating_duration_since(read_start))
                .unwrap_or_else(|| read_start.saturating_duration_since(queued));
            (1, shortfall, LossCause::QueuedBehind)
        } else {
            // The slave acted on the block only after the read began — the
            // command effectively arrived too late; treated like a lost
            // command below.
            continue;
        };
        if best.map(|(rank, ..)| candidate.0 > rank).unwrap_or(true) {
            best = Some(candidate);
        }
    }

    match best {
        Some((_, shortfall, cause)) => Verdict::LostRace { shortfall, cause },
        None => Verdict::LostRace {
            shortfall: read_start.saturating_duration_since(first_assigned_at),
            cause: LossCause::RpcLost,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, at_us: u64, event: Event) -> EventRecord {
        EventRecord {
            seq,
            at: SimTime::from_micros(at_us),
            event,
        }
    }

    fn read(at_us: u64, class: ReadClass, duration_us: u64) -> Event {
        let _ = at_us;
        Event::BlockRead {
            task: 1,
            job: 1,
            block: 10,
            node: 0,
            bytes: 64,
            class,
            duration_us,
        }
    }

    fn migration_chain(job: u64, block: u64, node: u32) -> Vec<Event> {
        vec![
            Event::MigrationAssigned {
                job,
                block,
                node,
                bytes: 64,
            },
            Event::MigrationEnqueued {
                node,
                job,
                block,
                bytes: 64,
            },
            Event::MigrationStarted {
                node,
                block,
                bytes: 64,
            },
            Event::MigrationCompleted {
                node,
                block,
                bytes: 64,
            },
        ]
    }

    #[test]
    fn memory_read_wins_with_margin() {
        let mut events: Vec<EventRecord> = Vec::new();
        for (i, ev) in migration_chain(1, 10, 0).into_iter().enumerate() {
            events.push(rec(i as u64, (i as u64 + 1) * 1_000, ev));
        }
        // Read starts at t=10_000 (completes 12_000 after 2_000us); the
        // migration completed at t=4_000 → margin 6_000us.
        events.push(rec(4, 12_000, read(12_000, ReadClass::Memory, 2_000)));
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.won(), 1);
        assert_eq!(
            report.verdicts[0].verdict,
            Verdict::WonRace {
                margin: SimDuration::from_micros(6_000)
            }
        );
    }

    #[test]
    fn unassigned_block_is_never_scheduled() {
        let events = vec![rec(0, 5_000, read(5_000, ReadClass::LocalDisk, 1_000))];
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.lost_with(LossCause::NeverScheduled), 1);
    }

    #[test]
    fn assigned_but_silent_slave_is_rpc_lost() {
        let events = vec![
            rec(
                0,
                1_000,
                Event::MigrationAssigned {
                    job: 1,
                    block: 10,
                    node: 3,
                    bytes: 64,
                },
            ),
            rec(1, 9_000, read(9_000, ReadClass::LocalDisk, 1_000)),
        ];
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.lost_with(LossCause::RpcLost), 1);
        assert_eq!(
            report.verdicts[0].verdict,
            Verdict::LostRace {
                // read_start 8_000 − assigned 1_000.
                shortfall: SimDuration::from_micros(7_000),
                cause: LossCause::RpcLost,
            }
        );
    }

    #[test]
    fn in_flight_migration_is_disk_contended_with_completion_shortfall() {
        let events = vec![
            rec(
                0,
                1_000,
                Event::MigrationAssigned {
                    job: 1,
                    block: 10,
                    node: 0,
                    bytes: 64,
                },
            ),
            rec(
                1,
                1_500,
                Event::MigrationEnqueued {
                    node: 0,
                    job: 1,
                    block: 10,
                    bytes: 64,
                },
            ),
            rec(
                2,
                2_000,
                Event::MigrationStarted {
                    node: 0,
                    block: 10,
                    bytes: 64,
                },
            ),
            // Read starts at 4_000 while the migration is still on disk…
            rec(3, 5_000, read(5_000, ReadClass::LocalDisk, 1_000)),
            // …and it finally lands at 7_000: shortfall 3_000.
            rec(
                4,
                7_000,
                Event::MigrationCompleted {
                    node: 0,
                    block: 10,
                    bytes: 64,
                },
            ),
        ];
        let report = TelemetryReport::from_events(&events);
        assert_eq!(
            report.verdicts[0].verdict,
            Verdict::LostRace {
                shortfall: SimDuration::from_micros(3_000),
                cause: LossCause::DiskContended,
            }
        );
    }

    #[test]
    fn queued_migration_is_queued_behind() {
        let events = vec![
            rec(
                0,
                1_000,
                Event::MigrationAssigned {
                    job: 1,
                    block: 10,
                    node: 0,
                    bytes: 64,
                },
            ),
            rec(
                1,
                1_500,
                Event::MigrationEnqueued {
                    node: 0,
                    job: 1,
                    block: 10,
                    bytes: 64,
                },
            ),
            rec(2, 5_000, read(5_000, ReadClass::LocalDisk, 1_000)),
        ];
        let report = TelemetryReport::from_events(&events);
        assert_eq!(
            report.verdicts[0].verdict,
            Verdict::LostRace {
                // No later start recorded: age since enqueue, 4_000 − 1_500.
                shortfall: SimDuration::from_micros(2_500),
                cause: LossCause::QueuedBehind,
            }
        );
    }

    #[test]
    fn evicted_block_is_evicted() {
        let mut events: Vec<EventRecord> = Vec::new();
        for (i, ev) in migration_chain(1, 10, 0).into_iter().enumerate() {
            events.push(rec(i as u64, (i as u64 + 1) * 1_000, ev));
        }
        events.push(rec(
            4,
            6_000,
            Event::BlockEvicted {
                node: 0,
                block: 10,
                bytes: 64,
            },
        ));
        events.push(rec(5, 10_000, read(10_000, ReadClass::LocalDisk, 1_000)));
        let report = TelemetryReport::from_events(&events);
        assert_eq!(
            report.verdicts[0].verdict,
            Verdict::LostRace {
                // read_start 9_000 − evicted 6_000.
                shortfall: SimDuration::from_micros(3_000),
                cause: LossCause::Evicted,
            }
        );
    }

    #[test]
    fn crash_purge_eviction_is_lost_to_crash() {
        let mut events: Vec<EventRecord> = Vec::new();
        for (i, ev) in migration_chain(1, 10, 0).into_iter().enumerate() {
            events.push(rec(i as u64, (i as u64 + 1) * 1_000, ev));
        }
        // The node crashes at t=6_000; the purge evicts the block at the
        // same instant.
        events.push(rec(4, 6_000, Event::NodeCrashed { node: 0 }));
        events.push(rec(
            5,
            6_000,
            Event::BlockEvicted {
                node: 0,
                block: 10,
                bytes: 64,
            },
        ));
        events.push(rec(6, 10_000, read(10_000, ReadClass::LocalDisk, 1_000)));
        let report = TelemetryReport::from_events(&events);
        assert_eq!(
            report.verdicts[0].verdict,
            Verdict::LostRace {
                shortfall: SimDuration::from_micros(3_000),
                cause: LossCause::LostToCrash,
            }
        );
        assert_eq!(LossCause::LostToCrash.tag(), "lost_to_crash");
    }

    #[test]
    fn ordinary_eviction_stays_evicted_despite_other_node_crash() {
        let mut events: Vec<EventRecord> = Vec::new();
        for (i, ev) in migration_chain(1, 10, 0).into_iter().enumerate() {
            events.push(rec(i as u64, (i as u64 + 1) * 1_000, ev));
        }
        // A *different* node crashes at the eviction instant: no
        // reclassification.
        events.push(rec(4, 6_000, Event::NodeCrashed { node: 3 }));
        events.push(rec(
            5,
            6_000,
            Event::BlockEvicted {
                node: 0,
                block: 10,
                bytes: 64,
            },
        ));
        events.push(rec(6, 10_000, read(10_000, ReadClass::LocalDisk, 1_000)));
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.lost_with(LossCause::Evicted), 1);
        assert_eq!(report.lost_with(LossCause::LostToCrash), 0);
    }

    #[test]
    fn reignition_leads_pair_restart_register_and_first_completion() {
        let mut events = vec![
            rec(0, 2_000, Event::NodeCrashed { node: 0 }),
            rec(
                1,
                7_000,
                Event::NodeRestarted {
                    node: 0,
                    incarnation: 2,
                },
            ),
            rec(
                2,
                8_500,
                Event::SlaveRegistered {
                    node: 0,
                    incarnation: 2,
                },
            ),
        ];
        for (i, ev) in migration_chain(1, 10, 0).into_iter().enumerate() {
            events.push(rec(3 + i as u64, 9_000 + (i as u64 + 1) * 1_000, ev));
        }
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.reignitions.len(), 1);
        let r = report.reignitions[0];
        assert_eq!(r.node, 0);
        assert_eq!(r.restarted_at, SimTime::from_micros(7_000));
        assert_eq!(r.register_lead, Some(SimDuration::from_micros(1_500)));
        // First completion at 13_000 → lead 6_000 from the restart.
        assert_eq!(r.remigrate_lead, Some(SimDuration::from_micros(6_000)));
    }

    #[test]
    fn unrecovered_restart_leaves_leads_unwitnessed() {
        let events = vec![rec(
            0,
            7_000,
            Event::NodeRestarted {
                node: 2,
                incarnation: 5,
            },
        )];
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.reignitions.len(), 1);
        assert_eq!(report.reignitions[0].register_lead, None);
        assert_eq!(report.reignitions[0].remigrate_lead, None);
    }

    #[test]
    fn lead_time_decomposes_and_attributes_migration_service() {
        let mut events = vec![
            rec(
                0,
                1_000,
                Event::JobSubmitted {
                    job: 1,
                    name: "wc".into(),
                    plan: 0,
                    stage: 0,
                },
            ),
            rec(1, 4_000, Event::JobScheduled { job: 1 }),
        ];
        for (i, ev) in migration_chain(1, 10, 0).into_iter().enumerate() {
            events.push(rec(2 + i as u64, 4_000 + (i as u64 + 1) * 1_000, ev));
        }
        events.push(rec(
            6,
            10_000,
            Event::TaskAssigned {
                task: 1,
                job: 1,
                node: 0,
            },
        ));
        let report = TelemetryReport::from_events(&events);
        assert_eq!(report.lead_times.len(), 1);
        let lt = report.lead_times[0];
        assert_eq!(lt.queue_delay, SimDuration::from_micros(3_000));
        assert_eq!(lt.heartbeat_delay, SimDuration::from_micros(6_000));
        // Started at 7_000, completed at 8_000.
        assert_eq!(lt.migration_service, SimDuration::from_micros(1_000));
    }

    #[test]
    fn unevicted_completion_is_a_leaked_reference() {
        // A full migration chain with no eviction by stream end: the leak
        // fold must name the block, its bytes, and the owning job.
        let mut events: Vec<EventRecord> = Vec::new();
        for (i, ev) in migration_chain(3, 15, 0).into_iter().enumerate() {
            events.push(rec(i as u64, (i as u64 + 1) * 1_000, ev));
        }
        let report = TelemetryReport::from_events(&events);
        assert_eq!(
            report.leaked,
            vec![LeakRecord {
                node: 0,
                block: 15,
                bytes: 64,
                jobs: vec![3],
            }]
        );
        assert_eq!(LossCause::LeakedReference.tag(), "leaked_reference");
    }

    #[test]
    fn evicted_block_is_not_leaked() {
        let mut events: Vec<EventRecord> = Vec::new();
        for (i, ev) in migration_chain(3, 15, 0).into_iter().enumerate() {
            events.push(rec(i as u64, (i as u64 + 1) * 1_000, ev));
        }
        events.push(rec(
            4,
            9_000,
            Event::BlockEvicted {
                node: 0,
                block: 15,
                bytes: 64,
            },
        ));
        let report = TelemetryReport::from_events(&events);
        assert!(report.leaked.is_empty());
    }

    #[test]
    fn reconcile_spots_count_drift() {
        let events = vec![rec(0, 5_000, read(5_000, ReadClass::Memory, 1_000))];
        let report = TelemetryReport::from_events(&events);
        let mut metrics = RunMetrics::default();
        assert!(report.reconcile(&metrics).is_err());
        metrics.block_reads.push(crate::metrics::BlockRead {
            bytes: 64,
            secs: 0.001,
            kind: ReadKind::Memory,
        });
        assert!(report.reconcile(&metrics).is_ok());
        metrics.block_reads[0].kind = ReadKind::LocalDisk;
        assert!(report.reconcile(&metrics).is_err());
    }
}
