//! Run metrics: everything the paper's tables and figures are computed
//! from.

use ignem_core::master::MasterStats;
use ignem_core::slave::SlaveStats;
use ignem_netsim::rpc::RpcStats;
use ignem_simcore::stats::Samples;
use ignem_simcore::time::{SimDuration, SimTime};

/// Where a block read was served from (collapsed from the DFS planner's
/// [`ReadSource`](ignem_dfs::client::ReadSource) for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadKind {
    /// Local or remote memory.
    Memory,
    /// Local disk.
    LocalDisk,
    /// Remote disk over the network.
    RemoteDisk,
}

impl std::fmt::Display for ReadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadKind::Memory => write!(f, "memory"),
            ReadKind::LocalDisk => write!(f, "local-disk"),
            ReadKind::RemoteDisk => write!(f, "remote-disk"),
        }
    }
}

/// One completed map-input block read (Fig. 1 / Fig. 6 raw data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockRead {
    /// Bytes read.
    pub bytes: u64,
    /// End-to-end read duration in seconds.
    pub secs: f64,
    /// Serving medium.
    pub kind: ReadKind,
}

/// One finished job (a single MapReduce stage).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// Index of the planned workload entry this job belongs to.
    pub plan: usize,
    /// Stage index within the planned entry.
    pub stage: usize,
    /// Total map-input bytes.
    pub input_bytes: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// Duration (submission → last task completion) in seconds.
    pub duration: f64,
}

/// One finished planned entry (a whole query / multi-stage job).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResult {
    /// Workload entry name.
    pub name: String,
    /// Plan index.
    pub plan: usize,
    /// Stage-1 input bytes (what Fig. 9b reports for queries).
    pub input_bytes: u64,
    /// End-to-end duration (first submission → last stage completion).
    pub duration: f64,
}

/// One node's double-entry residency account: bytes credited into the
/// migration buffer by completed migrations, bytes debited out by
/// evictions, purges and restarts. The balance is the bytes that must be
/// migrated-resident right now — any drift from the MemStore's own
/// occupancy is an accounting bug, not a policy choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Bytes admitted as migrated-resident (credit side).
    pub credited: u64,
    /// Bytes removed from migrated residency (debit side).
    pub debited: u64,
}

impl LedgerEntry {
    /// Bytes this account says must currently be resident.
    ///
    /// # Panics
    ///
    /// Panics if more bytes were debited than ever credited — the ledger
    /// went negative, which no legal event sequence can produce.
    pub fn balance(&self) -> u64 {
        self.credited
            .checked_sub(self.debited)
            .expect("residency ledger went negative")
    }
}

/// Per-node resident-bytes ledger for the migration buffers.
///
/// [`World`](crate::world::World) keeps it synchronized with the slaves'
/// own counters and, when per-event validation is on, reconciles every
/// node's balance against its MemStore occupancy after every event. The
/// final state is exported in [`RunMetrics::ledger`] so end-of-run checks
/// (chaos invariants, reports) can audit conservation without replaying
/// the event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidencyLedger {
    /// One account per node, indexed by node id.
    pub entries: Vec<LedgerEntry>,
}

impl ResidencyLedger {
    /// An empty ledger with one zeroed account per node.
    pub fn new(nodes: usize) -> Self {
        ResidencyLedger {
            entries: vec![LedgerEntry::default(); nodes],
        }
    }

    /// Overwrites one node's account with the authoritative counters.
    pub fn record(&mut self, node: usize, credited: u64, debited: u64) {
        self.entries[node] = LedgerEntry { credited, debited };
    }

    /// Checks one node's balance against the observed resident bytes.
    ///
    /// # Errors
    ///
    /// Returns a description of the discrepancy when the account and the
    /// observation disagree.
    pub fn reconcile(&self, node: usize, resident: u64) -> Result<(), String> {
        let e = &self.entries[node];
        if e.credited.checked_sub(e.debited) != Some(resident) {
            return Err(format!(
                "node{node} ledger out of balance: credited {} - debited {} != resident {resident}",
                e.credited, e.debited
            ));
        }
        Ok(())
    }

    /// Sum of all node balances: migrated bytes the ledger says are still
    /// resident cluster-wide.
    pub fn total_balance(&self) -> u64 {
        self.entries.iter().map(|e| e.balance()).sum()
    }
}

/// Everything measured during one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Per-stage job results, completion order.
    pub jobs: Vec<JobResult>,
    /// Per-planned-entry results, completion order.
    pub plans: Vec<PlanResult>,
    /// Map-task durations (seconds).
    pub map_task_secs: Samples,
    /// Reduce-task durations (seconds).
    pub reduce_task_secs: Samples,
    /// Every map-input block read.
    pub block_reads: Vec<BlockRead>,
    /// Per-node migrated-buffer occupancy series `(time, bytes)` sampled on
    /// change (from the MemStores).
    pub mem_series: Vec<Vec<(SimTime, f64)>>,
    /// Per-node occupancy series of the *hypothetical instantaneous* scheme
    /// (Fig. 7's comparison point).
    pub hypothetical_series: Vec<Vec<(SimTime, f64)>>,
    /// Aggregated Ignem slave counters.
    pub slave_stats: SlaveStats,
    /// Ignem master counters.
    pub master_stats: MasterStats,
    /// Control-plane RPC channel counters (drops, duplicates, cuts).
    pub rpc: RpcStats,
    /// Reference-list entries still held by alive slaves at the end of the
    /// run. Zero in a leak-free run: every migrated block was reclaimed.
    pub leaked_job_refs: u64,
    /// Migrated bytes still resident in slave buffers at the end of the
    /// run. Zero when the reference lists drained.
    pub final_migrated_bytes: u64,
    /// Final per-node residency accounts (see [`ResidencyLedger`]); the
    /// total balance equals `final_migrated_bytes` plus whatever dead
    /// nodes' purges already zeroed out.
    pub ledger: ResidencyLedger,
    /// Per-node disk busy fraction over the makespan.
    pub disk_utilization: Vec<f64>,
    /// Blocks re-replicated after node failures.
    pub rereplicated: u64,
    /// Re-replication attempts deferred because no legal source/target
    /// existed at the time (retried with backoff).
    pub rerep_deferrals: u64,
    /// Deferred re-replications abandoned after exhausting every backoff
    /// retry (the cluster shrank below the replication factor for good).
    pub rerep_gave_up: u64,
    /// Node crashes injected ([`Fault::NodeCrash`](crate::world::Fault)).
    pub crashes: u64,
    /// Crashed nodes that came back up and restarted their slave.
    pub restarts: u64,
    /// Block reports absorbed by the NameNode from re-registering nodes.
    pub block_reports: u64,
    /// Migrate requests re-issued for still-live jobs after a node
    /// re-registered (crash-recovery "re-ignition").
    pub reignited_jobs: u64,
    /// Invariant 8 (recovery convergence) verdict, computed at
    /// finalization when the run injected at least one crash: `None` means
    /// converged — every crashed-and-recovered node re-registered under
    /// its final incarnation with both master and NameNode, the
    /// retransmission outbox drained, and no durably written block was
    /// left without an alive replica. `Some` carries the violation.
    pub recovery: Option<String>,
    /// Speculative task attempts launched (0 unless speculation is on).
    pub speculated: u64,
    /// Time the last job finished.
    pub makespan: SimTime,
    /// Engine events processed over the whole run. Deterministic for a
    /// given seed; the bench harness divides it by wall time to report
    /// events/sec.
    pub events_processed: u64,
}

impl RunMetrics {
    /// Mean job duration in seconds (Table I's headline quantity) over
    /// *planned entries* (queries count once, not per stage).
    pub fn mean_plan_duration(&self) -> f64 {
        if self.plans.is_empty() {
            return 0.0;
        }
        self.plans.iter().map(|p| p.duration).sum::<f64>() / self.plans.len() as f64
    }

    /// Mean map-task duration in seconds (Table II).
    pub fn mean_map_task_secs(&self) -> f64 {
        self.map_task_secs.mean()
    }

    /// Mean block-read duration in seconds (Fig. 6).
    pub fn mean_block_read_secs(&self) -> f64 {
        if self.block_reads.is_empty() {
            return 0.0;
        }
        self.block_reads.iter().map(|r| r.secs).sum::<f64>() / self.block_reads.len() as f64
    }

    /// Fraction of block reads served from memory (Fig. 6's "roughly 60% of
    /// blocks are successfully migrated" under Ignem).
    pub fn memory_read_fraction(&self) -> f64 {
        if self.block_reads.is_empty() {
            return 0.0;
        }
        self.block_reads
            .iter()
            .filter(|r| r.kind == ReadKind::Memory)
            .count() as f64
            / self.block_reads.len() as f64
    }

    /// Mean over nodes of the time-average migrated-buffer occupancy,
    /// considering only nonzero-occupancy samples the way Fig. 7 does.
    ///
    /// Zero-length windows — consecutive samples at the same instant, as
    /// produced when several buffer changes land on one engine tick — carry
    /// no time weight and are skipped defensively (`t1 > t0` guard) so they
    /// can never poison the average with a `0.0 * v` term or, worse, a
    /// negative window from an unsorted series. The tail after the last
    /// sample is extrapolated only when `end > t_last`; a series whose last
    /// sample lies at or beyond `end` contributes no tail, i.e. `end`
    /// values inside the sampled range silently ignore everything sampled
    /// after them.
    pub fn mean_nonzero_occupancy(series: &[Vec<(SimTime, f64)>], end: SimTime) -> f64 {
        let mut weighted = 0.0;
        let mut busy_secs = 0.0;
        for node in series {
            for w in node.windows(2) {
                let (t0, v) = w[0];
                let (t1, _) = w[1];
                if v > 0.0 && t1 > t0 {
                    let dt = t1.duration_since(t0).as_secs_f64();
                    weighted += v * dt;
                    busy_secs += dt;
                }
            }
            if let Some(&(t_last, v)) = node.last() {
                if v > 0.0 && end > t_last {
                    let dt = end.duration_since(t_last).as_secs_f64();
                    weighted += v * dt;
                    busy_secs += dt;
                }
            }
        }
        if busy_secs == 0.0 {
            0.0
        } else {
            weighted / busy_secs
        }
    }

    /// Speedup of this run's mean plan duration versus a baseline run's
    /// (Table I's "Speedup w.r.t HDFS"): `1 − this/baseline`.
    pub fn speedup_vs(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.mean_plan_duration();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.mean_plan_duration() / base
        }
    }
}

/// Convenience: formats a duration as seconds with two decimals.
pub fn fmt_secs(d: SimDuration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(duration: f64) -> PlanResult {
        PlanResult {
            name: "j".into(),
            plan: 0,
            input_bytes: 1,
            duration,
        }
    }

    #[test]
    fn mean_plan_duration_averages() {
        let mut m = RunMetrics::default();
        m.plans.push(plan(10.0));
        m.plans.push(plan(20.0));
        assert_eq!(m.mean_plan_duration(), 15.0);
    }

    #[test]
    fn speedup_vs_baseline() {
        let mut fast = RunMetrics::default();
        fast.plans.push(plan(8.0));
        let mut slow = RunMetrics::default();
        slow.plans.push(plan(10.0));
        assert!((fast.speedup_vs(&slow) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn memory_fraction_counts_kinds() {
        let mut m = RunMetrics::default();
        m.block_reads.push(BlockRead {
            bytes: 1,
            secs: 0.1,
            kind: ReadKind::Memory,
        });
        m.block_reads.push(BlockRead {
            bytes: 1,
            secs: 1.0,
            kind: ReadKind::LocalDisk,
        });
        assert_eq!(m.memory_read_fraction(), 0.5);
        assert!((m.mean_block_read_secs() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn nonzero_occupancy_is_time_weighted() {
        // One node: 0 until t=10, 100 bytes until t=20, 0 afterwards.
        let series = vec![vec![
            (SimTime::ZERO, 0.0),
            (SimTime::from_secs(10), 100.0),
            (SimTime::from_secs(20), 0.0),
        ]];
        let mean = RunMetrics::mean_nonzero_occupancy(&series, SimTime::from_secs(40));
        assert_eq!(mean, 100.0);
    }

    #[test]
    fn nonzero_occupancy_skips_zero_length_windows() {
        // Two samples at the same instant (a burst of buffer changes on one
        // engine tick) must not contribute weight; only the 10s window at
        // 300 bytes and the 5s tail at 50 bytes count.
        let series = vec![vec![
            (SimTime::ZERO, 100.0),
            (SimTime::ZERO, 300.0),
            (SimTime::from_secs(10), 50.0),
        ]];
        let mean = RunMetrics::mean_nonzero_occupancy(&series, SimTime::from_secs(15));
        assert!((mean - (300.0 * 10.0 + 50.0 * 5.0) / 15.0).abs() < 1e-9);

        // A run whose only nonzero sample sits exactly at `end` has no
        // measurable busy time at all.
        let flat = vec![vec![(SimTime::from_secs(5), 42.0)]];
        assert_eq!(
            RunMetrics::mean_nonzero_occupancy(&flat, SimTime::from_secs(5)),
            0.0
        );
    }

    #[test]
    fn ledger_balances_and_reconciles() {
        let mut l = ResidencyLedger::new(2);
        l.record(0, 128, 64);
        l.record(1, 10, 10);
        assert_eq!(l.entries[0].balance(), 64);
        assert_eq!(l.total_balance(), 64);
        assert!(l.reconcile(0, 64).is_ok());
        assert!(l.reconcile(1, 0).is_ok());
        let err = l.reconcile(0, 0).unwrap_err();
        assert!(err.contains("out of balance"), "{err}");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn ledger_negative_balance_panics() {
        let e = LedgerEntry {
            credited: 1,
            debited: 2,
        };
        let _ = e.balance();
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.mean_plan_duration(), 0.0);
        assert_eq!(m.memory_read_fraction(), 0.0);
        assert_eq!(m.mean_block_read_secs(), 0.0);
    }
}
