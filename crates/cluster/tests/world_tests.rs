//! End-to-end integration tests of the full simulated stack.

use ignem_cluster::prelude::*;
use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_netsim::NodeId;
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::units::{GB, MB};

fn files_of(total: u64, n: usize, prefix: &str) -> Vec<(String, u64)> {
    (0..n)
        .map(|i| (format!("{prefix}/part-{i}"), total / n as u64))
        .collect()
}

fn job(files: &[(String, u64)], migrate: bool) -> JobSpec {
    let mut spec = JobSpec::new(
        "test-job",
        JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
    );
    if migrate {
        spec.submit = SubmitOptions::with_migration();
    }
    spec
}

fn run_one(mode: FsMode, migrate: bool, input: u64) -> RunMetrics {
    let files = files_of(input, 4, "/in");
    let plan = vec![PlannedJob::single(
        "test",
        SimDuration::from_secs(1),
        job(&files, migrate),
    )];
    World::new(ClusterConfig::default(), mode, &files, plan, vec![]).run()
}

#[test]
fn ram_beats_ignem_beats_hdfs() {
    let hdfs = run_one(FsMode::Hdfs, false, 2 * GB);
    let ignem = run_one(FsMode::Ignem, true, 2 * GB);
    let ram = run_one(FsMode::HdfsInputsInRam, false, 2 * GB);
    let (h, i, r) = (
        hdfs.mean_plan_duration(),
        ignem.mean_plan_duration(),
        ram.mean_plan_duration(),
    );
    assert!(r < i && i < h, "expected RAM {r} < Ignem {i} < HDFS {h}");
}

#[test]
fn ignem_serves_reads_from_memory() {
    let m = run_one(FsMode::Ignem, true, 2 * GB);
    assert!(
        m.memory_read_fraction() > 0.2,
        "memory fraction {}",
        m.memory_read_fraction()
    );
    assert!(m.slave_stats.migrated > 0);
    assert!(m.master_stats.blocks_assigned > 0);
}

#[test]
fn hdfs_mode_never_touches_memory() {
    let m = run_one(FsMode::Hdfs, false, GB);
    assert_eq!(m.memory_read_fraction(), 0.0);
    assert_eq!(m.slave_stats.migrated, 0);
}

#[test]
fn inputs_in_ram_reads_all_from_memory() {
    let m = run_one(FsMode::HdfsInputsInRam, false, GB);
    assert!((m.memory_read_fraction() - 1.0).abs() < 1e-9);
}

#[test]
fn migration_buffer_is_empty_after_evicts() {
    let m = run_one(FsMode::Ignem, true, 2 * GB);
    // The last sample of every node's occupancy series must be zero.
    for series in &m.mem_series {
        if let Some(&(_, v)) = series.last() {
            assert_eq!(v, 0.0, "leaked migration buffer: {series:?}");
        }
    }
    assert!(m.slave_stats.evicted > 0 || m.slave_stats.discarded > 0);
}

#[test]
fn runs_are_deterministic() {
    let a = run_one(FsMode::Ignem, true, GB);
    let b = run_one(FsMode::Ignem, true, GB);
    assert_eq!(a.plans, b.plans);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.block_reads.len(), b.block_reads.len());
}

#[test]
fn extra_lead_time_migrates_more() {
    let files = files_of(4 * GB, 4, "/in");
    let mk = |extra: u64| {
        let mut spec = job(&files, true);
        spec.submit.extra_lead_time = SimDuration::from_secs(extra);
        let plan = vec![PlannedJob::single("t", SimDuration::from_secs(1), spec)];
        World::new(
            ClusterConfig::default(),
            FsMode::Ignem,
            &files,
            plan,
            vec![],
        )
        .run()
    };
    let plain = mk(0);
    let delayed = mk(20);
    assert!(
        delayed.memory_read_fraction() >= plain.memory_read_fraction(),
        "more lead-time must not migrate less: {} vs {}",
        delayed.memory_read_fraction(),
        plain.memory_read_fraction()
    );
}

#[test]
fn multi_stage_plan_runs_sequentially() {
    let files = files_of(GB, 2, "/tbl");
    let mut s1 = job(&files, true);
    s1.shuffle_bytes = 100 * MB;
    s1.output_bytes = 100 * MB;
    s1.reducers = 2;
    let mut s2 = JobSpec::new("stage2", JobInput::Cached(100 * MB));
    s2.shuffle_bytes = 10 * MB;
    s2.output_bytes = 10 * MB;
    s2.reducers = 1;
    let plan = vec![PlannedJob {
        name: "query".into(),
        submit: SimDuration::from_secs(1),
        stages: vec![s1, s2],
    }];
    let m = World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        vec![],
    )
    .run();
    assert_eq!(m.plans.len(), 1);
    assert_eq!(m.jobs.len(), 2, "two stage jobs must have run");
    // Query duration covers both stages.
    let total: f64 = m.jobs.iter().map(|j| j.duration).sum();
    assert!(m.plans[0].duration <= total + 1.0);
    assert!(m.plans[0].duration >= m.jobs.iter().map(|j| j.duration).fold(0.0, f64::max));
}

#[test]
fn reduce_jobs_complete() {
    let files = files_of(GB, 2, "/sort");
    let mut spec = job(&files, false);
    spec.shuffle_bytes = GB;
    spec.output_bytes = GB;
    spec.reducers = 8;
    let plan = vec![PlannedJob::single("sort", SimDuration::from_secs(1), spec)];
    let m = World::new(ClusterConfig::default(), FsMode::Hdfs, &files, plan, vec![]).run();
    assert_eq!(m.plans.len(), 1);
    assert_eq!(m.reduce_task_secs.len(), 8);
}

#[test]
fn master_failure_purges_but_jobs_still_finish() {
    let files = files_of(2 * GB, 4, "/in");
    let plan = vec![PlannedJob::single(
        "t",
        SimDuration::from_secs(1),
        job(&files, true),
    )];
    let faults = vec![(SimTime::from_secs(3), Fault::MasterFail)];
    let m = World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        faults,
    )
    .run();
    assert_eq!(m.plans.len(), 1, "job must survive master failure");
    assert!(m.slave_stats.purges >= 1);
    for series in &m.mem_series {
        if let Some(&(_, v)) = series.last() {
            assert_eq!(v, 0.0, "references leaked past master failure");
        }
    }
}

#[test]
fn slave_restart_loses_data_but_jobs_finish() {
    let files = files_of(2 * GB, 4, "/in");
    let plan = vec![PlannedJob::single(
        "t",
        SimDuration::from_secs(1),
        job(&files, true),
    )];
    let faults = vec![
        (SimTime::from_secs(4), Fault::SlaveRestart(NodeId(0))),
        (SimTime::from_secs(4), Fault::SlaveRestart(NodeId(1))),
    ];
    let m = World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        faults,
    )
    .run();
    assert_eq!(m.plans.len(), 1);
}

#[test]
fn node_failure_reexecutes_tasks() {
    let files = files_of(2 * GB, 4, "/in");
    let plan = vec![PlannedJob::single(
        "t",
        SimDuration::from_secs(1),
        job(&files, false),
    )];
    let faults = vec![(SimTime::from_secs(6), Fault::NodeFail(NodeId(2)))];
    let m = World::new(ClusterConfig::default(), FsMode::Hdfs, &files, plan, faults).run();
    assert_eq!(m.plans.len(), 1, "job must survive a node failure");
}

#[test]
fn node_failure_triggers_rereplication() {
    let files = files_of(GB, 2, "/in");
    // A long-tail second job keeps the simulation alive while the
    // background re-replication drains.
    let files2 = files_of(GB, 2, "/late");
    let mut all = files.clone();
    all.extend(files2.clone());
    let plan = vec![
        PlannedJob::single("first", SimDuration::from_secs(1), job(&files, false)),
        PlannedJob::single("late", SimDuration::from_secs(60), job(&files2, false)),
    ];
    let faults = vec![(SimTime::from_secs(3), Fault::NodeFail(NodeId(2)))];
    let m = World::new(ClusterConfig::default(), FsMode::Hdfs, &all, plan, faults).run();
    assert_eq!(m.plans.len(), 2);
    assert!(
        m.rereplicated > 0,
        "under-replicated blocks must be re-replicated"
    );
}

#[test]
fn node_failure_under_ignem_still_completes() {
    let files = files_of(2 * GB, 4, "/in");
    let plan = vec![PlannedJob::single(
        "t",
        SimDuration::from_secs(1),
        job(&files, true),
    )];
    let faults = vec![(SimTime::from_secs(5), Fault::NodeFail(NodeId(1)))];
    let m = World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        faults,
    )
    .run();
    assert_eq!(m.plans.len(), 1);
}

#[test]
fn killed_job_references_are_reclaimed_by_liveness_cleanup() {
    // A killed job never sends its evict. A follow-up job large enough to
    // hit the occupancy threshold must trigger the liveness query and
    // reclaim the dead job's buffer space. The buffer is sized so a single
    // leftover block (64 MiB) is above the threshold and blocks the
    // follower's migrations on that slave.
    let mut cfg = ClusterConfig::default();
    cfg.ignem.buffer_capacity = 96 * MB;
    cfg.ignem.cleanup_threshold = 0.5;
    let files_a = files_of(512 * MB, 2, "/a");
    let files_b = files_of(2 * GB, 4, "/b");
    let mut all = files_a.clone();
    all.extend(files_b.clone());
    let mut job_a = job(&files_a, true);
    job_a.name = "victim".into();
    let mut job_b = job(&files_b, true);
    job_b.name = "follower".into();
    let plan = vec![
        PlannedJob::single("victim", SimDuration::from_secs(1), job_a),
        PlannedJob::single("follower", SimDuration::from_secs(40), job_b),
    ];
    // Kill the victim shortly after submission, while its blocks migrate.
    let faults = vec![(SimTime::from_secs_f64(1.8), Fault::KillPlan(0))];
    let m = World::new(cfg, FsMode::Ignem, &all, plan, faults).run();
    // Only the follower finishes.
    assert_eq!(m.plans.len(), 1);
    assert_eq!(m.plans[0].name, "follower");
    // Threshold-triggered cleanup fired at least once...
    assert!(
        m.slave_stats.liveness_queries >= 1,
        "liveness cleanup never triggered"
    );
    // ...and nothing leaks at the end.
    for series in &m.mem_series {
        if let Some(&(_, v)) = series.last() {
            assert_eq!(v, 0.0, "dead job's buffer never reclaimed");
        }
    }
}

#[test]
fn hypothetical_scheme_tracks_submissions() {
    let m = run_one(FsMode::Ignem, true, 2 * GB);
    let peak: f64 = m
        .hypothetical_series
        .iter()
        .flat_map(|s| s.iter().map(|&(_, v)| v))
        .fold(0.0, f64::max);
    assert!(peak > 0.0, "hypothetical scheme never held memory");
    for series in &m.hypothetical_series {
        if let Some(&(_, v)) = series.last() {
            assert_eq!(v, 0.0);
        }
    }
}

#[test]
fn speculation_rescues_stragglers() {
    // Heavy jitter creates stragglers; speculation must fire and the run
    // must stay correct and deterministic.
    let mut cfg = ClusterConfig::default();
    cfg.compute.compute_jitter_sigma = 1.2;
    cfg.compute.speculation = true;
    cfg.compute.speculation_threshold = 1.5;
    let files = files_of(2 * GB, 4, "/in");
    let mut spec = job(&files, false);
    spec.map_cpu_rate = 20e6; // compute-dominated so jitter matters
    let plan = vec![PlannedJob::single("spec", SimDuration::from_secs(1), spec)];
    let run = || World::new(cfg.clone(), FsMode::Hdfs, &files, plan.clone(), vec![]).run();
    let a = run();
    assert_eq!(a.plans.len(), 1);
    assert!(a.speculated > 0, "no speculative attempts fired");
    // Deterministic even with jitter + speculation.
    let b = run();
    assert_eq!(a.plans, b.plans);
    assert_eq!(a.speculated, b.speculated);

    // Without speculation the same workload is slower or equal.
    let mut cfg2 = cfg.clone();
    cfg2.compute.speculation = false;
    let c = World::new(cfg2, FsMode::Hdfs, &files, plan.clone(), vec![]).run();
    assert!(
        a.plans[0].duration <= c.plans[0].duration * 1.05,
        "speculation should not hurt: {} vs {}",
        a.plans[0].duration,
        c.plans[0].duration
    );
}

#[test]
fn trace_records_lifecycle() {
    use ignem_simcore::trace::SharedVecSink;
    let files = files_of(256 * MB, 2, "/in");
    let plan = vec![PlannedJob::single(
        "traced",
        SimDuration::from_secs(1),
        job(&files, true),
    )];
    let (sink, entries) = SharedVecSink::new();
    let world = World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        vec![],
    )
    .with_trace(Box::new(sink));
    let m = world.run();
    assert_eq!(m.plans.len(), 1);
    let entries = entries.borrow();
    assert!(!entries.is_empty());
    // Times are nondecreasing and all expected categories appear.
    for w in entries.windows(2) {
        assert!(w[0].at <= w[1].at);
    }
    for cat in ["job", "task", "migration"] {
        assert!(
            entries.iter().any(|e| e.category == cat),
            "missing category {cat}"
        );
    }
    // Submission precedes completion.
    let submit = entries
        .iter()
        .position(|e| e.category == "job" && e.message.contains("submitted"))
        .expect("submit record");
    let finish = entries
        .iter()
        .position(|e| e.category == "job" && e.message.contains("finished"))
        .expect("finish record");
    assert!(submit < finish);
}

#[test]
fn disk_utilization_is_sane() {
    let m = run_one(FsMode::Hdfs, false, 2 * GB);
    assert!(!m.disk_utilization.is_empty());
    for &u in &m.disk_utilization {
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }
    assert!(m.disk_utilization.iter().any(|&u| u > 0.0));
}

#[test]
fn read_caching_serves_repeats_only() {
    use ignem_cluster::experiment::run_rereads;
    let cfg = ClusterConfig {
        cache_reads: true,
        ..ClusterConfig::default()
    };
    let (_, first, repeat) = run_rereads(&cfg, FsMode::Hdfs, 4, GB);
    assert!(
        repeat < first * 0.8,
        "cache must speed up repeats: first {first:.2}s repeat {repeat:.2}s"
    );
    // Without the cache, both rounds cost the same.
    let plain = ClusterConfig::default();
    let (_, pf, pr) = run_rereads(&plain, FsMode::Hdfs, 4, GB);
    assert!((pf - pr).abs() < pf * 0.15, "no cache: {pf:.2} vs {pr:.2}");
    // Ignem speeds up both rounds.
    let (_, inf, inr) = run_rereads(&plain, FsMode::Ignem, 4, GB);
    assert!(inf < pf * 0.8 && inr < pr * 0.8, "{inf:.2}/{inr:.2}");
}
