//! World builders shared between the golden-stream and observability
//! integration tests. Every builder here is deterministic: two calls
//! produce worlds that replay bit-identical event streams, which is
//! what lets both test files pin hashes over the recorded telemetry.
#![allow(dead_code)]

use ignem_cluster::chaos::{generate_faults, workload, ChaosConfig};
use ignem_cluster::prelude::*;
use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::{MB, MIB};

/// Recorder capacity large enough to hold every pinned stream whole.
pub const RECORDER_CAP: usize = 1 << 20;

/// The same fault-free default world the sanitizer double-runs.
pub fn default_world() -> World {
    let files: Vec<(String, u64)> = (0..4)
        .map(|i| (format!("/in/part-{i}"), 512 * MB / 4))
        .collect();
    let mut spec = JobSpec::new(
        "sanitizer-job",
        JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
    );
    spec.submit = SubmitOptions::with_migration();
    let plan = vec![PlannedJob::single(
        "sanitizer",
        SimDuration::from_secs(1),
        spec,
    )];
    World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        vec![],
    )
}

/// Mirrors `run_chaos_with`'s world construction for an arbitrary config.
pub fn chaos_world(cfg: &ChaosConfig) -> World {
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    let mut cluster = ClusterConfig {
        nodes: cfg.nodes,
        seed: cfg.seed,
        rpc: cfg.rpc,
        ..ClusterConfig::default()
    };
    cluster.ignem.buffer_capacity = 512 * MIB;
    cluster.ignem.lease = cfg.lease;
    let (files, plans) = workload(cfg.jobs);
    World::new(cluster, FsMode::Ignem, &files, plans, faults)
}

/// Mirrors `run_chaos_with`'s world construction for seed 304.
pub fn chaos_world_304() -> World {
    chaos_world(&ChaosConfig {
        seed: 304,
        ..ChaosConfig::default()
    })
}

/// Crash-recovery stream: chaos seed 14 with two `NodeCrash` draws —
/// the pinned-regression schedule (crash wipes a RAM replica mid-use, a
/// read degrades to disk, the job re-ignites after restart; the second
/// crash hits the node while it is already dark and must be a no-op).
pub fn chaos_world_crash_14() -> World {
    chaos_world(&ChaosConfig {
        seed: 14,
        crashes: 2,
        ..ChaosConfig::default()
    })
}
