//! Integration tests for the migration-race explainer and the flight
//! recorder's determinism guarantees.

use ignem_cluster::chaos::workload;
use ignem_cluster::experiment::run_swim_recorded;
use ignem_cluster::prelude::*;
use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;
use ignem_simcore::telemetry::FlightRecorder;
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::units::GB;
use ignem_workloads::swim::{SwimConfig, SwimTrace};

fn small_trace() -> SwimTrace {
    let cfg = SwimConfig {
        jobs: 12,
        total_input: 4 * GB,
        largest: GB,
        ..SwimConfig::default()
    };
    SwimTrace::generate(&cfg, &mut SimRng::new(7))
}

#[test]
fn disk_degrade_on_migrating_nodes_yields_disk_contended_losses() {
    // Degrade every disk to 10% of nominal bandwidth right as the chaos
    // workload's migrating jobs arrive: migrations crawl, tasks catch up
    // with them, and reads lose the race to a disk that was mid-migration.
    let cfg = ClusterConfig {
        nodes: 4,
        ..ClusterConfig::default()
    };
    let (files, plans) = workload(2);
    let faults: Vec<(SimTime, Fault)> = (0..cfg.nodes as u32)
        .map(|n| {
            (
                SimTime::from_secs(1),
                Fault::DiskDegrade(NodeId(n), 10, SimDuration::from_secs(120)),
            )
        })
        .collect();
    let recorder = FlightRecorder::new(1 << 20);
    let metrics = World::new(cfg, FsMode::Ignem, &files, plans, faults)
        .with_telemetry(Box::new(recorder.clone()))
        .run();
    assert_eq!(recorder.dropped(), 0, "flight recorder truncated");
    let report = TelemetryReport::from_events(&recorder.events());
    report.reconcile(&metrics).expect("verdicts must reconcile");
    assert!(
        report.lost_with(LossCause::DiskContended) > 0,
        "a 10%-speed disk must make at least one read lose to an \
         in-flight migration; causes: {:?}",
        LossCause::ALL
            .iter()
            .map(|&c| (c.tag(), report.lost_with(c)))
            .collect::<Vec<_>>()
    );
}

#[test]
fn fault_free_reliable_run_has_no_rpc_lost_and_reconciles() {
    // Over a reliable control plane with no faults, every assigned
    // migration reaches its slave: the RpcLost verdict must never appear,
    // and the verdict counts must reconcile exactly with the metrics.
    let cfg = ClusterConfig::default();
    let trace = small_trace();
    let (metrics, recorder) = run_swim_recorded(&cfg, FsMode::Ignem, &trace, 1 << 20);
    assert_eq!(recorder.dropped(), 0, "flight recorder truncated");
    let report = TelemetryReport::from_events(&recorder.events());
    report.reconcile(&metrics).expect("verdicts must reconcile");
    assert_eq!(
        report.lost_with(LossCause::RpcLost),
        0,
        "RpcLost on a reliable, fault-free channel"
    );
    assert!(report.won() > 0, "Ignem must win some races on SWIM");
    assert!(
        !report.lead_times.is_empty(),
        "lead-time decomposition must cover the jobs"
    );
}

#[test]
fn seeded_runs_export_bit_identical_jsonl() {
    // The acceptance bar for the JSONL format: two executions of the same
    // seeded experiment serialize to byte-identical traces.
    let cfg = ClusterConfig::default();
    let run = || {
        let trace = small_trace();
        let (_, recorder) = run_swim_recorded(&cfg, FsMode::Ignem, &trace, 1 << 20);
        recorder.to_jsonl()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty(), "empty trace");
    assert_eq!(first, second, "seeded runs must produce identical JSONL");
}
