//! Streaming-vs-preloaded equivalence: a world that admits its jobs
//! lazily through an [`ArrivalSource`] must replay a byte-identical
//! telemetry stream (and metrics fingerprint) to a world that preloads
//! the same plans as a `Vec`.
//!
//! The two admission paths differ only in *when* the engine learns about
//! each submission — preloaded worlds schedule every `Submit` up front,
//! streaming worlds schedule one `Arrival` at a time — so equality here
//! pins down that lazy admission perturbs neither the RNG draw order nor
//! any event timestamp. The workload is the chaos generator's (distinct,
//! collision-free submission times), the same shape two of the three
//! golden streams run.

mod common;

use common::RECORDER_CAP;
use ignem_cluster::chaos::{fingerprint, workload};
use ignem_cluster::prelude::*;
use ignem_cluster::sanitizer::hash_chain;
use ignem_simcore::telemetry::{EventRecord, FlightRecorder};
use ignem_simcore::units::MIB;

const JOBS: usize = 6;

fn cluster_config() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        seed: 304,
        ..ClusterConfig::default()
    };
    cfg.ignem.buffer_capacity = 512 * MIB;
    cfg
}

fn preloaded_world() -> World {
    let (files, plans) = workload(JOBS);
    World::new(cluster_config(), FsMode::Ignem, &files, plans, vec![])
}

fn streaming_world() -> World {
    let (files, plans) = workload(JOBS);
    // Same files preloaded (namespace creation draws the main RNG), but
    // the plans arrive one at a time through the pull iterator.
    World::new(cluster_config(), FsMode::Ignem, &files, vec![], vec![])
        .with_arrivals(Box::new(plans.into_iter()))
}

fn tail(events: &[EventRecord]) -> (usize, u64) {
    let chain = hash_chain(events);
    (events.len(), *chain.last().expect("non-empty stream"))
}

#[test]
fn streaming_replays_preloaded_stream_bit_identically() {
    let (pre_metrics, pre_events, dropped) = preloaded_world().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0, "recorder must hold the whole stream");
    let (st_metrics, st_events, dropped) = streaming_world().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0, "recorder must hold the whole stream");

    assert_eq!(
        tail(&st_events),
        tail(&pre_events),
        "streamed admission must replay the preloaded event stream"
    );
    assert_eq!(
        fingerprint(&st_metrics),
        fingerprint(&pre_metrics),
        "metrics fingerprints must agree"
    );
}

/// Snapshots taken *mid-stream* must capture the arrival source's
/// position: restoring and re-running yields the same stitched stream.
#[test]
fn streaming_world_snapshots_capture_arrival_cursor() {
    let (_, base_events, dropped) = streaming_world().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0);
    let golden = tail(&base_events);

    let recorder = FlightRecorder::new(RECORDER_CAP);
    let mut world = streaming_world().with_telemetry(Box::new(recorder.clone()));
    // Step until roughly half the stream has been emitted, then fork.
    let mark = (base_events.len() / 2) as u64;
    while world.telemetry_cursor().map_or(0, |(_, seq)| seq) < mark {
        assert!(world.step(), "stream ended before the fork point");
    }
    let snap = world.snapshot();
    let at = usize::try_from(world.telemetry_cursor().map_or(0, |(_, seq)| seq)).unwrap();
    world.run_to_end();
    world.finalize_mut();
    assert_eq!(tail(&recorder.events()), golden, "driven run must match");

    world.restore(&snap);
    let fork_rec = FlightRecorder::new(RECORDER_CAP);
    world.swap_recorder(Box::new(fork_rec.clone()));
    world.run_to_end();
    world.finalize_mut();

    let mut stitched = recorder.events()[..at].to_vec();
    stitched.extend(fork_rec.events());
    assert_eq!(
        tail(&stitched),
        golden,
        "restored arrival stream must continue bit-identically"
    );
}
