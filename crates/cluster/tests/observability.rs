//! Observability golden pins: span-tree reconstruction, Perfetto export,
//! zero-cost-when-disabled metrics, and exact critical-path reconciliation.
//!
//! The span forest is derived *purely* from the recorded event stream, so
//! as long as the stream goldens in `stream_golden.rs` hold, the span
//! goldens here must hold too — a change in either set means behavior
//! (or the derivation) changed, and the constants must be re-captured
//! with `print_observability_hashes` (`cargo test -p ignem-cluster
//! --test observability -- --ignored --nocapture`) in the same commit.

mod common;

use common::{chaos_world_304, chaos_world_crash_14, default_world, RECORDER_CAP};
use ignem_cluster::explain::{reconcile_critical_path, TelemetryReport};
use ignem_cluster::metrics::RunMetrics;
use ignem_cluster::prelude::*;
use ignem_cluster::sanitizer::hash_chain;
use ignem_simcore::metrics::{MetricsRegistry, MetricsReport};
use ignem_simcore::perfetto;
use ignem_simcore::span::SpanForest;
use ignem_simcore::telemetry::{EventRecord, FlightRecorder};
use ignem_simcore::time::SimDuration;

/// FNV-1a over a byte string; the same primitive the sanitizer's chain
/// hash uses, applied here to the canonical span/trace text forms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Records a world and returns its full untruncated stream plus metrics.
fn record(build: fn() -> World) -> (RunMetrics, Vec<EventRecord>) {
    let (metrics, events, dropped) = build().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0, "recorder must hold the whole stream");
    (metrics, events)
}

/// Records a metrics-enabled world: same stream, plus a windowed report.
fn record_observed(
    build: fn() -> World,
    window: SimDuration,
) -> (RunMetrics, Vec<EventRecord>, MetricsReport) {
    let registry = MetricsRegistry::new(window);
    let world = build().with_metrics(registry.clone());
    let recorder = FlightRecorder::new(RECORDER_CAP);
    let metrics = world.with_telemetry(Box::new(recorder.clone())).run();
    assert_eq!(recorder.dropped(), 0, "recorder must hold the whole stream");
    let report = registry.finish(metrics.makespan);
    (metrics, recorder.events(), report)
}

/// Reduces a world's span forest to `(span count, canonical-text hash)`.
fn span_tail(build: fn() -> World) -> (usize, u64) {
    let (_metrics, events) = record(build);
    let forest = SpanForest::build(&events);
    (
        forest.spans.len(),
        fnv1a(forest.canonical_lines().as_bytes()),
    )
}

/// Captured when the span builder landed; pure functions of the pinned
/// event streams in `stream_golden.rs`. Re-captured when the span-id
/// disambiguator widened from two to four bits (the ids — and hence the
/// canonical text — shift, while the event streams themselves are
/// untouched, which is why the `stream_golden.rs` pins did not move).
const DEFAULT_SPAN_GOLDEN: (usize, u64) = (51, 0xb44e_06fe_b262_52ed);
const CHAOS_304_SPAN_GOLDEN: (usize, u64) = (137, 0x2575_6d0c_553c_875c);
const CHAOS_CRASH_14_SPAN_GOLDEN: (usize, u64) = (156, 0x84ac_5bd4_fe27_323e);
/// Perfetto export of the chaos-304 run (spans + metric counter tracks).
const CHAOS_304_PERFETTO_GOLDEN: u64 = 0xc75b_96c7_d850_3037;

#[test]
fn default_world_span_forest_is_pinned() {
    assert_eq!(span_tail(default_world), DEFAULT_SPAN_GOLDEN);
}

#[test]
fn chaos_seed_304_span_forest_is_pinned() {
    assert_eq!(span_tail(chaos_world_304), CHAOS_304_SPAN_GOLDEN);
}

#[test]
fn chaos_crash_seed_14_span_forest_is_pinned() {
    assert_eq!(span_tail(chaos_world_crash_14), CHAOS_CRASH_14_SPAN_GOLDEN);
}

/// The same seed rebuilt from scratch must yield a bit-identical span
/// tree — the acceptance bar for `report --perfetto-out` reproducibility.
#[test]
fn span_trees_are_bit_identical_across_runs() {
    for build in [default_world, chaos_world_304, chaos_world_crash_14] {
        let a = SpanForest::build(&record(build).1).canonical_lines();
        let b = SpanForest::build(&record(build).1).canonical_lines();
        assert_eq!(a, b, "span tree must not vary across runs");
    }
}

#[test]
fn chaos_304_perfetto_export_is_pinned_and_valid() {
    let window = SimDuration::from_secs(10);
    let (_m, events, report) = record_observed(chaos_world_304, window);
    let forest = SpanForest::build(&events);
    let json = perfetto::export(&forest, Some(&report));

    // Shape: Chrome trace-event JSON object, integer-only timestamps.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}\n"));
    assert!(!json.contains('.'), "export must be integer-only");
    let balance = json.bytes().fold(0i64, |n, b| match b {
        b'{' => n + 1,
        b'}' => n - 1,
        _ => n,
    });
    assert_eq!(balance, 0, "braces must balance");

    // Reproducibility: a second run exports byte-identical JSON.
    let (_m2, events2, report2) = record_observed(chaos_world_304, window);
    let json2 = perfetto::export(&SpanForest::build(&events2), Some(&report2));
    assert_eq!(json, json2, "perfetto export must be deterministic");

    assert_eq!(fnv1a(json.as_bytes()), CHAOS_304_PERFETTO_GOLDEN);
}

/// Metrics collection must be an observer, never an actor: enabling the
/// registry must leave the event stream byte-identical and process the
/// same number of engine events as a metrics-off run.
#[test]
fn metrics_are_zero_cost_when_disabled_and_inert_when_enabled() {
    for build in [default_world, chaos_world_304, chaos_world_crash_14] {
        let (off_metrics, off_events) = record(build);
        let (on_metrics, on_events, report) = record_observed(build, SimDuration::from_secs(10));
        assert_eq!(off_events.len(), on_events.len());
        assert_eq!(
            hash_chain(&off_events).last(),
            hash_chain(&on_events).last(),
            "metrics must not perturb the event stream"
        );
        assert_eq!(off_metrics.events_processed, on_metrics.events_processed);
        assert!(
            !report.windows.is_empty(),
            "enabled registry must have observed at least one window"
        );
    }
    // And a disabled registry records nothing at all.
    let reg = MetricsRegistry::disabled();
    assert!(!reg.is_enabled());
    reg.counter_add("rpc_sent", 0, 1);
    let report = reg.finish(ignem_simcore::time::SimTime::ZERO);
    assert!(report.windows.is_empty());
    assert!(report.counter_totals.is_empty());
}

/// The span-based critical path must reconcile with the explainer's
/// lead-time decomposition and the run metrics by integer equality, on
/// every pinned seed.
#[test]
fn critical_path_reconciles_exactly_with_explainer() {
    for build in [default_world, chaos_world_304, chaos_world_crash_14] {
        let (metrics, events) = record(build);
        let report = TelemetryReport::from_events(&events);
        assert!(
            !report.lead_times.is_empty(),
            "explainer must decompose at least one job"
        );
        let path = SpanForest::build(&events).critical_path();
        reconcile_critical_path(&path, &report, &metrics)
            .expect("critical path must reconcile exactly");
    }
}

/// Prints the current values for updating the constants above.
#[test]
#[ignore = "manual helper: prints the golden values"]
fn print_observability_hashes() {
    let d = span_tail(default_world);
    let c = span_tail(chaos_world_304);
    let k = span_tail(chaos_world_crash_14);
    println!("DEFAULT_SPAN_GOLDEN: ({}, {:#018x})", d.0, d.1);
    println!("CHAOS_304_SPAN_GOLDEN: ({}, {:#018x})", c.0, c.1);
    println!("CHAOS_CRASH_14_SPAN_GOLDEN: ({}, {:#018x})", k.0, k.1);
    let window = SimDuration::from_secs(10);
    let (_m, events, report) = record_observed(chaos_world_304, window);
    let json = perfetto::export(&SpanForest::build(&events), Some(&report));
    println!(
        "CHAOS_304_PERFETTO_GOLDEN: {:#018x}",
        fnv1a(json.as_bytes())
    );
}
