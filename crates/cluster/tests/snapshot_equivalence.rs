//! Snapshot equivalence: pausing a world, snapshotting it, restoring the
//! snapshot and running to the end must be bit-identical to never pausing
//! at all — same event stream, same metrics fingerprint, same span forest
//! (and therefore the same Perfetto export, which is a pure function of
//! the events).
//!
//! The property is checked against the same three pinned streams the
//! golden-stream tests guard (fault-free default world, chaos seed 304,
//! crash seed 14), forking at every `STRIDE`-th emitted event, so any
//! state [`WorldSnapshot`] fails to capture — or captures too much of —
//! shows up as a stitched stream that drifts from the uninterrupted one.

mod common;

use common::{chaos_world_304, chaos_world_crash_14, default_world, RECORDER_CAP};
use ignem_cluster::chaos::fingerprint;
use ignem_cluster::prelude::*;
use ignem_cluster::sanitizer::hash_chain;
use ignem_simcore::span::SpanForest;
use ignem_simcore::telemetry::{EventRecord, FlightRecorder};

/// Fork at every 25th emitted event: dense enough to land forks inside
/// every phase of each pinned stream (planning, migration races, faults,
/// recovery, teardown) while keeping the suite fast.
const STRIDE: u64 = 25;

/// Duplicates the pinned constants from `stream_golden.rs` (module-private
/// there): the stitched snapshot-fork streams must hit the *same* pins as
/// the uninterrupted runs, not merely agree with a baseline computed in
/// this process.
const DEFAULT_WORLD_GOLDEN: (usize, u64) = (111, 0x464c_1a7d_d766_ced1);
const CHAOS_304_GOLDEN: (usize, u64) = (320, 0x2249_a012_16cb_e555);
const CHAOS_CRASH_14_GOLDEN: (usize, u64) = (342, 0xa7dd_79d6_004d_5787);

fn tail(events: &[EventRecord]) -> (usize, u64) {
    let chain = hash_chain(events);
    (events.len(), *chain.last().expect("non-empty stream"))
}

/// Runs `build()` uninterrupted for the baseline, then re-runs it taking
/// a snapshot every [`STRIDE`] emitted events, and for every snapshot
/// restores + runs to the end, asserting the stitched stream and the
/// fingerprint are bit-identical to the baseline (and to `golden`).
fn assert_snapshot_equivalent(build: fn() -> World, golden: (usize, u64)) {
    let (base_metrics, base_events, dropped) = build().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0, "recorder must hold the whole stream");
    assert_eq!(tail(&base_events), golden, "baseline must match the pin");
    let base_fp = fingerprint(&base_metrics);

    // One driven run captures all fork points.
    let recorder = FlightRecorder::new(RECORDER_CAP);
    let mut world = build().with_telemetry(Box::new(recorder.clone()));
    let mut snaps = vec![(0u64, world.snapshot())];
    let mut next_mark = STRIDE;
    while world.step() {
        let emitted = world.telemetry_cursor().map_or(0, |(_, seq)| seq);
        if emitted >= next_mark {
            snaps.push((emitted, world.snapshot()));
            next_mark = emitted + STRIDE;
        }
    }
    let driven_metrics = world.finalize_mut();
    assert_eq!(
        fingerprint(&driven_metrics),
        base_fp,
        "step-driving must not change behaviour"
    );
    let prefix_events = recorder.events();
    assert_eq!(
        tail(&prefix_events),
        golden,
        "driven run must match the pin"
    );
    assert!(snaps.len() >= 3, "stride must produce several fork points");

    for (emitted, snap) in &snaps {
        let at = usize::try_from(*emitted).unwrap();
        world.restore(snap);
        assert_eq!(world.telemetry_cursor().map(|(_, s)| s), Some(*emitted));
        let fork_rec = FlightRecorder::new(RECORDER_CAP);
        world.swap_recorder(Box::new(fork_rec.clone()));
        world.run_to_end();
        let fork_metrics = world.finalize_mut();

        let mut stitched = prefix_events[..at].to_vec();
        stitched.extend(fork_rec.events());
        assert_eq!(
            tail(&stitched),
            golden,
            "stream stitched at event {emitted} must be bit-identical"
        );
        assert_eq!(
            fingerprint(&fork_metrics),
            base_fp,
            "fingerprint after forking at event {emitted} must match"
        );
    }
}

#[test]
fn default_world_snapshot_forks_are_bit_identical() {
    assert_snapshot_equivalent(default_world, DEFAULT_WORLD_GOLDEN);
}

#[test]
fn chaos_304_snapshot_forks_are_bit_identical() {
    assert_snapshot_equivalent(chaos_world_304, CHAOS_304_GOLDEN);
}

#[test]
fn chaos_crash_14_snapshot_forks_are_bit_identical() {
    assert_snapshot_equivalent(chaos_world_crash_14, CHAOS_CRASH_14_GOLDEN);
}

/// The Perfetto/span claim: a stream stitched from a mid-run fork builds
/// the same span forest (canonical rendering) as the uninterrupted run —
/// the export is a pure function of the events, so equal canonical trees
/// mean equal traces.
#[test]
fn chaos_304_forked_span_forest_matches_uninterrupted() {
    let (_m, base_events, dropped) = chaos_world_304().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0);
    let base_lines = SpanForest::build(&base_events).canonical_lines();

    let recorder = FlightRecorder::new(RECORDER_CAP);
    let mut world = chaos_world_304().with_telemetry(Box::new(recorder.clone()));
    // Run roughly half the stream, snapshot, restore, finish.
    while world.telemetry_cursor().map_or(0, |(_, s)| s) < 160 && world.step() {}
    let snap = world.snapshot();
    let at = usize::try_from(world.telemetry_cursor().map_or(0, |(_, s)| s)).unwrap();
    world.restore(&snap);
    let fork_rec = FlightRecorder::new(RECORDER_CAP);
    world.swap_recorder(Box::new(fork_rec.clone()));
    world.run_to_end();
    world.finalize_mut();

    let mut stitched = recorder.events()[..at].to_vec();
    stitched.extend(fork_rec.events());
    let stitched_lines = SpanForest::build(&stitched).canonical_lines();
    assert_eq!(stitched_lines, base_lines, "span forests must match");
}

/// The sanitizer's forked re-check on a deterministic world: no
/// divergence, and the suffix re-simulated from the latest snapshot
/// reproduces run A's tail without re-running the prefix.
#[test]
fn forked_double_run_audits_suffix_without_replaying_prefix() {
    let forked = ignem_cluster::sanitizer::double_run_forked(default_world, RECORDER_CAP, 40);
    assert!(forked.run.is_deterministic(), "{}", forked.run.describe());
    assert!(forked.suffix_consistent, "forked suffix must match run A");
    assert!(forked.fork_at > 0, "a later snapshot must have been chosen");
    assert!(
        forked.fork_at + forked.resimulated == forked.run.events_a.len(),
        "prefix ({}) + resimulated ({}) must cover the stream ({})",
        forked.fork_at,
        forked.resimulated,
        forked.run.events_a.len()
    );
}
