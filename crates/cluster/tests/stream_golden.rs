//! Golden event-stream hashes: pin the exact telemetry streams of the
//! fault-free default world and chaos seed 304 across refactors.
//!
//! The sanitizer's double-run check proves a *single build* of the
//! simulator is internally deterministic; these constants additionally
//! prove that a refactor (like the BTreeMap → IdMap container overhaul)
//! did not change behavior at all: the FNV-1a hash chain over the
//! canonical event JSON must come out bit-identical to the stream the
//! BTreeMap-based simulator produced. If a PR changes these values it
//! changed simulated behavior, not just performance — that may be
//! intentional (new event types, schedule changes), but it must be a
//! conscious decision: rerun `print_stream_hashes` (`cargo test -p
//! ignem-cluster --test stream_golden -- --ignored --nocapture`) and
//! update the constants in the same commit that explains why.

mod common;

use common::{chaos_world_304, chaos_world_crash_14, default_world, RECORDER_CAP};
use ignem_cluster::prelude::*;
use ignem_cluster::sanitizer::hash_chain;

/// Records a world and reduces its stream to `(events, final chain hash)`.
fn stream_tail(build: fn() -> World) -> (usize, u64) {
    let (_metrics, events, dropped) = build().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0, "recorder must hold the whole stream");
    let chain = hash_chain(&events);
    (events.len(), *chain.last().expect("non-empty stream"))
}

/// Captured from the BTreeMap-based simulator before the IdMap container
/// overhaul (PR 5); the overhaul must reproduce them bit-for-bit.
const DEFAULT_WORLD_GOLDEN: (usize, u64) = (111, 0x464c_1a7d_d766_ced1);
const CHAOS_304_GOLDEN: (usize, u64) = (320, 0x2249_a012_16cb_e555);
/// Captured when the crash/recovery protocol landed: the canonical
/// crash-seed stream (crash → wipe → degrade → re-register → re-ignite).
const CHAOS_CRASH_14_GOLDEN: (usize, u64) = (342, 0xa7dd_79d6_004d_5787);

#[test]
fn default_world_stream_is_pinned() {
    assert_eq!(stream_tail(default_world), DEFAULT_WORLD_GOLDEN);
}

#[test]
fn chaos_seed_304_stream_is_pinned() {
    assert_eq!(stream_tail(chaos_world_304), CHAOS_304_GOLDEN);
}

#[test]
fn chaos_crash_seed_14_stream_is_pinned() {
    assert_eq!(stream_tail(chaos_world_crash_14), CHAOS_CRASH_14_GOLDEN);
}

/// Prints the current values for updating the constants above.
#[test]
#[ignore = "manual helper: prints the golden values"]
fn print_stream_hashes() {
    let d = stream_tail(default_world);
    let c = stream_tail(chaos_world_304);
    let k = stream_tail(chaos_world_crash_14);
    println!("DEFAULT_WORLD_GOLDEN: ({}, {:#018x})", d.0, d.1);
    println!("CHAOS_304_GOLDEN: ({}, {:#018x})", c.0, c.1);
    println!("CHAOS_CRASH_14_GOLDEN: ({}, {:#018x})", k.0, k.1);
}
