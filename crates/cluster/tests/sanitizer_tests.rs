//! Determinism sanitizer integration tests: double-run real worlds and
//! assert bit-identical event streams, then prove the bisector pinpoints
//! an injected divergence in a real recorded stream.

use ignem_cluster::chaos::{fingerprint, generate_faults, workload, ChaosConfig};
use ignem_cluster::prelude::*;
use ignem_cluster::sanitizer::{bisect_divergence, double_run};
use ignem_compute::job::{JobInput, JobSpec, SubmitOptions};
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimDuration;
use ignem_simcore::units::{MB, MIB};

const RECORDER_CAP: usize = 1 << 20;

fn default_world() -> World {
    let files: Vec<(String, u64)> = (0..4)
        .map(|i| (format!("/in/part-{i}"), 512 * MB / 4))
        .collect();
    let mut spec = JobSpec::new(
        "sanitizer-job",
        JobInput::DfsFiles(files.iter().map(|(p, _)| p.clone()).collect()),
    );
    spec.submit = SubmitOptions::with_migration();
    let plan = vec![PlannedJob::single(
        "sanitizer",
        SimDuration::from_secs(1),
        spec,
    )];
    World::new(
        ClusterConfig::default(),
        FsMode::Ignem,
        &files,
        plan,
        vec![],
    )
}

/// Mirrors `run_chaos_with`'s world construction so the sanitizer can
/// rebuild the same faulted world twice.
fn chaos_world(cfg: &ChaosConfig) -> World {
    let mut fault_rng = SimRng::new(cfg.seed ^ 0xC4A0_5EED);
    let faults = generate_faults(
        &mut fault_rng,
        cfg.nodes,
        ClusterConfig::default().dfs.replication,
        cfg.jobs,
        cfg.faults,
        cfg.crashes,
    );
    let mut cluster = ClusterConfig {
        nodes: cfg.nodes,
        seed: cfg.seed,
        rpc: cfg.rpc,
        ..ClusterConfig::default()
    };
    cluster.ignem.buffer_capacity = 512 * MIB;
    cluster.ignem.lease = cfg.lease;
    let (files, plans) = workload(cfg.jobs);
    World::new(cluster, FsMode::Ignem, &files, plans, faults)
}

#[test]
fn double_run_defaults_is_deterministic() {
    let result = double_run(default_world, RECORDER_CAP);
    assert!(
        !result.events_a.is_empty(),
        "expected a non-empty telemetry stream"
    );
    assert!(result.is_deterministic(), "{}", result.describe());
    assert_eq!(
        fingerprint(&result.metrics_a),
        fingerprint(&result.metrics_b)
    );
}

#[test]
fn double_run_chaos_seed_is_deterministic() {
    // Seed 304 is the schedule that once leaked references (fixed in the
    // epoch/lease PR) — a good stress of the faulted migration paths.
    let cfg = ChaosConfig {
        seed: 304,
        ..ChaosConfig::default()
    };
    let result = double_run(|| chaos_world(&cfg), RECORDER_CAP);
    assert!(
        !result.events_a.is_empty(),
        "expected a non-empty telemetry stream"
    );
    assert!(result.is_deterministic(), "{}", result.describe());
    assert_eq!(
        fingerprint(&result.metrics_a),
        fingerprint(&result.metrics_b)
    );
}

#[test]
fn double_run_crash_seed_is_deterministic() {
    // Seed 14 with crashes enabled exercises the full crash/recovery
    // protocol: wipe, NIC-down, fresh incarnation, lossy re-registration
    // with retries, block report, re-replication, and re-ignition.
    let cfg = ChaosConfig {
        seed: 14,
        crashes: 2,
        ..ChaosConfig::default()
    };
    let result = double_run(|| chaos_world(&cfg), RECORDER_CAP);
    assert!(
        !result.events_a.is_empty(),
        "expected a non-empty telemetry stream"
    );
    assert!(result.is_deterministic(), "{}", result.describe());
    assert_eq!(
        fingerprint(&result.metrics_a),
        fingerprint(&result.metrics_b)
    );
}

#[test]
fn injected_divergence_in_real_stream_bisects_to_exact_seq() {
    let (_, events, dropped) = default_world().run_recorded(RECORDER_CAP);
    assert_eq!(dropped, 0, "recorder must keep the whole run");
    assert!(events.len() > 10, "stream too short to bisect meaningfully");
    let inject_at = events.len() / 2;
    let mut tampered = events.clone();
    // Artificial divergence: shift the event's timestamp by one microsecond.
    tampered[inject_at].at += SimDuration::from_micros(1);
    let d = bisect_divergence(&events, &tampered).expect("tampered stream must diverge");
    assert_eq!(d.index, inject_at);
    assert_eq!(d.seq(), Some(events[inject_at].seq));
    let text = d.describe(&events[..d.common_len]);
    assert!(text.contains("divergence at event index"), "{text}");
}
