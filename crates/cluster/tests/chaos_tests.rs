//! Randomized chaos campaign: many seeded fault plans, seven invariants.
//!
//! Each run executes with per-event slave-consistency validation
//! (do-not-harm) and per-event residency-ledger reconciliation, then
//! checks the end-state invariants (leak-freedom, memory conservation,
//! completion of surviving plans, event-stream consistency from the
//! flight recorder, ledger conservation) and finally re-runs the
//! identical `(seed, fault plan)` to assert bit-identical metrics
//! (determinism).

use ignem_cluster::chaos::{
    minimize_faults, minimize_faults_replay_with_stats, minimize_faults_with_stats, run_chaos,
    run_chaos_with, ChaosConfig,
};
use ignem_cluster::experiment::{swim_files, swim_plan};
use ignem_cluster::explain::TelemetryReport;
use ignem_cluster::prelude::*;
use ignem_cluster::sanitizer::hash_chain;
use ignem_netsim::rpc::RpcConfig;
use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_simcore::units::{GB, MIB};
use ignem_workloads::swim::{SwimConfig, SwimTrace};

/// One full chaos check: run, invariants, then a second run for the
/// determinism fingerprint.
fn check_seed(cfg: ChaosConfig) {
    let first = run_chaos(&cfg);
    first.assert_invariants();
    let second = run_chaos(&cfg);
    assert_eq!(
        first.fingerprint, second.fingerprint,
        "nondeterministic run for seed {} (faults: {:?})",
        cfg.seed, first.faults
    );
}

#[test]
fn chaos_campaign_default_channel() {
    // 20 randomized fault plans over a mildly unreliable channel.
    for seed in 0..20 {
        check_seed(ChaosConfig {
            seed,
            ..ChaosConfig::default()
        });
    }
}

#[test]
fn chaos_campaign_heavy_loss() {
    // The acceptance scenario: 20% drop probability plus duplication, and
    // every surviving plan still completes on every seed.
    for seed in 100..108 {
        let cfg = ChaosConfig {
            seed,
            rpc: RpcConfig {
                drop_p: 0.2,
                dup_p: 0.15,
                jitter: SimDuration::from_millis(50),
            },
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);
        report.assert_invariants();
        // The channel must actually have been hostile, not vacuously clean.
        assert!(report.metrics.rpc.sent > 0, "no control-plane traffic");
    }
}

#[test]
fn heavy_loss_actually_drops_and_duplicates() {
    // Across the heavy-loss campaign the channel must exhibit both failure
    // modes; per-seed counts can be zero by chance, the aggregate cannot.
    let mut dropped = 0;
    let mut duplicated = 0;
    for seed in 100..108 {
        let cfg = ChaosConfig {
            seed,
            rpc: RpcConfig {
                drop_p: 0.2,
                dup_p: 0.15,
                jitter: SimDuration::from_millis(50),
            },
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);
        dropped += report.metrics.rpc.dropped;
        duplicated += report.metrics.rpc.duplicated;
    }
    assert!(dropped > 0, "drop_p=0.2 never dropped a message");
    assert!(duplicated > 0, "dup_p=0.15 never duplicated a message");
}

#[test]
fn swim_completes_under_heavy_loss_and_duplication() {
    // The acceptance scenario on the paper's own workload: a (scaled-down)
    // SWIM trace over a 20%-drop + duplicating control plane. Every job
    // must complete, references and the migration buffer must drain.
    let swim = SwimConfig {
        jobs: 40,
        total_input: 8 * GB,
        ..SwimConfig::default()
    };
    let trace = SwimTrace::generate(&swim, &mut SimRng::new(2018));
    let cfg = ClusterConfig {
        rpc: RpcConfig {
            drop_p: 0.2,
            dup_p: 0.15,
            jitter: SimDuration::from_millis(50),
        },
        ..ClusterConfig::default()
    };
    let files = swim_files(&trace);
    let plans = swim_plan(&trace, true);
    let total = plans.len();
    let m = World::new(cfg, FsMode::Ignem, &files, plans, vec![])
        .with_validation()
        .run();
    assert_eq!(m.plans.len(), total, "a SWIM job failed to complete");
    assert_eq!(m.leaked_job_refs, 0, "reference lists leaked");
    assert_eq!(m.final_migrated_bytes, 0, "migration buffer leaked");
    assert!(m.rpc.dropped > 0, "channel never dropped");
    assert!(m.rpc.duplicated > 0, "channel never duplicated");
    assert!(m.master_stats.retries > 0, "no retransmissions happened");
}

#[test]
fn chaos_without_faults_is_clean() {
    // Zero faults over an unreliable channel: retries mask every loss and
    // all plans complete.
    let cfg = ChaosConfig {
        seed: 42,
        faults: 0,
        rpc: RpcConfig {
            drop_p: 0.2,
            dup_p: 0.15,
            jitter: SimDuration::from_millis(50),
        },
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg);
    assert!(report.faults.is_empty());
    report.assert_invariants();
    assert_eq!(report.metrics.plans.len(), report.total_plans);
}

#[test]
fn chaos_reliable_channel_many_faults() {
    // Dense fault plans over a perfectly reliable channel isolate the
    // fault-handling paths from the retry machinery.
    for seed in 200..206 {
        check_seed(ChaosConfig {
            seed,
            faults: 6,
            rpc: RpcConfig::default(),
            ..ChaosConfig::default()
        });
    }
}

#[test]
fn chaos_campaign_with_crashes() {
    // 20 randomized fault plans, each with two extra NodeCrash draws on
    // top of the default palette: the full crash/recovery protocol runs
    // under every other fault class, and all eight invariants (including
    // recovery convergence) plus the determinism fingerprint must hold.
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let mut reports = 0u64;
    for seed in 0..20 {
        let cfg = ChaosConfig {
            seed,
            crashes: 2,
            ..ChaosConfig::default()
        };
        check_seed(cfg.clone());
        let m = run_chaos(&cfg).metrics;
        crashes += m.crashes;
        restarts += m.restarts;
        reports += m.block_reports;
        assert_eq!(m.recovery, None, "seed {seed} did not converge");
    }
    // The campaign must have actually crashed machines, not vacuously
    // passed; every crash that landed recovered with a block report.
    assert!(crashes > 0, "no crash landed across the campaign");
    assert_eq!(restarts, crashes);
    assert_eq!(reports, crashes);
}

/// Pinned crash-recovery regression (seed 14, two crash draws): node 2
/// crashes at ~12.4s while holding a migrated RAM replica; the second
/// crash draw hits it while still dark and must be a no-op. The durable
/// block survives on disk, a read degrades to a surviving replica
/// (`LostToCrash` in the explainer), and after restart the node
/// re-registers under a fresh incarnation, reports its blocks, and the
/// still-live job re-ignites its migration.
#[test]
fn crash_recovery_pinned_regression() {
    use ignem_cluster::explain::LossCause;

    let cfg = ChaosConfig {
        seed: 14,
        crashes: 2,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg);
    report.assert_invariants();
    let m = &report.metrics;
    // Two crash faults drawn, one landed: the second found the node dark.
    let drawn = report
        .faults
        .iter()
        .filter(|(_, f)| matches!(f, Fault::NodeCrash(..)))
        .count();
    assert_eq!(drawn, 2);
    assert_eq!(m.crashes, 1);
    // The full recovery loop ran exactly once and converged.
    assert_eq!(m.restarts, 1);
    assert_eq!(m.block_reports, 1);
    assert_eq!(m.master_stats.registrations, 1);
    assert_eq!(m.recovery, None);
    // Re-ignition: a job that had migrated blocks on the crashed node got
    // its migration re-issued after the block report.
    assert_eq!(m.reignited_jobs, 1);
    // The crash cost RAM replicas but no durable data: reads mid-crash
    // degraded to disk, witnessed by the explainer's crash verdict.
    assert_eq!(report.events_dropped, 0);
    let explained = TelemetryReport::from_events(&report.events);
    assert_eq!(explained.lost_with(LossCause::LostToCrash), 1);
    // Re-ignition lead times were witnessed end to end: registration
    // accepted and the first migration back on the rebooted node.
    assert_eq!(explained.reignitions.len(), 1);
    let lead = explained.reignitions[0];
    assert_eq!(lead.node, 2);
    assert!(lead.register_lead.is_some(), "registration never witnessed");
    assert!(lead.remigrate_lead.is_some(), "re-ignition never witnessed");
    // No invariant hides behind truncation: the ledger balanced and no
    // reference outlived the crash.
    assert_eq!(m.leaked_job_refs, 0);
    assert_eq!(m.final_migrated_bytes, 0);
}

#[test]
fn chaos_event_stream_is_consistent() {
    // Invariant 6 in isolation, on fresh seeds: every run's flight
    // recorder keeps the whole stream, sequence numbers strictly
    // increase, and every completion/waste/cancellation pairs with an
    // earlier start.
    for seed in 305..311 {
        let report = run_chaos(&ChaosConfig {
            seed,
            ..ChaosConfig::default()
        });
        report.assert_invariants();
        assert_eq!(report.events_dropped, 0, "flight recorder truncated");
        assert!(!report.events.is_empty(), "no events recorded");
        assert!(
            report.events.windows(2).all(|w| w[0].seq < w[1].seq),
            "sequence numbers must strictly increase"
        );
        report.assert_event_stream_consistent();
    }
}

/// The seed-304 partition race, pre-fix: job 3's migrate batch for block
/// 15 → node 0 is cut by a control-plane partition and keeps retrying
/// with backoff; the job completes and its evict is acked *before* the
/// migrate ever lands. With `unfinished_plans == 0` and no interest the
/// cleanup sweep stops rescheduling, so when the retransmission finally
/// delivers, the reference it creates for the now-dead job is never
/// reclaimed. The epoch/lease lifecycle closes exactly this gap.
#[test]
fn seed_304_is_leak_free_with_leases() {
    let cfg = ChaosConfig {
        seed: 304,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg);
    report.assert_invariants();
    // The fix must have actually exercised the lease path: the orphaned
    // reference expired instead of lingering.
    assert_eq!(report.metrics.slave_stats.lease_expiries, 1);
    assert_eq!(report.metrics.leaked_job_refs, 0);
    assert_eq!(report.metrics.final_migrated_bytes, 0);
    // Determinism with the lease machinery engaged.
    assert_eq!(report.fingerprint, run_chaos(&cfg).fingerprint);
}

/// Regression pin for the pre-fix leak: with leasing disabled the legacy
/// cleanup machinery still loses the seed-304 race, and the minimizer
/// shrinks the three-fault plan to the single partition that causes it.
#[test]
fn minimizer_reproduces_legacy_seed_304_leak() {
    let legacy = ChaosConfig {
        seed: 304,
        lease: None,
        ..ChaosConfig::default()
    };
    let broken = run_chaos(&legacy);
    assert_eq!(broken.metrics.leaked_job_refs, 1, "pre-fix leak vanished");
    assert_eq!(broken.metrics.final_migrated_bytes, 64 * MIB);

    let min = minimize_faults(&legacy).expect("legacy seed 304 must fail");
    assert!(
        min.violation.contains("reference leak: 1 entries"),
        "unexpected violation: {}",
        min.violation
    );
    // 1-minimal: only the control-plane partition is needed.
    assert_eq!(
        min.faults,
        vec![(
            SimTime::from_micros(15_241_402),
            Fault::Partition(
                vec![NodeId(0), NodeId(2)],
                SimDuration::from_micros(9_983_093)
            ),
        )]
    );
    // The explainer names the leaked reference in the describe() output.
    let leaks = TelemetryReport::from_events(&min.report.events).leaked;
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].node, 0);
    assert_eq!(leaks[0].bytes, 64 * MIB);
    assert_eq!(leaks[0].jobs, vec![3]);
    let desc = min.describe();
    assert!(desc.contains("leaked_reference"), "{desc}");
    assert!(desc.contains("Partition"), "{desc}");

    // Replaying the minimal schedule alone still reproduces the leak.
    let replay = run_chaos_with(&legacy, min.faults.clone());
    assert_eq!(replay.metrics.leaked_job_refs, 1);
}

/// The snapshot-forked minimizer and the full-replay baseline must agree
/// on everything a bug report contains — minimal schedule, violation,
/// fingerprint, event stream — while the fork simulates strictly fewer
/// events. (`RunMetrics::events_processed` is deliberately *not* compared:
/// a suppressed fault's `Inject` still pops inertly on the forked path,
/// so the counter differs by the number of dropped faults.)
#[test]
fn forked_minimizer_matches_replay_minimizer_on_seed_304() {
    let legacy = ChaosConfig {
        seed: 304,
        lease: None,
        ..ChaosConfig::default()
    };
    let (forked, fork_stats) = minimize_faults_with_stats(&legacy);
    let (replayed, replay_stats) = minimize_faults_replay_with_stats(&legacy);
    let forked = forked.expect("legacy seed 304 must fail");
    let replayed = replayed.expect("legacy seed 304 must fail");

    assert_eq!(forked.faults, replayed.faults, "minimal schedules differ");
    assert_eq!(forked.violation, replayed.violation);
    assert_eq!(forked.report.fingerprint, replayed.report.fingerprint);
    assert_eq!(forked.report.faults, replayed.report.faults);
    assert_eq!(
        hash_chain(&forked.report.events).last(),
        hash_chain(&replayed.report.events).last(),
        "final failing runs must record identical event streams"
    );

    // Same probes, strictly fewer simulated events: every forked probe
    // skips its already-simulated prefix.
    assert_eq!(
        fork_stats.probes, replay_stats.probes,
        "probe order differs"
    );
    assert!(
        fork_stats.simulated_events < replay_stats.simulated_events,
        "forking must simulate fewer events ({} vs {})",
        fork_stats.simulated_events,
        replay_stats.simulated_events
    );
}

/// A replayed full schedule is bit-identical to the generated run: the
/// explicit-schedule path shares every code path with the seeded one.
#[test]
fn explicit_schedule_replay_is_bit_identical() {
    let cfg = ChaosConfig {
        seed: 11,
        ..ChaosConfig::default()
    };
    let generated = run_chaos(&cfg);
    let replayed = run_chaos_with(&cfg, generated.faults.clone());
    assert_eq!(generated.fingerprint, replayed.fingerprint);
}

#[test]
fn duplicate_delivery_never_double_applies() {
    // A duplication-only channel (nothing dropped, plenty duplicated):
    // dedup on the slave must absorb every duplicate, so the run stays
    // leak-free, conserves memory and completes everything.
    let cfg = ChaosConfig {
        seed: 7,
        faults: 0,
        rpc: RpcConfig {
            drop_p: 0.0,
            dup_p: 0.5,
            jitter: SimDuration::from_millis(10),
        },
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg);
    report.assert_invariants();
    assert!(
        report.metrics.rpc.duplicated > 0,
        "dup_p=0.5 never duplicated"
    );
    assert_eq!(report.metrics.plans.len(), report.total_plans);
}
