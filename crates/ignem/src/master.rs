//! The Ignem master.
//!
//! Lives inside the NameNode in the paper's implementation. It is the
//! *what* of migration: clients send it file lists, it maps files to blocks
//! using the file system's metadata, chooses **one random replica** per
//! block to migrate (§III-A2 — network bandwidth makes extra copies
//! wasteful), and batches per-slave command lists (§III-A6). Slaves decide
//! *how* and *when*.
//!
//! The master also remembers, per job, which slaves received migration
//! commands so that the job's eventual evict instruction is routed to
//! exactly those slaves. This state is soft: on master failure it is lost,
//! and slaves purge their reference lists to stay consistent with the new
//! master's empty state (§III-A5).

use ignem_dfs::error::DfsError;
use ignem_dfs::namenode::NameNode;
use ignem_netsim::rpc::{Epoch, Incarnation};
use ignem_netsim::NodeId;
use ignem_simcore::idmap::IdMap;
use ignem_simcore::metrics::MetricsRegistry;
use ignem_simcore::rng::SimRng;
use ignem_simcore::telemetry::{Event, Telemetry};
use ignem_simcore::time::SimDuration;

#[cfg(test)]
use crate::command::EvictionMode;
use crate::command::{JobId, MigrateCommand, MigrateRequest, RpcPayload, SeqNo, SlaveBatch};

/// Retry policy for unacknowledged master → slave sends: a fixed initial
/// ack timeout, escalated exponentially per attempt and capped, with a
/// bounded number of attempts before the master gives up (the slave is
/// presumed dead; its references will be reclaimed by liveness cleanup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Time to wait for the first acknowledgement.
    pub ack_timeout: SimDuration,
    /// Multiplier applied to the timeout after each unacknowledged attempt.
    pub backoff: f64,
    /// Upper bound on the escalated timeout.
    pub max_timeout: SimDuration,
    /// Total delivery attempts (first send included) before giving up.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            ack_timeout: SimDuration::from_secs(1),
            backoff: 2.0,
            max_timeout: SimDuration::from_secs(30),
            max_attempts: 8,
        }
    }
}

impl RetryConfig {
    /// The ack timeout for the given attempt number (1-based), escalated
    /// exponentially and capped at [`max_timeout`](Self::max_timeout).
    pub fn timeout_for(&self, attempt: u32) -> SimDuration {
        let base = self.ack_timeout.as_secs_f64();
        let cap = self.max_timeout.as_secs_f64();
        let secs = (base * self.backoff.powi(attempt.saturating_sub(1) as i32)).min(cap);
        SimDuration::from_secs_f64(secs)
    }
}

/// Master-side configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterConfig {
    /// How many replicas of each block to migrate. The paper chooses **1**
    /// (§III-A2): extra copies waste disk bandwidth and memory because the
    /// network is fast enough to read a remote migrated replica. Higher
    /// values exist for the ablation benches.
    pub replicas_to_migrate: usize,
    /// Retransmission policy for sends over the unreliable channel.
    pub retry: RetryConfig,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            replicas_to_migrate: 1,
            retry: RetryConfig::default(),
        }
    }
}

/// Counters the master keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Migrate requests received.
    pub migrate_requests: u64,
    /// Individual block migration commands issued.
    pub blocks_assigned: u64,
    /// Evict requests received.
    pub evict_requests: u64,
    /// Evict requests for jobs the master had no state for (e.g. after a
    /// master failure).
    pub unknown_evicts: u64,
    /// Acknowledgements received for outstanding sends.
    pub acks: u64,
    /// Retransmissions after an ack timeout.
    pub retries: u64,
    /// Sends abandoned after exhausting every attempt.
    pub gave_up: u64,
    /// Slave re-registrations absorbed after crash/restart cycles.
    pub registrations: u64,
}

#[derive(Debug, Clone, Default)]
struct JobRecord {
    /// Slaves that received at least one migrate command for this job.
    slaves: Vec<NodeId>,
}

/// The Ignem master (see module docs).
///
/// ```
/// use ignem_core::command::{EvictionMode, JobId, MigrateRequest};
/// use ignem_core::master::IgnemMaster;
/// use ignem_dfs::namenode::{DfsConfig, NameNode};
/// use ignem_netsim::NodeId;
/// use ignem_simcore::{rng::SimRng, time::SimTime};
///
/// let mut nn = NameNode::new(DfsConfig::default());
/// for n in 0..4 { nn.register_node(NodeId(n)); }
/// let mut rng = SimRng::new(1);
/// nn.create_file("/in", 256 << 20, &mut rng)?;
///
/// let mut master = IgnemMaster::new();
/// let batches = master.handle_migrate(
///     &MigrateRequest {
///         job: JobId(1),
///         files: vec!["/in".into()],
///         mode: EvictionMode::Explicit,
///         submitted: SimTime::ZERO,
///     },
///     &nn,
///     &mut rng,
/// )?;
/// let total: usize = batches.iter().map(|b| b.migrates.len()).sum();
/// assert_eq!(total, 4); // one command per 64 MiB block, one replica each
/// # Ok::<(), ignem_dfs::error::DfsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IgnemMaster {
    config: MasterConfig,
    jobs: IdMap<JobId, JobRecord>,
    stats: MasterStats,
    /// Current master incarnation, stamped onto every outgoing batch and
    /// liveness reply. Bumped by [`fail`](Self::fail) so commands issued
    /// before a failover are recognizably stale when they finally arrive.
    epoch: Epoch,
    /// Next sequence number; monotonic for the master's whole lifetime,
    /// surviving [`fail`](Self::fail), so a timeout event scheduled for a
    /// pre-failure send can never alias a post-restart send.
    next_seq: u64,
    /// Sends awaiting acknowledgement.
    outbox: IdMap<SeqNo, PendingSend>,
    /// The incarnation the master believes each slave is running, updated
    /// by [`handle_register`](Self::handle_register). Nodes never seen to
    /// restart implicitly run [`Incarnation::FIRST`]. Unlike the job
    /// records this knowledge survives [`fail`](Self::fail): a real
    /// failover recovers it from the slaves' re-registration handshake,
    /// and forgetting it would make the new master stamp every send with
    /// an incarnation the restarted slaves already fenced off.
    incarnations: IdMap<NodeId, Incarnation>,
    /// Typed event emission (disabled by default).
    telemetry: Telemetry,
    /// Sim-time metrics (disabled by default).
    metrics: MetricsRegistry,
}

impl Default for IgnemMaster {
    fn default() -> Self {
        IgnemMaster {
            config: MasterConfig::default(),
            jobs: IdMap::new(),
            stats: MasterStats::default(),
            epoch: Epoch::FIRST,
            next_seq: 0,
            outbox: IdMap::new(),
            incarnations: IdMap::new(),
            telemetry: Telemetry::default(),
            metrics: MetricsRegistry::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct PendingSend {
    to: NodeId,
    payload: RpcPayload,
    /// The epoch the send was registered under. Retransmissions carry the
    /// *original* stamp: a failover clears the outbox, so a pending send
    /// always belongs to the current incarnation, but the stamp is stored
    /// rather than re-read so the invariant is structural.
    epoch: Epoch,
    /// The slave incarnation the send was addressed to. Like the epoch
    /// stamp this travels with retransmissions unchanged: a registration
    /// purges the dead incarnation's outbox entries, so a surviving entry
    /// is always addressed to the believed-current boot, structurally.
    incarnation: Incarnation,
    /// Delivery attempts made so far (1 after the initial send).
    attempt: u32,
}

/// What the master decides when an ack timeout fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryDecision {
    /// The send was already acknowledged (or the master restarted); the
    /// timeout is stale and nothing happens.
    Settled,
    /// Retransmit `payload` to `to` now and arm a new timeout.
    Retry {
        /// Destination slave.
        to: NodeId,
        /// Payload to retransmit.
        payload: RpcPayload,
        /// The epoch the original send was stamped with.
        epoch: Epoch,
        /// The slave incarnation the original send was addressed to.
        incarnation: Incarnation,
        /// Timeout to arm for this attempt (escalated, capped).
        next_timeout: SimDuration,
    },
    /// Every attempt is exhausted; the slave is presumed unreachable. Any
    /// state it holds for the affected job is reclaimed later by liveness
    /// cleanup, not by further retransmission.
    GiveUp {
        /// The unreachable slave.
        to: NodeId,
    },
}

impl IgnemMaster {
    /// Creates a master with empty state and the paper's defaults.
    pub fn new() -> Self {
        IgnemMaster::default()
    }

    /// Creates a master with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas_to_migrate` is zero.
    pub fn with_config(config: MasterConfig) -> Self {
        assert!(config.replicas_to_migrate > 0, "zero replicas to migrate");
        IgnemMaster {
            config,
            ..IgnemMaster::default()
        }
    }

    /// Installs a telemetry handle; the master then emits
    /// [`Event::MigrationAssigned`] and the retransmission events
    /// ([`Event::RpcRetried`] / [`Event::RpcAcked`] / [`Event::RpcGaveUp`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a sim-time metrics handle; the master then counts assigned
    /// migration commands and histograms retransmission attempt depth.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Activity counters.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Number of jobs with live migration state.
    pub fn tracked_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The current master incarnation (stamped onto every outgoing send).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The incarnation the master believes `node` is running (and stamps
    /// onto sends addressed there). [`Incarnation::FIRST`] until the node
    /// ever re-registers.
    pub fn slave_incarnation(&self, node: NodeId) -> Incarnation {
        self.incarnations
            .get(&node)
            .copied()
            .unwrap_or(Incarnation::FIRST)
    }

    /// Absorbs a restarted slave's registration: records the fresh
    /// incarnation, purges every outbox entry addressed to the dead one
    /// (their pending timeouts then settle as stale), and forgets the node
    /// in every job record — any reference-list state the dead incarnation
    /// held is gone, so routing that job's eventual evict there would be
    /// pointless. Duplicate or out-of-order deliveries of an
    /// already-absorbed registration are ignored (returns `false`).
    pub fn handle_register(&mut self, node: NodeId, incarnation: Incarnation) -> bool {
        if incarnation <= self.slave_incarnation(node) {
            return false;
        }
        self.incarnations.insert(node, incarnation);
        self.stats.registrations += 1;
        let stale: Vec<SeqNo> = self
            .outbox
            .iter()
            .filter(|(_, p)| p.to == node)
            .map(|(seq, _)| seq)
            .collect();
        for seq in stale {
            self.outbox.remove(&seq);
        }
        for record in self.jobs.values_mut() {
            record.slaves.retain(|&s| s != node);
        }
        self.telemetry.emit(|| Event::SlaveRegistered {
            node: node.0,
            incarnation: incarnation.0,
        });
        true
    }

    /// Handles a client migrate request: resolves files to blocks, picks one
    /// random **alive** replica per block, and returns per-slave batches.
    /// Blocks with no alive replica are skipped (the file system will
    /// re-replicate them eventually; migration is best-effort).
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if any requested file does not exist; no
    /// commands are issued in that case.
    pub fn handle_migrate(
        &mut self,
        req: &MigrateRequest,
        namenode: &NameNode,
        rng: &mut SimRng,
    ) -> Result<Vec<SlaveBatch>, DfsError> {
        self.stats.migrate_requests += 1;
        // Resolve everything first so the request is all-or-nothing.
        let mut blocks = Vec::new();
        for path in &req.files {
            blocks.extend(namenode.file_blocks(path)?);
        }
        let job_input_bytes: u64 = blocks.iter().map(|b| b.bytes).sum();

        let mut batches: IdMap<NodeId, SlaveBatch> = IdMap::new();
        for info in blocks {
            if info.bytes == 0 {
                continue;
            }
            let locations = namenode.locations(info.id)?;
            if locations.is_empty() {
                continue;
            }
            let mut candidates = locations.clone();
            rng.shuffle(&mut candidates);
            let k = self.config.replicas_to_migrate.max(1).min(candidates.len());
            let epoch = self.epoch;
            for &target in &candidates[..k] {
                batches
                    .entry_or_insert_with(target, || SlaveBatch::new(target, epoch))
                    // lint: allow(Q01, reason = "batch is consumed when the RPC is sent; lives one scheduling round")
                    .migrates
                    .push(MigrateCommand {
                        job: req.job,
                        block: info.id,
                        bytes: info.bytes,
                        mode: req.mode,
                        job_input_bytes,
                        submitted: req.submitted,
                    });
                self.stats.blocks_assigned += 1;
                self.metrics
                    .counter_add("migrations_assigned", target.0 as u64, 1);
                self.telemetry.emit(|| Event::MigrationAssigned {
                    job: req.job.0,
                    block: info.id.0,
                    node: target.0,
                    bytes: info.bytes,
                });
            }
        }

        let record = self.jobs.entry_or_default(req.job);
        for slave in batches.keys() {
            if !record.slaves.contains(&slave) {
                record.slaves.push(slave);
            }
        }
        Ok(batches.into_values().collect())
    }

    /// Handles a job-completion evict request, returning evict batches for
    /// every slave that ever received a migrate command for the job.
    /// Unknown jobs (e.g. after master failover) produce no batches.
    pub fn handle_evict(&mut self, job: JobId) -> Vec<SlaveBatch> {
        self.stats.evict_requests += 1;
        let Some(record) = self.jobs.remove(&job) else {
            self.stats.unknown_evicts += 1;
            return Vec::new();
        };
        record
            .slaves
            .into_iter()
            .map(|slave| {
                let mut b = SlaveBatch::new(slave, self.epoch);
                b.evicts.push(job);
                b
            })
            .collect()
    }

    /// Registers a send over the unreliable channel in the retransmission
    /// outbox. Returns the sequence number stamped on the message and the
    /// ack timeout the caller must arm for this first attempt.
    pub fn register_send(&mut self, to: NodeId, payload: RpcPayload) -> (SeqNo, SimDuration) {
        let seq = SeqNo(self.next_seq);
        self.next_seq += 1;
        self.outbox.insert(
            seq,
            PendingSend {
                to,
                payload,
                epoch: self.epoch,
                incarnation: self.slave_incarnation(to),
                attempt: 1,
            },
        );
        (seq, self.config.retry.timeout_for(1))
    }

    /// Records an acknowledgement. Duplicate and stale acks (e.g. a
    /// retransmission acked twice, or an ack arriving after a master
    /// restart) are ignored.
    pub fn on_ack(&mut self, seq: SeqNo) {
        if self.outbox.remove(&seq).is_some() {
            self.stats.acks += 1;
            self.telemetry.emit(|| Event::RpcAcked { seq: seq.0 });
        }
    }

    /// Handles an ack-timeout firing for `seq` and decides what to do: the
    /// send may have been settled in the meantime, be retransmitted with an
    /// escalated timeout, or be abandoned after
    /// [`RetryConfig::max_attempts`] attempts.
    pub fn on_timeout(&mut self, seq: SeqNo) -> RetryDecision {
        let Some(pending) = self.outbox.get_mut(&seq) else {
            return RetryDecision::Settled;
        };
        if pending.attempt >= self.config.retry.max_attempts {
            let Some(pending) = self.outbox.remove(&seq) else {
                // Unreachable: the get_mut above proved the entry exists and
                // nothing ran in between. Treat as settled rather than
                // panicking on a fault path (lint rule P01).
                debug_assert!(false, "outbox entry vanished between probe and remove");
                return RetryDecision::Settled;
            };
            self.stats.gave_up += 1;
            self.telemetry.emit(|| Event::RpcGaveUp {
                seq: seq.0,
                node: pending.to.0,
            });
            return RetryDecision::GiveUp { to: pending.to };
        }
        pending.attempt += 1;
        self.stats.retries += 1;
        let (node, attempt) = (pending.to.0, pending.attempt);
        self.metrics
            .observe("rpc_retry_attempt", node as u64, attempt as u64);
        self.telemetry.emit(|| Event::RpcRetried {
            seq: seq.0,
            node,
            attempt,
        });
        RetryDecision::Retry {
            to: pending.to,
            payload: pending.payload.clone(),
            epoch: pending.epoch,
            incarnation: pending.incarnation,
            next_timeout: self.config.retry.timeout_for(pending.attempt),
        }
    }

    /// Number of sends still awaiting acknowledgement.
    pub fn pending_sends(&self) -> usize {
        self.outbox.len()
    }

    /// `(seq, destination, attempts)` of every send awaiting an ack, in
    /// ascending sequence order — the in-flight retransmission state the
    /// time-travel debugger renders.
    pub fn pending_send_summaries(&self) -> Vec<(SeqNo, NodeId, u32)> {
        self.outbox
            .iter()
            .map(|(seq, p)| (seq, p.to, p.attempt))
            .collect()
    }

    /// Simulates a master crash + restart: all soft state is lost. The
    /// cluster layer must subsequently call each slave's
    /// [`on_master_failed`](crate::slave::IgnemSlave::on_master_failed) so
    /// slaves purge reference lists and stay consistent (§III-A5). The
    /// outbox is dropped too (pre-failure timeouts then settle as stale),
    /// but `next_seq` keeps counting so restarted sends never reuse a
    /// sequence number, and the epoch is bumped so in-flight copies of
    /// pre-failure sends are recognizably stale wherever they land. The
    /// per-slave incarnation records survive (see the field docs): they
    /// model knowledge the failover handshake re-establishes.
    pub fn fail(&mut self) {
        self.jobs.clear();
        self.outbox.clear();
        self.epoch = self.epoch.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_dfs::namenode::DfsConfig;
    use ignem_simcore::time::SimTime;
    use ignem_simcore::units::MIB;

    fn setup(nodes: u32) -> (NameNode, SimRng) {
        let mut nn = NameNode::new(DfsConfig::default());
        for n in 0..nodes {
            nn.register_node(NodeId(n));
        }
        (nn, SimRng::new(3))
    }

    fn request(job: u64, files: Vec<&str>) -> MigrateRequest {
        MigrateRequest {
            job: JobId(job),
            files: files.into_iter().map(String::from).collect(),
            mode: EvictionMode::Explicit,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn one_replica_per_block() {
        let (mut nn, mut rng) = setup(8);
        nn.create_file("/f", 10 * 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        let total: usize = batches.iter().map(|b| b.migrates.len()).sum();
        assert_eq!(total, 10);
        // Every command targets a node that actually holds the replica.
        for b in &batches {
            for c in &b.migrates {
                assert!(nn.locations(c.block).unwrap().contains(&b.to));
            }
        }
        assert_eq!(m.stats().blocks_assigned, 10);
    }

    #[test]
    fn job_input_bytes_spans_all_files() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/a", 64 * MIB, &mut rng).unwrap();
        nn.create_file("/b", 32 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/a", "/b"]), &nn, &mut rng)
            .unwrap();
        for b in &batches {
            for c in &b.migrates {
                assert_eq!(c.job_input_bytes, 96 * MIB);
            }
        }
    }

    #[test]
    fn missing_file_fails_whole_request() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/a", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let err = m
            .handle_migrate(&request(1, vec!["/a", "/missing"]), &nn, &mut rng)
            .unwrap_err();
        assert_eq!(err, DfsError::FileNotFound("/missing".into()));
        // No state recorded for the failed request.
        assert_eq!(m.tracked_jobs(), 0);
    }

    #[test]
    fn evict_targets_only_involved_slaves() {
        let (mut nn, mut rng) = setup(8);
        nn.create_file("/f", 4 * 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        let migrate_slaves: Vec<NodeId> = batches.iter().map(|b| b.to).collect();
        let evicts = m.handle_evict(JobId(1));
        let evict_slaves: Vec<NodeId> = evicts.iter().map(|b| b.to).collect();
        assert_eq!(migrate_slaves, evict_slaves);
        assert!(evicts.iter().all(|b| b.evicts == vec![JobId(1)]));
        // Second evict is a no-op (job state removed).
        assert!(m.handle_evict(JobId(1)).is_empty());
        assert_eq!(m.stats().unknown_evicts, 1);
    }

    #[test]
    fn failure_clears_state() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/f", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        m.handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        assert_eq!(m.tracked_jobs(), 1);
        m.fail();
        assert_eq!(m.tracked_jobs(), 0);
        assert!(m.handle_evict(JobId(1)).is_empty());
    }

    #[test]
    fn dead_replica_holders_are_never_chosen() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/f", 20 * 64 * MIB, &mut rng).unwrap();
        nn.mark_dead(NodeId(0)).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        assert!(batches.iter().all(|b| b.to != NodeId(0)));
    }

    #[test]
    fn retry_timeout_escalates_and_caps() {
        let retry = RetryConfig::default();
        assert_eq!(retry.timeout_for(1), SimDuration::from_secs(1));
        assert_eq!(retry.timeout_for(2), SimDuration::from_secs(2));
        assert_eq!(retry.timeout_for(4), SimDuration::from_secs(8));
        // 2^9 = 512 s would exceed the cap.
        assert_eq!(retry.timeout_for(10), SimDuration::from_secs(30));
    }

    #[test]
    fn ack_settles_and_stale_timeouts_are_ignored() {
        let mut m = IgnemMaster::new();
        let (seq, first) = m.register_send(NodeId(2), RpcPayload::Evict(JobId(7)));
        assert_eq!(first, SimDuration::from_secs(1));
        assert_eq!(m.pending_sends(), 1);
        m.on_ack(seq);
        assert_eq!(m.pending_sends(), 0);
        assert_eq!(m.stats().acks, 1);
        // Duplicate ack and late timeout are both inert.
        m.on_ack(seq);
        assert_eq!(m.stats().acks, 1);
        assert_eq!(m.on_timeout(seq), RetryDecision::Settled);
        assert_eq!(m.stats().retries, 0);
    }

    #[test]
    fn timeouts_retry_then_give_up() {
        let mut m = IgnemMaster::with_config(MasterConfig {
            retry: RetryConfig {
                max_attempts: 3,
                ..RetryConfig::default()
            },
            ..MasterConfig::default()
        });
        let payload = RpcPayload::Evict(JobId(1));
        let (seq, _) = m.register_send(NodeId(5), payload.clone());
        assert_eq!(
            m.on_timeout(seq),
            RetryDecision::Retry {
                to: NodeId(5),
                payload: payload.clone(),
                epoch: Epoch::FIRST,
                incarnation: Incarnation::FIRST,
                next_timeout: SimDuration::from_secs(2),
            }
        );
        assert_eq!(
            m.on_timeout(seq),
            RetryDecision::Retry {
                to: NodeId(5),
                payload,
                epoch: Epoch::FIRST,
                incarnation: Incarnation::FIRST,
                next_timeout: SimDuration::from_secs(4),
            }
        );
        assert_eq!(m.on_timeout(seq), RetryDecision::GiveUp { to: NodeId(5) });
        assert_eq!(m.pending_sends(), 0);
        assert_eq!(m.stats().retries, 2);
        assert_eq!(m.stats().gave_up, 1);
        // Another stray timeout after give-up is stale.
        assert_eq!(m.on_timeout(seq), RetryDecision::Settled);
    }

    #[test]
    fn failure_clears_outbox_but_seq_stays_monotonic() {
        let mut m = IgnemMaster::new();
        let (seq0, _) = m.register_send(NodeId(1), RpcPayload::Evict(JobId(1)));
        m.fail();
        assert_eq!(m.pending_sends(), 0);
        assert_eq!(m.on_timeout(seq0), RetryDecision::Settled);
        let (seq1, _) = m.register_send(NodeId(1), RpcPayload::Evict(JobId(2)));
        assert!(seq1 > seq0, "sequence numbers must never be reused");
    }

    #[test]
    fn failure_bumps_epoch_and_batches_carry_it() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/f", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        assert_eq!(m.epoch(), Epoch::FIRST);
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        assert!(batches.iter().all(|b| b.epoch == Epoch::FIRST));
        m.fail();
        assert_eq!(m.epoch(), Epoch(2));
        let batches = m
            .handle_migrate(&request(2, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        assert!(batches.iter().all(|b| b.epoch == Epoch(2)));
        // A retransmission registered before the failure would have carried
        // the old stamp; one registered after carries the new one.
        let (seq, _) = m.register_send(NodeId(1), RpcPayload::Evict(JobId(2)));
        match m.on_timeout(seq) {
            RetryDecision::Retry { epoch, .. } => assert_eq!(epoch, Epoch(2)),
            other => panic!("expected retry, got {other:?}"),
        }
    }

    #[test]
    fn registration_purges_dead_incarnation_state() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/f", 4 * 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        let crashed = batches[0].to;
        let (seq, _) = m.register_send(crashed, RpcPayload::Evict(JobId(9)));
        let (other_seq, _) = m.register_send(NodeId(99), RpcPayload::Evict(JobId(9)));
        assert_eq!(m.slave_incarnation(crashed), Incarnation::FIRST);

        assert!(m.handle_register(crashed, Incarnation(2)));
        assert_eq!(m.slave_incarnation(crashed), Incarnation(2));
        assert_eq!(m.stats().registrations, 1);
        // Outbox entries addressed to the dead incarnation are purged;
        // their timeouts settle as stale. Unrelated sends survive.
        assert_eq!(m.on_timeout(seq), RetryDecision::Settled);
        assert!(matches!(
            m.on_timeout(other_seq),
            RetryDecision::Retry { .. }
        ));
        // The job's evict no longer targets the crashed node.
        assert!(m.handle_evict(JobId(1)).iter().all(|b| b.to != crashed));
        // Subsequent sends are stamped with the fresh incarnation.
        let (seq2, _) = m.register_send(crashed, RpcPayload::Evict(JobId(2)));
        match m.on_timeout(seq2) {
            RetryDecision::Retry { incarnation, .. } => {
                assert_eq!(incarnation, Incarnation(2));
            }
            other => panic!("expected retry, got {other:?}"),
        }
        // Duplicate and stale registrations are inert.
        assert!(!m.handle_register(crashed, Incarnation(2)));
        assert!(!m.handle_register(crashed, Incarnation::FIRST));
        assert_eq!(m.stats().registrations, 1);
    }

    #[test]
    fn incarnation_knowledge_survives_master_failure() {
        let mut m = IgnemMaster::new();
        assert!(m.handle_register(NodeId(3), Incarnation(4)));
        m.fail();
        assert_eq!(m.slave_incarnation(NodeId(3)), Incarnation(4));
    }

    #[test]
    fn repeated_migrate_extends_job_record() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/a", 64 * MIB, &mut rng).unwrap();
        nn.create_file("/b", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        m.handle_migrate(&request(1, vec!["/a"]), &nn, &mut rng)
            .unwrap();
        m.handle_migrate(&request(1, vec!["/b"]), &nn, &mut rng)
            .unwrap();
        assert_eq!(m.tracked_jobs(), 1);
        assert!(!m.handle_evict(JobId(1)).is_empty());
    }
}
