//! The Ignem master.
//!
//! Lives inside the NameNode in the paper's implementation. It is the
//! *what* of migration: clients send it file lists, it maps files to blocks
//! using the file system's metadata, chooses **one random replica** per
//! block to migrate (§III-A2 — network bandwidth makes extra copies
//! wasteful), and batches per-slave command lists (§III-A6). Slaves decide
//! *how* and *when*.
//!
//! The master also remembers, per job, which slaves received migration
//! commands so that the job's eventual evict instruction is routed to
//! exactly those slaves. This state is soft: on master failure it is lost,
//! and slaves purge their reference lists to stay consistent with the new
//! master's empty state (§III-A5).

use std::collections::BTreeMap;

use ignem_dfs::error::DfsError;
use ignem_dfs::namenode::NameNode;
use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;

use crate::command::{JobId, MigrateCommand, MigrateRequest, SlaveBatch};
#[cfg(test)]
use crate::command::EvictionMode;

/// Master-side configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterConfig {
    /// How many replicas of each block to migrate. The paper chooses **1**
    /// (§III-A2): extra copies waste disk bandwidth and memory because the
    /// network is fast enough to read a remote migrated replica. Higher
    /// values exist for the ablation benches.
    pub replicas_to_migrate: usize,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            replicas_to_migrate: 1,
        }
    }
}

/// Counters the master keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Migrate requests received.
    pub migrate_requests: u64,
    /// Individual block migration commands issued.
    pub blocks_assigned: u64,
    /// Evict requests received.
    pub evict_requests: u64,
    /// Evict requests for jobs the master had no state for (e.g. after a
    /// master failure).
    pub unknown_evicts: u64,
}

#[derive(Debug, Clone, Default)]
struct JobRecord {
    /// Slaves that received at least one migrate command for this job.
    slaves: Vec<NodeId>,
}

/// The Ignem master (see module docs).
///
/// ```
/// use ignem_core::command::{EvictionMode, JobId, MigrateRequest};
/// use ignem_core::master::IgnemMaster;
/// use ignem_dfs::namenode::{DfsConfig, NameNode};
/// use ignem_netsim::NodeId;
/// use ignem_simcore::{rng::SimRng, time::SimTime};
///
/// let mut nn = NameNode::new(DfsConfig::default());
/// for n in 0..4 { nn.register_node(NodeId(n)); }
/// let mut rng = SimRng::new(1);
/// nn.create_file("/in", 256 << 20, &mut rng)?;
///
/// let mut master = IgnemMaster::new();
/// let batches = master.handle_migrate(
///     &MigrateRequest {
///         job: JobId(1),
///         files: vec!["/in".into()],
///         mode: EvictionMode::Explicit,
///         submitted: SimTime::ZERO,
///     },
///     &nn,
///     &mut rng,
/// )?;
/// let total: usize = batches.iter().map(|b| b.migrates.len()).sum();
/// assert_eq!(total, 4); // one command per 64 MiB block, one replica each
/// # Ok::<(), ignem_dfs::error::DfsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct IgnemMaster {
    config: MasterConfig,
    jobs: BTreeMap<JobId, JobRecord>,
    stats: MasterStats,
}

impl IgnemMaster {
    /// Creates a master with empty state and the paper's defaults.
    pub fn new() -> Self {
        IgnemMaster::default()
    }

    /// Creates a master with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas_to_migrate` is zero.
    pub fn with_config(config: MasterConfig) -> Self {
        assert!(config.replicas_to_migrate > 0, "zero replicas to migrate");
        IgnemMaster {
            config,
            ..IgnemMaster::default()
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Number of jobs with live migration state.
    pub fn tracked_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Handles a client migrate request: resolves files to blocks, picks one
    /// random **alive** replica per block, and returns per-slave batches.
    /// Blocks with no alive replica are skipped (the file system will
    /// re-replicate them eventually; migration is best-effort).
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if any requested file does not exist; no
    /// commands are issued in that case.
    pub fn handle_migrate(
        &mut self,
        req: &MigrateRequest,
        namenode: &NameNode,
        rng: &mut SimRng,
    ) -> Result<Vec<SlaveBatch>, DfsError> {
        self.stats.migrate_requests += 1;
        // Resolve everything first so the request is all-or-nothing.
        let mut blocks = Vec::new();
        for path in &req.files {
            blocks.extend(namenode.file_blocks(path)?);
        }
        let job_input_bytes: u64 = blocks.iter().map(|b| b.bytes).sum();

        let mut batches: BTreeMap<NodeId, SlaveBatch> = BTreeMap::new();
        for info in blocks {
            if info.bytes == 0 {
                continue;
            }
            let locations = namenode.locations(info.id)?;
            if locations.is_empty() {
                continue;
            }
            let mut candidates = locations.clone();
            rng.shuffle(&mut candidates);
            let k = self.config.replicas_to_migrate.max(1).min(candidates.len());
            for &target in &candidates[..k] {
                batches
                    .entry(target)
                    .or_insert_with(|| SlaveBatch::new(target))
                    .migrates
                    .push(MigrateCommand {
                        job: req.job,
                        block: info.id,
                        bytes: info.bytes,
                        mode: req.mode,
                        job_input_bytes,
                        submitted: req.submitted,
                    });
                self.stats.blocks_assigned += 1;
            }
        }

        let record = self.jobs.entry(req.job).or_default();
        for &slave in batches.keys() {
            if !record.slaves.contains(&slave) {
                record.slaves.push(slave);
            }
        }
        Ok(batches.into_values().collect())
    }

    /// Handles a job-completion evict request, returning evict batches for
    /// every slave that ever received a migrate command for the job.
    /// Unknown jobs (e.g. after master failover) produce no batches.
    pub fn handle_evict(&mut self, job: JobId) -> Vec<SlaveBatch> {
        self.stats.evict_requests += 1;
        let Some(record) = self.jobs.remove(&job) else {
            self.stats.unknown_evicts += 1;
            return Vec::new();
        };
        record
            .slaves
            .into_iter()
            .map(|slave| {
                let mut b = SlaveBatch::new(slave);
                b.evicts.push(job);
                b
            })
            .collect()
    }

    /// Simulates a master crash + restart: all soft state is lost. The
    /// cluster layer must subsequently call each slave's
    /// [`on_master_failed`](crate::slave::IgnemSlave::on_master_failed) so
    /// slaves purge reference lists and stay consistent (§III-A5).
    pub fn fail(&mut self) {
        self.jobs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_dfs::namenode::DfsConfig;
    use ignem_simcore::time::SimTime;
    use ignem_simcore::units::MIB;

    fn setup(nodes: u32) -> (NameNode, SimRng) {
        let mut nn = NameNode::new(DfsConfig::default());
        for n in 0..nodes {
            nn.register_node(NodeId(n));
        }
        (nn, SimRng::new(3))
    }

    fn request(job: u64, files: Vec<&str>) -> MigrateRequest {
        MigrateRequest {
            job: JobId(job),
            files: files.into_iter().map(String::from).collect(),
            mode: EvictionMode::Explicit,
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn one_replica_per_block() {
        let (mut nn, mut rng) = setup(8);
        nn.create_file("/f", 10 * 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        let total: usize = batches.iter().map(|b| b.migrates.len()).sum();
        assert_eq!(total, 10);
        // Every command targets a node that actually holds the replica.
        for b in &batches {
            for c in &b.migrates {
                assert!(nn.locations(c.block).unwrap().contains(&b.to));
            }
        }
        assert_eq!(m.stats().blocks_assigned, 10);
    }

    #[test]
    fn job_input_bytes_spans_all_files() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/a", 64 * MIB, &mut rng).unwrap();
        nn.create_file("/b", 32 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/a", "/b"]), &nn, &mut rng)
            .unwrap();
        for b in &batches {
            for c in &b.migrates {
                assert_eq!(c.job_input_bytes, 96 * MIB);
            }
        }
    }

    #[test]
    fn missing_file_fails_whole_request() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/a", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let err = m
            .handle_migrate(&request(1, vec!["/a", "/missing"]), &nn, &mut rng)
            .unwrap_err();
        assert_eq!(err, DfsError::FileNotFound("/missing".into()));
        // No state recorded for the failed request.
        assert_eq!(m.tracked_jobs(), 0);
    }

    #[test]
    fn evict_targets_only_involved_slaves() {
        let (mut nn, mut rng) = setup(8);
        nn.create_file("/f", 4 * 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        let migrate_slaves: Vec<NodeId> = batches.iter().map(|b| b.to).collect();
        let evicts = m.handle_evict(JobId(1));
        let evict_slaves: Vec<NodeId> = evicts.iter().map(|b| b.to).collect();
        assert_eq!(migrate_slaves, evict_slaves);
        assert!(evicts.iter().all(|b| b.evicts == vec![JobId(1)]));
        // Second evict is a no-op (job state removed).
        assert!(m.handle_evict(JobId(1)).is_empty());
        assert_eq!(m.stats().unknown_evicts, 1);
    }

    #[test]
    fn failure_clears_state() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/f", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        m.handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        assert_eq!(m.tracked_jobs(), 1);
        m.fail();
        assert_eq!(m.tracked_jobs(), 0);
        assert!(m.handle_evict(JobId(1)).is_empty());
    }

    #[test]
    fn dead_replica_holders_are_never_chosen() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/f", 20 * 64 * MIB, &mut rng).unwrap();
        nn.mark_dead(NodeId(0)).unwrap();
        let mut m = IgnemMaster::new();
        let batches = m
            .handle_migrate(&request(1, vec!["/f"]), &nn, &mut rng)
            .unwrap();
        assert!(batches.iter().all(|b| b.to != NodeId(0)));
    }

    #[test]
    fn repeated_migrate_extends_job_record() {
        let (mut nn, mut rng) = setup(4);
        nn.create_file("/a", 64 * MIB, &mut rng).unwrap();
        nn.create_file("/b", 64 * MIB, &mut rng).unwrap();
        let mut m = IgnemMaster::new();
        m.handle_migrate(&request(1, vec!["/a"]), &nn, &mut rng)
            .unwrap();
        m.handle_migrate(&request(1, vec!["/b"]), &nn, &mut rng)
            .unwrap();
        assert_eq!(m.tracked_jobs(), 1);
        assert!(!m.handle_evict(JobId(1)).is_empty());
    }
}
