//! The Ignem wire protocol: client → master requests and master → slave
//! command batches.
//!
//! The paper batches migration commands between the master and slaves "to
//! reduce RPC communication overheads" (§III-A6); [`SlaveBatch`] is that
//! batch.

use ignem_dfs::block::BlockId;
use ignem_netsim::rpc::Epoch;
use ignem_netsim::NodeId;
use ignem_simcore::idmap::DenseId;
use ignem_simcore::time::SimTime;

/// Identifies a job across the compute and migration planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job_{}", self.0)
    }
}

impl DenseId for JobId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        JobId(index as u64)
    }
}

/// How a job's reference-list entries are released (paper §III-A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionMode {
    /// The job submitter issues an explicit evict instruction on completion.
    Explicit,
    /// The slave drops the job's reference as soon as the job reads the
    /// block ("a job can opt into this implicit eviction mode").
    Implicit,
}

/// A client → master migration request: "a list of files that a job will
/// soon need to read".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateRequest {
    /// The requesting job.
    pub job: JobId,
    /// Paths of the job's input files.
    pub files: Vec<String>,
    /// Eviction mode for all of this job's blocks.
    pub mode: EvictionMode,
    /// Job submission time (the prioritization tie-breaker).
    pub submitted: SimTime,
}

/// One master → slave migration instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateCommand {
    /// The job that will read the block.
    pub job: JobId,
    /// The block to read into memory.
    pub block: BlockId,
    /// The block's size.
    pub bytes: u64,
    /// Eviction mode for the reference created.
    pub mode: EvictionMode,
    /// The job's **total input size** — the slave's prioritization key
    /// ("prioritize migration for blocks belonging to jobs with smaller
    /// input sizes").
    pub job_input_bytes: u64,
    /// The job's submission time — the tie-breaker.
    pub submitted: SimTime,
}

/// Sequence number identifying one master → slave send that awaits an
/// acknowledgement. Allocated by the master's retransmission outbox;
/// monotonic across master restarts so stale timeout events can never be
/// confused with a fresh send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u64);

impl DenseId for SeqNo {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        SeqNo(index as u64)
    }
}

/// The payload of one acknowledged master → slave control message. The
/// channel carrying it is unreliable, so the payload must be cheap to
/// clone for retransmission and safe for the slave to apply twice
/// ([`IgnemSlave::enqueue`](crate::slave::IgnemSlave::enqueue) is
/// idempotent; evicts are naturally so).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcPayload {
    /// A batch of migrate commands.
    Migrates(Vec<MigrateCommand>),
    /// An evict instruction for a completed job.
    Evict(JobId),
}

/// A batched set of commands for one slave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlaveBatch {
    /// Destination slave.
    pub to: NodeId,
    /// The master incarnation that issued the batch. Slaves reject batches
    /// stamped with an epoch older than the newest they have seen, so a
    /// retransmission that outlives a master failover cannot resurrect
    /// purged state.
    pub epoch: Epoch,
    /// Blocks to migrate.
    pub migrates: Vec<MigrateCommand>,
    /// Jobs whose references should be released.
    pub evicts: Vec<JobId>,
}

impl SlaveBatch {
    /// Creates an empty batch for `to`, stamped with `epoch`.
    pub fn new(to: NodeId, epoch: Epoch) -> Self {
        SlaveBatch {
            to,
            epoch,
            migrates: Vec::new(),
            evicts: Vec::new(),
        }
    }

    /// Whether the batch carries no commands.
    pub fn is_empty(&self) -> bool {
        self.migrates.is_empty() && self.evicts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_emptiness() {
        let mut b = SlaveBatch::new(NodeId(1), Epoch::FIRST);
        assert!(b.is_empty());
        b.evicts.push(JobId(1));
        assert!(!b.is_empty());
    }

    #[test]
    fn job_id_display() {
        assert_eq!(JobId(9).to_string(), "job_9");
    }
}
