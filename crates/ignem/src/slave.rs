//! The Ignem slave: the *how* and *when* of migration.
//!
//! One slave runs inside each DataNode. It implements the paper's §III-A
//! mechanisms in full:
//!
//! * a **migration queue** drained by a [`Policy`] (smallest-job-first by
//!   default), migrating **one block at a time** to avoid disk-seek
//!   thrashing, **work-conserving** (never idle while work is queued and
//!   memory is available);
//! * **reference lists**: each migrated block holds the set of job IDs
//!   expected to read it; a block is evicted exactly when its list empties
//!   (explicit evict command, implicit eviction on read, or dead-job
//!   cleanup) — so the migration buffer cannot leak;
//! * the **do-not-harm rule**: a resident block is never evicted to make
//!   room for another migration; blocked migrations wait;
//! * a **memory-occupancy threshold** that triggers a scheduler liveness
//!   query to garbage-collect references held by failed jobs;
//! * **failure handling**: on master failure the slave purges all reference
//!   lists (consistency with the new master's empty state); on slave
//!   restart all migrated data is discarded.
//!
//! The slave is engine-agnostic: it owns no clock and performs no IO.
//! Methods return [`SlaveAction`]s that the cluster layer converts into
//! disk requests and scheduler queries, and the cluster feeds completions
//! back in. The per-node memory ([`MemStore`]) is owned by the cluster and
//! passed in, since pinned (vmtouch) blocks share it.

use ignem_dfs::block::BlockId;
use ignem_netsim::rpc::{Epoch, Incarnation};
use ignem_netsim::NodeId;
use ignem_simcore::idmap::{IdMap, IdSet};
use ignem_simcore::metrics::MetricsRegistry;
use ignem_simcore::telemetry::{Event, Telemetry};
use ignem_simcore::time::{SimDuration, SimTime};
use ignem_storage::memstore::{MemStore, Residency};

use crate::command::{EvictionMode, JobId, MigrateCommand};
use crate::policy::{Policy, QueueKey};

/// Configuration of a slave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IgnemConfig {
    /// Maximum bytes of migrated data the slave may hold ("Ignem limits the
    /// amount of migrated data to a configurable maximum threshold").
    pub buffer_capacity: u64,
    /// Occupancy fraction of `buffer_capacity` at which a blocked slave
    /// queries the scheduler for dead jobs (§III-A4 cleanup).
    pub cleanup_threshold: f64,
    /// Minimum time between consecutive liveness queries, so a persistently
    /// blocked slave does not hammer the scheduler.
    pub liveness_cooldown: SimDuration,
    /// Maximum concurrent migration reads per slave. The paper uses **1**
    /// ("each slave only migrates one block at a time") to avoid disk
    /// bandwidth degradation from concurrent reads; higher values exist for
    /// the ablation benches.
    pub max_concurrent_migrations: usize,
    /// Queue-ordering policy.
    pub policy: Policy,
    /// Reference lease duration. When set, every job holding interest on
    /// this slave carries a lease that must be renewed (by a new command,
    /// a reference materializing, the job reading a block here, or a
    /// liveness reply confirming the job alive) within this duration;
    /// un-renewed leases expire and the job's references are released, so
    /// references orphaned by partitions or stale retransmissions are
    /// reclaimed deterministically. `None` disables leases entirely (the
    /// legacy lifecycle, which relies on the cluster's cleanup sweep and
    /// is known to race the fault schedule — see the seed-304 leak).
    pub lease: Option<SimDuration>,
}

impl Default for IgnemConfig {
    /// 16 GiB buffer (plenty per §II-C2's worst-case 12.5 GB analysis),
    /// cleanup at 80% occupancy, smallest-job-first, no leases (fault-free
    /// runs need none and stay bit-identical to the pre-lease lifecycle).
    fn default() -> Self {
        IgnemConfig {
            buffer_capacity: 16 << 30,
            cleanup_threshold: 0.8,
            liveness_cooldown: SimDuration::from_secs(5),
            max_concurrent_migrations: 1,
            policy: Policy::SmallestJobFirst,
            lease: None,
        }
    }
}

/// An instruction from the slave to its host (the cluster layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlaveAction {
    /// Issue a migration read of `bytes` for `block` on this node's disk;
    /// call [`IgnemSlave::on_read_done`] when it completes.
    StartRead {
        /// Block to read.
        block: BlockId,
        /// Block size.
        bytes: u64,
    },
    /// Cancel the in-flight migration read for `block` (slave restart).
    CancelRead {
        /// Block whose read should be cancelled.
        block: BlockId,
    },
    /// Ask the cluster scheduler which of `jobs` are no longer running and
    /// call [`IgnemSlave::on_liveness_result`] with the dead ones.
    QueryJobLiveness {
        /// Candidate jobs (every job holding references on this slave).
        jobs: Vec<JobId>,
    },
}

/// Slave activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlaveStats {
    /// Migrate commands received.
    pub commands: u64,
    /// Blocks successfully migrated into memory.
    pub migrated: u64,
    /// Bytes successfully migrated into memory.
    pub migrated_bytes: u64,
    /// Commands satisfied by a block already resident or in flight
    /// (reference added, no extra read).
    pub deduped: u64,
    /// Queued migrations discarded because every interested job already
    /// read the block (missed reads) or died.
    pub discarded: u64,
    /// Migration reads that completed with no interested job left; the
    /// block was dropped without entering memory.
    pub wasted_reads: u64,
    /// Blocks evicted: every removal of a migrated-resident block, whether
    /// its reference list emptied or a purge dropped it wholesale. Matches
    /// the number of `BlockEvicted` telemetry events one-for-one.
    pub evicted: u64,
    /// Bytes released from the migration buffer across every evict and
    /// purge path — the debit side of the residency ledger. At all times
    /// `migrated_bytes - evicted_bytes` equals the bytes currently
    /// migrated-resident in this node's memory.
    pub evicted_bytes: u64,
    /// Full purges performed (master failure / slave restart).
    pub purges: u64,
    /// Liveness queries issued.
    pub liveness_queries: u64,
    /// Commands rejected because they carried a stale master epoch (a
    /// retransmission from an incarnation that has since failed over).
    pub stale_epochs: u64,
    /// Job leases that expired un-renewed, releasing the job's references.
    pub lease_expiries: u64,
    /// Commands rejected because they were addressed to a dead incarnation
    /// of this slave (issued before its last crash/restart cycle).
    pub stale_incarnations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    job: JobId,
    mode: EvictionMode,
    job_input_bytes: u64,
    submitted: SimTime,
}

#[derive(Debug, Clone)]
struct QueuedBlock {
    bytes: u64,
    waiters: Vec<Waiter>,
    arrival: u64,
}

impl QueuedBlock {
    fn key(&self) -> QueueKey {
        QueueKey {
            job_input_bytes: self
                .waiters
                .iter()
                .map(|w| w.job_input_bytes)
                .min()
                .unwrap_or(u64::MAX),
            submitted: self
                .waiters
                .iter()
                .map(|w| w.submitted)
                .min()
                .unwrap_or(SimTime::MAX),
            arrival: self.arrival,
        }
    }
}

#[derive(Debug, Clone)]
struct CurrentMigration {
    bytes: u64,
    waiters: Vec<Waiter>,
}

/// The per-DataNode migration agent (see module docs).
#[derive(Debug, Clone)]
pub struct IgnemSlave {
    node: NodeId,
    config: IgnemConfig,
    queue: IdMap<BlockId, QueuedBlock>,
    current: IdMap<BlockId, CurrentMigration>,
    /// Reference lists of **resident migrated** blocks.
    refs: IdMap<BlockId, Vec<(JobId, EvictionMode)>>,
    /// Paper §III-B2: "Each slave has a hash-map that maps a job's ID to the
    /// list of blocks migrated for the job" — the eviction index. Tracks
    /// resident, queued and in-flight interest.
    job_blocks: IdMap<JobId, IdSet<BlockId>>,
    /// Highest master epoch observed; commands stamped lower are stale.
    epoch: Epoch,
    /// Which boot of this daemon is running. Bumped by
    /// [`restart`](Self::restart) after a crash; commands addressed to an
    /// older incarnation are rejected (they were issued for a boot whose
    /// state died with it).
    incarnation: Incarnation,
    /// Per-job lease expiry instants (populated only when
    /// [`IgnemConfig::lease`] is set; keys mirror `job_blocks`).
    lease_expiry: IdMap<JobId, SimTime>,
    arrivals: u64,
    liveness_pending: bool,
    /// Bumped by every mutating entry point; paired with
    /// [`MemStore::version`], it lets a per-event validator skip slaves
    /// whose state provably did not change since the last audit.
    version: u64,
    last_liveness: Option<SimTime>,
    stats: SlaveStats,
    /// Typed event emission (disabled by default).
    telemetry: Telemetry,
    /// Sim-time metrics (disabled by default).
    metrics: MetricsRegistry,
}

impl IgnemSlave {
    /// Creates a slave for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the cleanup threshold is outside `(0, 1]` or the buffer
    /// capacity is zero.
    pub fn new(node: NodeId, config: IgnemConfig) -> Self {
        assert!(config.buffer_capacity > 0, "zero buffer capacity");
        assert!(
            config.cleanup_threshold > 0.0 && config.cleanup_threshold <= 1.0,
            "cleanup threshold must be in (0, 1]"
        );
        IgnemSlave {
            node,
            config,
            queue: IdMap::new(),
            current: IdMap::new(),
            refs: IdMap::new(),
            job_blocks: IdMap::new(),
            epoch: Epoch::FIRST,
            incarnation: Incarnation::FIRST,
            lease_expiry: IdMap::new(),
            arrivals: 0,
            liveness_pending: false,
            version: 0,
            last_liveness: None,
            stats: SlaveStats::default(),
            telemetry: Telemetry::default(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Installs a telemetry handle; the slave then emits the migration
    /// lifecycle events (enqueued / started / completed / wasted /
    /// discarded / evicted).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Installs a sim-time metrics handle; the slave then gauges its
    /// migration-queue depth and counts evicted bytes.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// The node this slave runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The slave's configuration.
    pub fn config(&self) -> &IgnemConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> SlaveStats {
        self.stats
    }

    /// Number of blocks queued (not yet started).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether any migration read is in flight.
    pub fn is_migrating(&self) -> bool {
        !self.current.is_empty()
    }

    /// Number of migration reads in flight.
    pub fn in_flight_migrations(&self) -> usize {
        self.current.len()
    }

    /// The reference list of a resident migrated block, if any.
    pub fn references(&self, block: BlockId) -> Option<&[(JobId, EvictionMode)]> {
        self.refs.get(&block).map(|v| v.as_slice())
    }

    /// Jobs currently holding any reference (resident, queued or in flight).
    pub fn interested_jobs(&self) -> Vec<JobId> {
        self.job_blocks.keys().collect()
    }

    /// Whether any job holds a reference — `interested_jobs().is_empty()`
    /// without the allocation. Cluster-wide sweeps test this per node, so
    /// at datacenter scale it must stay O(1).
    pub fn has_interest(&self) -> bool {
        !self.job_blocks.is_empty()
    }

    /// Total `(job, block)` reference entries on resident migrated blocks
    /// (the leak-freedom quantity: zero once every job's data is reclaimed).
    pub fn total_references(&self) -> usize {
        self.refs.values().map(Vec::len).sum()
    }

    /// The highest master epoch this slave has observed.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The incarnation this slave is currently running under.
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// Observes the destination incarnation stamped on an incoming master
    /// message. Returns `false` — and the message must be dropped without
    /// an acknowledgement — when it was addressed to an older boot of this
    /// daemon: the state the sender was talking to died in the crash, and
    /// applying the command would resurrect references the recovery
    /// protocol already fenced off. Messages stamped with the current (or,
    /// defensively, a newer) incarnation pass through.
    pub fn observe_incarnation(&mut self, incarnation: Incarnation) -> bool {
        if incarnation < self.incarnation {
            self.version += 1;
            self.stats.stale_incarnations += 1;
            let (stale, current) = (incarnation.0, self.incarnation.0);
            self.telemetry.emit(|| Event::IncarnationRejected {
                node: self.node.0,
                stale,
                current,
            });
            return false;
        }
        true
    }

    /// Boots the slave after a crash, under a fresh incarnation. The
    /// volatile purge already happened at crash time ([`fail`](Self::fail)
    /// plus the host wiping the MemStore); this models the process coming
    /// back with empty state, durable knowledge (the observed master
    /// epoch) intact, and a new boot id to re-register under. Returns the
    /// new incarnation for the registration handshake.
    pub fn restart(&mut self) -> Incarnation {
        self.version += 1;
        self.incarnation = self.incarnation.next();
        self.incarnation
    }

    /// Monotone mutation counter: advances on every state-changing entry
    /// point. Two equal readings (combined with the paired MemStore's
    /// [`version`](MemStore::version)) guarantee the slave was not mutated
    /// in between, so an invariant checker may reuse its last verdict.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Observes the epoch stamped on an incoming master message, deciding
    /// whether the message may be applied.
    ///
    /// * `epoch` **older** than the highest seen: the sender's incarnation
    ///   failed over after issuing the message (a retransmission that
    ///   outlived its master). The message must be dropped — applying it
    ///   would resurrect state the failover purged. Returns `None`; the
    ///   rejection is idempotent (counted, emitted, no state change).
    /// * `epoch` **equal**: apply normally; returns `Some` empty actions.
    /// * `epoch` **newer**: the slave missed the failover notification
    ///   (e.g. it was partitioned away when the cluster broadcast it).
    ///   Adopt the new incarnation by purging exactly as
    ///   [`on_master_failed`](Self::on_master_failed) would, then apply
    ///   the message; returns `Some` with the purge's cancel actions.
    pub fn observe_epoch(
        &mut self,
        now: SimTime,
        epoch: Epoch,
        mem: &mut MemStore<BlockId>,
    ) -> Option<Vec<SlaveAction>> {
        self.version += 1;
        match epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Less => {
                self.stats.stale_epochs += 1;
                let (stale, current) = (epoch.0, self.epoch.0);
                self.telemetry.emit(|| Event::EpochRejected {
                    node: self.node.0,
                    stale,
                    current,
                });
                None
            }
            std::cmp::Ordering::Equal => Some(Vec::new()),
            std::cmp::Ordering::Greater => {
                let actions = self.purge_for_new_master(now, mem);
                self.epoch = epoch;
                Some(actions)
            }
        }
    }

    /// The earliest instant at which a job lease expires, if any lease is
    /// outstanding. The cluster layer arms a timer for this instant and
    /// calls [`expire_leases`](Self::expire_leases) when it fires.
    pub fn next_lease_expiry(&self) -> Option<SimTime> {
        self.lease_expiry.values().min().copied()
    }

    /// Every outstanding job lease as `(job, expiry)`, ascending by job
    /// id — rendered by the time-travel debugger.
    pub fn leases(&self) -> Vec<(JobId, SimTime)> {
        self.lease_expiry.iter().map(|(j, t)| (j, *t)).collect()
    }

    /// Releases every job whose lease expired at or before `now`. Expired
    /// jobs are treated exactly like jobs a liveness reply declared dead:
    /// resident references are dropped (evicting emptied blocks), queued
    /// and in-flight interest is discarded.
    pub fn expire_leases(&mut self, now: SimTime, mem: &mut MemStore<BlockId>) -> Vec<SlaveAction> {
        self.version += 1;
        let expired: Vec<JobId> = self
            .lease_expiry
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(job, _)| job)
            .collect();
        if expired.is_empty() {
            return Vec::new();
        }
        for job in expired {
            self.stats.lease_expiries += 1;
            self.telemetry.emit(|| Event::LeaseExpired {
                node: self.node.0,
                job: job.0,
            });
            self.release_job(now, job, mem);
        }
        self.try_start(now, mem)
    }

    /// Handles a batch of migrate commands from the master.
    ///
    /// Idempotent under redelivery: the master retransmits batches that
    /// were not acknowledged in time, so a command for a (job, block) pair
    /// that is already queued, in flight or resident is absorbed without
    /// adding a second waiter or reference (counted in
    /// [`SlaveStats::deduped`]).
    pub fn enqueue(
        &mut self,
        now: SimTime,
        commands: Vec<MigrateCommand>,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.version += 1;
        for cmd in commands {
            self.stats.commands += 1;
            let waiter = Waiter {
                job: cmd.job,
                mode: cmd.mode,
                job_input_bytes: cmd.job_input_bytes,
                submitted: cmd.submitted,
            };
            match mem.residency(&cmd.block) {
                Some(Residency::Pinned) | Some(Residency::Cached) => {
                    // Already in memory (pinned forever, or cache-retained);
                    // nothing to migrate and no reference to manage. A
                    // cached copy may later be LRU-evicted, in which case
                    // the task simply falls back to a disk read.
                    self.stats.deduped += 1;
                }
                Some(Residency::Migrated) => {
                    // Resident: append a reference for this job. An
                    // unreliable channel may redeliver a command, so the
                    // append is idempotent per (job, block) — a duplicate
                    // must not grow the reference list, or a single
                    // eviction would no longer release the block.
                    let list = self.refs.entry_or_default(cmd.block);
                    if !list.iter().any(|&(j, _)| j == cmd.job) {
                        list.push((cmd.job, cmd.mode));
                        self.index_interest(cmd.job, cmd.block);
                        self.emit_enqueued(&cmd);
                    }
                    self.stats.deduped += 1;
                }
                None => {
                    if let Some(cur) = self.current.get_mut(&cmd.block) {
                        if !cur.waiters.iter().any(|w| w.job == cmd.job) {
                            cur.waiters.push(waiter);
                            self.index_interest(cmd.job, cmd.block);
                            self.emit_enqueued(&cmd);
                        }
                        self.stats.deduped += 1;
                        self.touch_lease(now, cmd.job);
                        continue;
                    }
                    if let Some(q) = self.queue.get_mut(&cmd.block) {
                        if !q.waiters.iter().any(|w| w.job == cmd.job) {
                            q.waiters.push(waiter);
                            self.index_interest(cmd.job, cmd.block);
                            self.emit_enqueued(&cmd);
                        }
                        self.stats.deduped += 1;
                    } else {
                        let arrival = self.arrivals;
                        self.arrivals += 1;
                        self.queue.insert(
                            cmd.block,
                            QueuedBlock {
                                bytes: cmd.bytes,
                                waiters: vec![waiter],
                                arrival,
                            },
                        );
                        self.index_interest(cmd.job, cmd.block);
                        self.emit_enqueued(&cmd);
                    }
                }
            }
            self.touch_lease(now, cmd.job);
        }
        self.try_start(now, mem)
    }

    /// Completion callback for a migration read issued via
    /// [`SlaveAction::StartRead`]. Inserts the block (if any job still
    /// wants it) and starts the next migration.
    ///
    /// A completion for a block with no in-flight migration (a stray or
    /// duplicate callback) is ignored rather than panicking: read
    /// completions ride the fault-prone IO path, so the slave must absorb
    /// surprises there (lint rule P01).
    pub fn on_read_done(
        &mut self,
        now: SimTime,
        block: BlockId,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.version += 1;
        let Some(cur) = self.current.remove(&block) else {
            // Stray or duplicate completion (e.g. a read racing a
            // CancelRead): absorb it, per the contract above.
            return Vec::new();
        };
        if cur.waiters.is_empty() {
            // Everyone lost interest while the read was in flight.
            self.stats.wasted_reads += 1;
            self.telemetry.emit(|| Event::MigrationWasted {
                node: self.node.0,
                block: block.0,
                bytes: cur.bytes,
            });
        } else {
            match mem.insert(now, block, cur.bytes, Residency::Migrated) {
                Ok(()) => {
                    self.stats.migrated += 1;
                    self.stats.migrated_bytes += cur.bytes;
                    let list: Vec<(JobId, EvictionMode)> =
                        cur.waiters.iter().map(|w| (w.job, w.mode)).collect();
                    self.refs.insert(block, list);
                    // The references just materialized; their lease clock
                    // starts (or restarts) now.
                    for w in &cur.waiters {
                        self.touch_lease(now, w.job);
                    }
                    self.telemetry.emit(|| Event::MigrationCompleted {
                        node: self.node.0,
                        block: block.0,
                        bytes: cur.bytes,
                    });
                }
                Err(_) => {
                    // Pinned data or other migrations squeezed us out
                    // between the capacity check and completion; drop.
                    self.stats.wasted_reads += 1;
                    self.telemetry.emit(|| Event::MigrationWasted {
                        node: self.node.0,
                        block: block.0,
                        bytes: cur.bytes,
                    });
                    for w in &cur.waiters {
                        self.unindex_interest(w.job, block);
                    }
                }
            }
        }
        self.try_start(now, mem)
    }

    /// Handles an explicit evict instruction for `job` (forwarded by the
    /// master when the job completes), releasing all its references.
    pub fn on_evict_job(
        &mut self,
        now: SimTime,
        job: JobId,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.version += 1;
        self.release_job(now, job, mem);
        self.try_start(now, mem)
    }

    /// Notifies the slave that `job` has **read** `block` (HDFS reads carry
    /// the job ID, §III-B2). Applies implicit eviction if the job's
    /// reference was created in [`EvictionMode::Implicit`], and discards
    /// now-pointless queued or in-flight interest (the migration "missed").
    pub fn on_block_read(
        &mut self,
        now: SimTime,
        block: BlockId,
        job: JobId,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.version += 1;
        // Missed reads: drop queued interest.
        let mut removed_interest = false;
        let mut drop_queue_entry = false;
        if let Some(q) = self.queue.get_mut(&block) {
            if q.waiters.iter().any(|w| w.job == job) {
                q.waiters.retain(|w| w.job != job);
                removed_interest = true;
                drop_queue_entry = q.waiters.is_empty();
            }
        }
        if drop_queue_entry {
            self.queue.remove(&block);
            self.stats.discarded += 1;
            self.telemetry.emit(|| Event::MigrationDiscarded {
                node: self.node.0,
                block: block.0,
            });
        }
        // In-flight interest: the read is finishing anyway; this job no
        // longer needs a reference afterwards.
        if let Some(cur) = self.current.get_mut(&block) {
            if cur.waiters.iter().any(|w| w.job == job) {
                cur.waiters.retain(|w| w.job != job);
                removed_interest = true;
            }
        }
        // Implicit eviction of a resident reference.
        let mut evict = false;
        if let Some(list) = self.refs.get_mut(&block) {
            if let Some(pos) = list
                .iter()
                .position(|&(j, m)| j == job && m == EvictionMode::Implicit)
            {
                list.remove(pos);
                removed_interest = true;
                evict = list.is_empty();
            }
        }
        if removed_interest {
            self.unindex_interest(job, block);
        }
        if evict {
            self.refs.remove(&block);
            let bytes = mem.remove(now, &block).unwrap_or(0);
            self.stats.evicted += 1;
            self.stats.evicted_bytes += bytes;
            self.metrics
                .counter_add("evicted_bytes", self.node.0 as u64, bytes);
            self.telemetry.emit(|| Event::BlockEvicted {
                node: self.node.0,
                block: block.0,
                bytes,
            });
        }
        // The read proves the job alive; renew whatever interest remains.
        self.touch_lease(now, job);
        self.try_start(now, mem)
    }

    /// Master failure: purge **all** reference lists so the slave is
    /// consistent with the new master's empty state (§III-A5), and adopt
    /// the new incarnation's epoch so stale retransmissions from the old
    /// one are rejected when they eventually arrive. Queued work is
    /// dropped and any in-flight migration read is cancelled — the
    /// restarted master has no record of it, so letting it finish would
    /// waste disk bandwidth and orphan the IO.
    pub fn on_master_failed(
        &mut self,
        now: SimTime,
        new_epoch: Epoch,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.version += 1;
        self.epoch = self.epoch.max(new_epoch);
        self.purge_for_new_master(now, mem)
    }

    /// The shared §III-A5 purge: drop every reference (evicting resident
    /// blocks), queued entry and lease, and cancel in-flight reads.
    fn purge_for_new_master(
        &mut self,
        now: SimTime,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.stats.purges += 1;
        for (block, _) in std::mem::take(&mut self.refs) {
            let bytes = mem.remove(now, &block).unwrap_or(0);
            self.stats.evicted += 1;
            self.stats.evicted_bytes += bytes;
            self.metrics
                .counter_add("evicted_bytes", self.node.0 as u64, bytes);
            self.telemetry.emit(|| Event::BlockEvicted {
                node: self.node.0,
                block: block.0,
                bytes,
            });
        }
        self.queue.clear();
        self.job_blocks.clear();
        self.lease_expiry.clear();
        self.liveness_pending = false;
        std::mem::take(&mut self.current)
            .into_keys()
            .map(|block| SlaveAction::CancelRead { block })
            .collect()
    }

    /// Slave process failure + restart: all migrated data is discarded (the
    /// OS reclaims it), in-flight work is cancelled, and the slave restarts
    /// empty, ready for new commands (§III-A5). The observed epoch
    /// survives: it models durable knowledge of "who is master", and
    /// keeping it monotonic means a restarted slave still rejects
    /// pre-failover retransmissions.
    pub fn fail(&mut self, now: SimTime, mem: &mut MemStore<BlockId>) -> Vec<SlaveAction> {
        self.version += 1;
        self.stats.purges += 1;
        for (block, _) in std::mem::take(&mut self.refs) {
            let bytes = mem.remove(now, &block).unwrap_or(0);
            self.stats.evicted += 1;
            self.stats.evicted_bytes += bytes;
            self.metrics
                .counter_add("evicted_bytes", self.node.0 as u64, bytes);
            self.telemetry.emit(|| Event::BlockEvicted {
                node: self.node.0,
                block: block.0,
                bytes,
            });
        }
        // Anything still migrated-resident (impossible while the bijection
        // invariant holds, but purged defensively) is debited too so the
        // ledger stays balanced.
        self.stats.evicted_bytes += mem.migrated_used();
        mem.purge_migrated(now);
        self.queue.clear();
        self.job_blocks.clear();
        self.lease_expiry.clear();
        self.liveness_pending = false;
        std::mem::take(&mut self.current)
            .into_keys()
            .map(|block| SlaveAction::CancelRead { block })
            .collect()
    }

    /// Result of a [`SlaveAction::QueryJobLiveness`]: `dead` lists the
    /// queried jobs the scheduler could not confirm as running (their
    /// references are released) and `alive` the ones it could (their
    /// leases are renewed — the reply is the lease-renewal channel for
    /// jobs that hold references without generating any other traffic).
    pub fn on_liveness_result(
        &mut self,
        now: SimTime,
        dead: Vec<JobId>,
        alive: Vec<JobId>,
        mem: &mut MemStore<BlockId>,
    ) -> Vec<SlaveAction> {
        self.version += 1;
        self.liveness_pending = false;
        for job in dead {
            self.release_job(now, job, mem);
        }
        for job in alive {
            self.touch_lease(now, job);
        }
        self.try_start(now, mem)
    }

    /// Whether a liveness query is outstanding (no reply received yet).
    pub fn liveness_query_outstanding(&self) -> bool {
        self.liveness_pending
    }

    /// Verifies the slave's bookkeeping against the node's memory store.
    /// Used by the chaos harness after every event to catch corruption the
    /// moment it happens rather than at the end of a run.
    ///
    /// Checked invariants:
    /// * reference lists and migrated-resident blocks are in bijection, and
    ///   every list is non-empty (do-not-harm: nothing resident without a
    ///   referencing job, nothing evicted while referenced);
    /// * migrated bytes plus in-flight migration bytes never exceed the
    ///   configured buffer capacity (memory-accounting conservation);
    /// * a block is in at most one of {queued, in flight, resident};
    /// * the job → blocks interest index matches the waiters/references.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_consistency(&self, mem: &MemStore<BlockId>) -> Result<(), String> {
        let resident = mem.keys_with(Residency::Migrated);
        for block in &resident {
            match self.refs.get(block) {
                None => {
                    return Err(format!(
                        "node {:?}: migrated block {block:?} resident without a reference list",
                        self.node
                    ))
                }
                Some(list) if list.is_empty() => {
                    return Err(format!(
                        "node {:?}: migrated block {block:?} has an empty reference list",
                        self.node
                    ))
                }
                Some(_) => {}
            }
        }
        for block in self.refs.keys() {
            if mem.residency(&block) != Some(Residency::Migrated) {
                return Err(format!(
                    "node {:?}: reference list for {block:?} but block not migrated-resident",
                    self.node
                ));
            }
            if self.queue.contains_key(&block) || self.current.contains_key(&block) {
                return Err(format!(
                    "node {:?}: block {block:?} both resident and queued/in-flight",
                    self.node
                ));
            }
        }
        for block in self.queue.keys() {
            if self.current.contains_key(&block) {
                return Err(format!(
                    "node {:?}: block {block:?} both queued and in flight",
                    self.node
                ));
            }
        }
        let inflight: u64 = self.current.values().map(|c| c.bytes).sum();
        if mem.migrated_used() + inflight > self.config.buffer_capacity {
            return Err(format!(
                "node {:?}: buffer over budget: {} resident + {} in flight > {}",
                self.node,
                mem.migrated_used(),
                inflight,
                self.config.buffer_capacity
            ));
        }
        // Interest index consistency, both directions.
        for (job, blocks) in self.job_blocks.iter() {
            for block in blocks.iter() {
                let in_refs = self
                    .refs
                    .get(&block)
                    .is_some_and(|l| l.iter().any(|&(j, _)| j == job));
                let in_queue = self
                    .queue
                    .get(&block)
                    .is_some_and(|q| q.waiters.iter().any(|w| w.job == job));
                let in_cur = self
                    .current
                    .get(&block)
                    .is_some_and(|c| c.waiters.iter().any(|w| w.job == job));
                if !(in_refs || in_queue || in_cur) {
                    return Err(format!(
                        "node {:?}: interest index names ({job:?}, {block:?}) but no waiter/ref",
                        self.node
                    ));
                }
            }
        }
        let indexed = |job: JobId, block: &BlockId| {
            self.job_blocks.get(&job).is_some_and(|s| s.contains(block))
        };
        for (block, list) in self.refs.iter() {
            for &(job, _) in list {
                if !indexed(job, &block) {
                    return Err(format!(
                        "node {:?}: ref ({job:?}, {block:?}) missing from interest index",
                        self.node
                    ));
                }
            }
        }
        for (block, q) in self.queue.iter() {
            for w in &q.waiters {
                if !indexed(w.job, &block) {
                    return Err(format!(
                        "node {:?}: queued waiter ({:?}, {block:?}) missing from interest index",
                        self.node, w.job
                    ));
                }
            }
        }
        for (block, c) in self.current.iter() {
            for w in &c.waiters {
                if !indexed(w.job, &block) {
                    return Err(format!(
                        "node {:?}: in-flight waiter ({:?}, {block:?}) missing from interest index",
                        self.node, w.job
                    ));
                }
            }
        }
        // Lease bookkeeping: with leases enabled every interested job
        // carries exactly one lease; with them disabled the map is empty.
        if self.config.lease.is_some() {
            for job in self.job_blocks.keys() {
                if !self.lease_expiry.contains_key(&job) {
                    return Err(format!(
                        "node {:?}: interested {job:?} has no lease",
                        self.node
                    ));
                }
            }
            for job in self.lease_expiry.keys() {
                if !self.job_blocks.contains_key(&job) {
                    return Err(format!(
                        "node {:?}: lease for {job:?} outlives its interest",
                        self.node
                    ));
                }
            }
        } else if !self.lease_expiry.is_empty() {
            return Err(format!(
                "node {:?}: lease entries present with leases disabled",
                self.node
            ));
        }
        // Ledger conservation: what came in minus what went out is what is
        // resident right now.
        let resident_bytes = mem.migrated_used();
        if self
            .stats
            .migrated_bytes
            .checked_sub(self.stats.evicted_bytes)
            != Some(resident_bytes)
        {
            return Err(format!(
                "node {:?}: ledger out of balance: {} migrated - {} evicted != {} resident",
                self.node, self.stats.migrated_bytes, self.stats.evicted_bytes, resident_bytes
            ));
        }
        Ok(())
    }

    /// Releases every reference `job` holds: resident refs (evicting
    /// emptied blocks), queued waiters (discarding emptied entries) and
    /// in-flight waiters.
    fn release_job(&mut self, now: SimTime, job: JobId, mem: &mut MemStore<BlockId>) {
        self.lease_expiry.remove(&job);
        let Some(blocks) = self.job_blocks.remove(&job) else {
            return;
        };
        for block in blocks {
            if let Some(list) = self.refs.get_mut(&block) {
                list.retain(|&(j, _)| j != job);
                if list.is_empty() {
                    self.refs.remove(&block);
                    let bytes = mem.remove(now, &block).unwrap_or(0);
                    self.stats.evicted += 1;
                    self.stats.evicted_bytes += bytes;
                    self.metrics
                        .counter_add("evicted_bytes", self.node.0 as u64, bytes);
                    self.telemetry.emit(|| Event::BlockEvicted {
                        node: self.node.0,
                        block: block.0,
                        bytes,
                    });
                }
                continue;
            }
            if let Some(q) = self.queue.get_mut(&block) {
                q.waiters.retain(|w| w.job != job);
                if q.waiters.is_empty() {
                    self.queue.remove(&block);
                    self.stats.discarded += 1;
                    self.telemetry.emit(|| Event::MigrationDiscarded {
                        node: self.node.0,
                        block: block.0,
                    });
                }
                continue;
            }
            if let Some(cur) = self.current.get_mut(&block) {
                cur.waiters.retain(|w| w.job != job);
            }
        }
    }

    /// Work-conserving start: if idle, start the highest-priority queued
    /// migration that fits in the buffer. If space blocks progress past the
    /// cleanup threshold, query job liveness.
    fn try_start(&mut self, now: SimTime, mem: &mut MemStore<BlockId>) -> Vec<SlaveAction> {
        let mut actions = Vec::new();
        if self.current.len() >= self.config.max_concurrent_migrations || self.queue.is_empty() {
            return actions;
        }
        // Order candidate blocks by policy.
        let mut entries: Vec<(BlockId, QueueKey, u64)> = self
            .queue
            .iter()
            .map(|(b, q)| (b, q.key(), q.bytes))
            .collect();
        entries.sort_by(|a, b| self.config.policy.cmp(&a.1, &b.1));

        let mut blocked = false;
        for (block, _, bytes) in entries {
            if self.current.len() >= self.config.max_concurrent_migrations {
                break;
            }
            // Budget accounts for resident data plus reads in flight.
            let inflight_bytes: u64 = self.current.values().map(|c| c.bytes).sum();
            let budget_left = self
                .config
                .buffer_capacity
                .saturating_sub(mem.migrated_used())
                .saturating_sub(inflight_bytes);
            if bytes <= budget_left && bytes <= mem.available().saturating_sub(inflight_bytes) {
                let Some(q) = self.queue.remove(&block) else {
                    // `block` came from snapshotting `self.queue` just above
                    // and nothing removes entries in between; skip rather
                    // than panic if that ever changes (lint rule P01).
                    debug_assert!(false, "queued block vanished during start sweep");
                    continue;
                };
                self.current.insert(
                    block,
                    CurrentMigration {
                        bytes: q.bytes,
                        waiters: q.waiters,
                    },
                );
                actions.push(SlaveAction::StartRead {
                    block,
                    bytes: q.bytes,
                });
                self.telemetry.emit(|| Event::MigrationStarted {
                    node: self.node.0,
                    block: block.0,
                    bytes,
                });
                continue;
            }
            blocked = true;
        }
        if blocked {
            let occupancy = mem.migrated_used() as f64 / self.config.buffer_capacity as f64;
            // An outstanding query only suppresses re-querying within the
            // cooldown window: under an unreliable channel the reply may
            // be lost, and a permanently stuck `liveness_pending` would
            // block cleanup (and therefore progress) forever.
            let cooled = self
                .last_liveness
                .is_none_or(|t| now >= t + self.config.liveness_cooldown);
            if occupancy >= self.config.cleanup_threshold && cooled {
                self.liveness_pending = true;
                self.last_liveness = Some(now);
                self.stats.liveness_queries += 1;
                actions.push(SlaveAction::QueryJobLiveness {
                    jobs: self.interested_jobs(),
                });
            }
        }
        actions
    }

    /// Telemetry for a newly accepted `(job, block)` interest; dedup paths
    /// (idempotent redelivery) never reach this.
    fn emit_enqueued(&self, cmd: &MigrateCommand) {
        self.telemetry.emit(|| Event::MigrationEnqueued {
            node: self.node.0,
            job: cmd.job.0,
            block: cmd.block.0,
            bytes: cmd.bytes,
        });
        self.metrics.gauge_set(
            "migration_queue_depth",
            self.node.0 as u64,
            self.queue.len() as i64,
        );
    }

    fn index_interest(&mut self, job: JobId, block: BlockId) {
        self.job_blocks.entry_or_default(job).insert(block);
    }

    fn unindex_interest(&mut self, job: JobId, block: BlockId) {
        if let Some(set) = self.job_blocks.get_mut(&job) {
            set.remove(&block);
            if set.is_empty() {
                self.job_blocks.remove(&job);
                // The job's last interest is gone; its lease goes with it.
                self.lease_expiry.remove(&job);
            }
        }
    }

    /// Renews `job`'s lease if leases are enabled and the job still holds
    /// interest on this slave; a no-op otherwise (a lease may never outlive
    /// the interest it protects).
    fn touch_lease(&mut self, now: SimTime, job: JobId) {
        if let Some(lease) = self.config.lease {
            if self.job_blocks.contains_key(&job) {
                self.lease_expiry.insert(job, now + lease);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;
    use ignem_simcore::units::{GIB, MIB};

    const B64: u64 = 64 * MIB;

    fn slave() -> (IgnemSlave, MemStore<BlockId>) {
        (
            IgnemSlave::new(NodeId(0), IgnemConfig::default()),
            MemStore::new(128 * GIB),
        )
    }

    fn cmd(job: u64, block: u64, input: u64, submitted_s: u64) -> MigrateCommand {
        MigrateCommand {
            job: JobId(job),
            block: BlockId(block),
            bytes: B64,
            mode: EvictionMode::Explicit,
            job_input_bytes: input,
            submitted: SimTime::from_secs(submitted_s),
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn migrates_one_block_at_a_time() {
        let (mut s, mut mem) = slave();
        let actions = s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        assert_eq!(actions.len(), 1, "only one read at a time");
        assert!(s.is_migrating());
        assert_eq!(s.queue_len(), 1);
        // Completing the first starts the second (work-conserving).
        let SlaveAction::StartRead { block, .. } = actions[0].clone() else {
            panic!("expected StartRead");
        };
        let next = s.on_read_done(t(1), block, &mut mem);
        assert_eq!(next.len(), 1);
        assert!(mem.contains(&block));
    }

    #[test]
    fn smallest_job_first_ordering() {
        let (mut s, mut mem) = slave();
        // Big job arrives first, small job second; small must migrate first
        // once the current (big) block finishes.
        let a1 = s.enqueue(t(0), vec![cmd(1, 10, 100 * B64, 0)], &mut mem);
        s.enqueue(t(0), vec![cmd(1, 11, 100 * B64, 0)], &mut mem);
        s.enqueue(t(0), vec![cmd(2, 20, B64, 1)], &mut mem);
        assert_eq!(
            a1,
            vec![SlaveAction::StartRead {
                block: BlockId(10),
                bytes: B64
            }]
        );
        // No preemption: block 10 finishes, then the small job's block 20.
        let next = s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(
            next,
            vec![SlaveAction::StartRead {
                block: BlockId(20),
                bytes: B64
            }]
        );
    }

    #[test]
    fn fifo_policy_ignores_job_size() {
        let mut s = IgnemSlave::new(
            NodeId(0),
            IgnemConfig {
                policy: Policy::Fifo,
                ..IgnemConfig::default()
            },
        );
        let mut mem = MemStore::new(128 * GIB);
        s.enqueue(t(0), vec![cmd(1, 10, 100 * B64, 0)], &mut mem);
        s.enqueue(t(0), vec![cmd(1, 11, 100 * B64, 0)], &mut mem);
        s.enqueue(t(0), vec![cmd(2, 20, B64, 1)], &mut mem);
        let next = s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(
            next,
            vec![SlaveAction::StartRead {
                block: BlockId(11),
                bytes: B64
            }]
        );
    }

    #[test]
    fn reference_list_shared_by_jobs() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        // Second job asks for the same (now resident) block: dedup + ref.
        s.enqueue(t(2), vec![cmd(2, 10, B64, 2)], &mut mem);
        assert_eq!(s.stats().deduped, 1);
        assert_eq!(s.references(BlockId(10)).unwrap().len(), 2);
        // Evicting job 1 keeps the block; evicting job 2 releases it.
        s.on_evict_job(t(3), JobId(1), &mut mem);
        assert!(mem.contains(&BlockId(10)));
        s.on_evict_job(t(4), JobId(2), &mut mem);
        assert!(!mem.contains(&BlockId(10)));
        assert_eq!(s.stats().evicted, 1);
    }

    #[test]
    fn implicit_eviction_on_read() {
        let (mut s, mut mem) = slave();
        let mut c = cmd(1, 10, B64, 0);
        c.mode = EvictionMode::Implicit;
        s.enqueue(t(0), vec![c], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        assert!(mem.contains(&BlockId(10)));
        s.on_block_read(t(2), BlockId(10), JobId(1), &mut mem);
        assert!(!mem.contains(&BlockId(10)), "implicit eviction must fire");
    }

    #[test]
    fn explicit_mode_survives_reads() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        s.on_block_read(t(2), BlockId(10), JobId(1), &mut mem);
        assert!(
            mem.contains(&BlockId(10)),
            "explicit refs only die on evict"
        );
        s.on_evict_job(t(3), JobId(1), &mut mem);
        assert!(!mem.contains(&BlockId(10)));
    }

    #[test]
    fn missed_read_discards_queued_migration() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        // Job reads block 11 from disk before its migration starts.
        s.on_block_read(t(1), BlockId(11), JobId(1), &mut mem);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.stats().discarded, 1);
        // Completing block 10 should not start anything.
        let next = s.on_read_done(t(2), BlockId(10), &mut mem);
        assert!(next.is_empty());
    }

    #[test]
    fn read_during_flight_wastes_migration() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        // The job reads the block (from disk) while migration is in flight.
        s.on_block_read(t(1), BlockId(10), JobId(1), &mut mem);
        let next = s.on_read_done(t(2), BlockId(10), &mut mem);
        assert!(next.is_empty());
        assert!(!mem.contains(&BlockId(10)));
        assert_eq!(s.stats().wasted_reads, 1);
    }

    #[test]
    fn buffer_capacity_blocks_but_never_evicts() {
        // Do-not-harm: resident blocks are never evicted for new arrivals.
        let mut s = IgnemSlave::new(
            NodeId(0),
            IgnemConfig {
                buffer_capacity: B64, // exactly one block
                ..IgnemConfig::default()
            },
        );
        let mut mem = MemStore::new(128 * GIB);
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        assert!(mem.contains(&BlockId(10)));
        // Second block cannot start: buffer full; block 10 must stay.
        let actions = s.enqueue(t(2), vec![cmd(2, 11, B64, 2)], &mut mem);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, SlaveAction::StartRead { .. })));
        assert!(mem.contains(&BlockId(10)));
        assert_eq!(s.queue_len(), 1);
        // Once job 1 evicts, the queued migration starts (work-conserving).
        let next = s.on_evict_job(t(3), JobId(1), &mut mem);
        assert_eq!(
            next,
            vec![SlaveAction::StartRead {
                block: BlockId(11),
                bytes: B64
            }]
        );
    }

    #[test]
    fn threshold_triggers_liveness_query_once() {
        let mut s = IgnemSlave::new(
            NodeId(0),
            IgnemConfig {
                buffer_capacity: B64,
                cleanup_threshold: 0.5,
                ..IgnemConfig::default()
            },
        );
        let mut mem = MemStore::new(128 * GIB);
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        let a1 = s.enqueue(t(2), vec![cmd(2, 11, B64, 2)], &mut mem);
        assert_eq!(
            a1,
            vec![SlaveAction::QueryJobLiveness {
                jobs: vec![JobId(1), JobId(2)]
            }]
        );
        // No duplicate query while one is pending.
        let a2 = s.enqueue(t(3), vec![cmd(3, 12, B64, 3)], &mut mem);
        assert!(a2.is_empty());
        assert_eq!(s.stats().liveness_queries, 1);
        // Scheduler says job 1 is dead: its block is evicted and the next
        // migration starts.
        let a3 = s.on_liveness_result(t(4), vec![JobId(1)], vec![JobId(2)], &mut mem);
        assert!(!mem.contains(&BlockId(10)));
        assert!(matches!(a3[0], SlaveAction::StartRead { .. }));
    }

    #[test]
    fn master_failure_purges_references() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        // Block 11's migration is now in flight; 10 is resident.
        let actions = s.on_master_failed(t(2), Epoch(2), &mut mem);
        assert_eq!(s.epoch(), Epoch(2));
        assert!(!mem.contains(&BlockId(10)), "resident blocks purged");
        assert_eq!(s.queue_len(), 0);
        // The in-flight read is cancelled, not orphaned.
        assert_eq!(
            actions,
            vec![SlaveAction::CancelRead { block: BlockId(11) }]
        );
        assert!(!s.is_migrating());
        assert!(!mem.contains(&BlockId(11)));
    }

    #[test]
    fn slave_failure_cancels_and_purges() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        let actions = s.fail(t(2), &mut mem);
        assert_eq!(
            actions,
            vec![SlaveAction::CancelRead { block: BlockId(11) }]
        );
        assert_eq!(mem.migrated_used(), 0);
        assert!(!s.is_migrating());
        // The restarted slave accepts new commands.
        let next = s.enqueue(t(3), vec![cmd(2, 20, B64, 3)], &mut mem);
        assert!(matches!(next[0], SlaveAction::StartRead { .. }));
    }

    #[test]
    fn pinned_blocks_are_deduped_without_refs() {
        let (mut s, mut mem) = slave();
        mem.insert(t(0), BlockId(10), B64, Residency::Pinned)
            .unwrap();
        let actions = s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        assert!(actions.is_empty());
        assert_eq!(s.stats().deduped, 1);
        assert!(s.references(BlockId(10)).is_none());
        // Evicting the job must not touch the pinned block.
        s.on_evict_job(t(1), JobId(1), &mut mem);
        assert!(mem.contains(&BlockId(10)));
    }

    #[test]
    fn cached_blocks_are_deduped_like_pinned() {
        let (mut s, mut mem) = slave();
        assert!(mem.insert_cached(t(0), BlockId(10), B64));
        let actions = s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        assert!(actions.is_empty(), "no migration for a cached block");
        assert_eq!(s.stats().deduped, 1);
        assert!(s.references(BlockId(10)).is_none());
    }

    #[test]
    fn concurrent_migrations_when_configured() {
        let mut s = IgnemSlave::new(
            NodeId(0),
            IgnemConfig {
                max_concurrent_migrations: 3,
                ..IgnemConfig::default()
            },
        );
        let mut mem = MemStore::new(128 * GIB);
        let actions = s.enqueue(
            t(0),
            vec![
                cmd(1, 10, B64, 0),
                cmd(1, 11, B64, 0),
                cmd(1, 12, B64, 0),
                cmd(1, 13, B64, 0),
            ],
            &mut mem,
        );
        let reads = actions
            .iter()
            .filter(|a| matches!(a, SlaveAction::StartRead { .. }))
            .count();
        assert_eq!(reads, 3, "three concurrent reads allowed");
        assert_eq!(s.in_flight_migrations(), 3);
        assert_eq!(s.queue_len(), 1);
        // Completing one starts the fourth.
        let next = s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(next.len(), 1);
        assert_eq!(s.in_flight_migrations(), 3);
    }

    #[test]
    fn duplicate_request_while_in_flight_shares_read() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        let a = s.enqueue(t(0), vec![cmd(2, 10, B64, 0)], &mut mem);
        assert!(a.is_empty(), "no second read for the same block");
        s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(s.references(BlockId(10)).unwrap().len(), 2);
    }

    #[test]
    fn work_conserving_smaller_block_skips_blocked_larger() {
        // A huge queued block that doesn't fit must not stall a small one
        // that does.
        let mut s = IgnemSlave::new(
            NodeId(0),
            IgnemConfig {
                buffer_capacity: 2 * B64,
                ..IgnemConfig::default()
            },
        );
        let mut mem = MemStore::new(128 * GIB);
        // Resident block eats half the budget.
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        // Job 2 (smaller input) wants a block bigger than remaining budget;
        // job 3 wants one that fits.
        let mut big = cmd(2, 11, B64, 2);
        big.bytes = 2 * B64;
        let actions = s.enqueue(t(2), vec![big, cmd(3, 12, 10 * B64, 3)], &mut mem);
        assert!(
            actions.contains(&SlaveAction::StartRead {
                block: BlockId(12),
                bytes: B64
            }),
            "should skip the blocked larger block: {actions:?}"
        );
    }

    #[test]
    fn stats_track_migrated_bytes() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(s.stats().migrated, 1);
        assert_eq!(s.stats().migrated_bytes, B64);
    }

    #[test]
    fn completion_without_flight_is_absorbed() {
        let (mut s, mut mem) = slave();
        let out = s.on_read_done(t(0), BlockId(1), &mut mem);
        assert!(out.is_empty());
        assert_eq!(s.stats().migrated, 0);
    }

    fn leased_slave(lease_s: u64) -> (IgnemSlave, MemStore<BlockId>) {
        (
            IgnemSlave::new(
                NodeId(0),
                IgnemConfig {
                    lease: Some(SimDuration::from_secs(lease_s)),
                    ..IgnemConfig::default()
                },
            ),
            MemStore::new(128 * GIB),
        )
    }

    #[test]
    fn stale_epoch_is_rejected_idempotently() {
        let (mut s, mut mem) = slave();
        assert_eq!(s.epoch(), Epoch::FIRST);
        s.on_master_failed(t(1), Epoch(3), &mut mem);
        // A retransmission stamped with the dead incarnation's epoch.
        assert_eq!(s.observe_epoch(t(2), Epoch(1), &mut mem), None);
        assert_eq!(s.observe_epoch(t(2), Epoch(2), &mut mem), None);
        assert_eq!(s.stats().stale_epochs, 2);
        // The current epoch and a newer one are both accepted.
        assert_eq!(s.observe_epoch(t(2), Epoch(3), &mut mem), Some(vec![]));
        assert!(s.observe_epoch(t(2), Epoch(4), &mut mem).is_some());
        assert_eq!(s.epoch(), Epoch(4));
    }

    #[test]
    fn newer_epoch_purges_like_a_missed_failover() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        // The slave never heard about the failover; the first message from
        // the new incarnation triggers the §III-A5 purge.
        let actions = s.observe_epoch(t(2), Epoch(2), &mut mem).unwrap();
        assert_eq!(
            actions,
            vec![SlaveAction::CancelRead { block: BlockId(11) }]
        );
        assert!(!mem.contains(&BlockId(10)));
        assert_eq!(s.total_references(), 0);
        assert_eq!(s.epoch(), Epoch(2));
        assert_eq!(s.stats().purges, 1);
    }

    #[test]
    fn slave_restart_keeps_observed_epoch() {
        let (mut s, mut mem) = slave();
        s.on_master_failed(t(1), Epoch(5), &mut mem);
        s.fail(t(2), &mut mem);
        assert_eq!(s.epoch(), Epoch(5));
        assert_eq!(s.observe_epoch(t(3), Epoch(4), &mut mem), None);
    }

    #[test]
    fn unrenewed_lease_expires_and_releases_references() {
        let (mut s, mut mem) = leased_slave(10);
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        // Lease restarted at materialization (t=1) -> expires at t=11.
        assert_eq!(s.next_lease_expiry(), Some(t(11)));
        assert!(s.expire_leases(t(10), &mut mem).is_empty());
        assert!(mem.contains(&BlockId(10)), "lease still live at t=10");
        s.expire_leases(t(11), &mut mem);
        assert!(!mem.contains(&BlockId(10)), "expired lease evicts");
        assert_eq!(s.total_references(), 0);
        assert_eq!(s.stats().lease_expiries, 1);
        assert_eq!(s.next_lease_expiry(), None);
        s.check_consistency(&mem).unwrap();
    }

    #[test]
    fn reads_and_liveness_replies_renew_leases() {
        let (mut s, mut mem) = leased_slave(10);
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        // The job reads the block at t=9: lease renewed to t=19.
        s.on_block_read(t(9), BlockId(10), JobId(1), &mut mem);
        assert_eq!(s.next_lease_expiry(), Some(t(19)));
        assert!(s.expire_leases(t(12), &mut mem).is_empty());
        assert!(mem.contains(&BlockId(10)));
        // A liveness reply listing the job alive renews again.
        s.on_liveness_result(t(18), vec![], vec![JobId(1)], &mut mem);
        assert_eq!(s.next_lease_expiry(), Some(t(28)));
        // An explicit evict retires the lease with the references.
        s.on_evict_job(t(20), JobId(1), &mut mem);
        assert_eq!(s.next_lease_expiry(), None);
        s.check_consistency(&mem).unwrap();
    }

    #[test]
    fn lease_expiry_strips_queued_and_inflight_interest() {
        let (mut s, mut mem) = leased_slave(5);
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        // Block 10 in flight, block 11 queued; nothing renews the lease.
        s.expire_leases(t(5), &mut mem);
        assert_eq!(s.queue_len(), 0, "queued interest discarded");
        assert_eq!(s.stats().lease_expiries, 1);
        // The in-flight read completes with no waiters: wasted, not leaked.
        s.on_read_done(t(6), BlockId(10), &mut mem);
        assert_eq!(s.stats().wasted_reads, 1);
        assert_eq!(s.total_references(), 0);
        s.check_consistency(&mem).unwrap();
    }

    #[test]
    fn leases_disabled_keeps_map_empty() {
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(s.next_lease_expiry(), None);
        assert!(s.expire_leases(t(100), &mut mem).is_empty());
        assert!(mem.contains(&BlockId(10)), "no lease, no expiry");
        s.check_consistency(&mem).unwrap();
    }

    #[test]
    fn purge_during_inflight_migration_balances_ledger() {
        // Satellite regression: a purge while a migration is in flight must
        // leave counters and the byte ledger consistent — the resident
        // block is debited, the in-flight one is cancelled (never credited).
        let (mut s, mut mem) = slave();
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0), cmd(1, 11, B64, 0)], &mut mem);
        s.on_read_done(t(1), BlockId(10), &mut mem);
        assert_eq!(s.stats().migrated_bytes, B64);
        let actions = s.on_master_failed(t(2), Epoch(2), &mut mem);
        assert_eq!(
            actions,
            vec![SlaveAction::CancelRead { block: BlockId(11) }]
        );
        let st = s.stats();
        assert_eq!(st.purges, 1);
        assert_eq!(st.evicted, 1, "purge counts the eviction");
        assert_eq!(st.evicted_bytes, B64);
        assert_eq!(st.migrated_bytes - st.evicted_bytes, mem.migrated_used());
        s.check_consistency(&mem).unwrap();
        // Same property across a slave restart with a resident block.
        s.enqueue(t(3), vec![cmd(2, 20, B64, 3)], &mut mem);
        s.on_read_done(t(4), BlockId(20), &mut mem);
        s.fail(t(5), &mut mem);
        let st = s.stats();
        assert_eq!(st.evicted, 2);
        assert_eq!(st.migrated_bytes, st.evicted_bytes);
        assert_eq!(mem.migrated_used(), 0);
        s.check_consistency(&mem).unwrap();
    }

    #[test]
    fn restart_bumps_incarnation_and_fences_stale_sends() {
        let (mut s, mut mem) = slave();
        assert_eq!(s.incarnation(), Incarnation::FIRST);
        // A send stamped with the boot incarnation is accepted.
        assert!(s.observe_incarnation(Incarnation::FIRST));
        // Crash + restart: the host wipes state via fail(), then restart()
        // mints the next incarnation.
        s.enqueue(t(0), vec![cmd(1, 10, B64, 0)], &mut mem);
        s.fail(t(1), &mut mem);
        let fresh = s.restart();
        assert_eq!(fresh, Incarnation(2));
        assert_eq!(s.incarnation(), fresh);
        // A retransmission stamped with the pre-crash incarnation is stale.
        assert!(!s.observe_incarnation(Incarnation::FIRST));
        assert_eq!(s.stats().stale_incarnations, 1);
        // Current and future stamps still pass (future = master restarted us
        // again before this delivery arrived; accept, never regress).
        assert!(s.observe_incarnation(fresh));
        assert!(s.observe_incarnation(fresh.next()));
        s.check_consistency(&mem).unwrap();
    }

    #[test]
    fn stale_incarnation_rejection_emits_telemetry() {
        use ignem_simcore::telemetry::{FlightRecorder, Telemetry};
        let (mut s, _mem) = slave();
        let recorder = FlightRecorder::new(16);
        s.set_telemetry(Telemetry::new(Box::new(recorder.clone())));
        s.restart();
        assert!(!s.observe_incarnation(Incarnation::FIRST));
        let kinds: Vec<&str> = recorder.events().iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["incarnation_rejected"]);
    }

    /// Property test (in-tree rng): across random command/read/evict/fault
    /// schedules, no `(job, block)` reference survives both the job's
    /// completion (explicit evict) and its lease expiry, and the slave's
    /// bookkeeping stays internally consistent after every step.
    #[test]
    fn property_no_reference_survives_completion_and_lease_expiry() {
        use ignem_simcore::rng::SimRng;

        for seed in 0..64u64 {
            let mut rng = SimRng::new(0x1EA5_E000 ^ seed);
            let lease = SimDuration::from_secs(8);
            let (mut s, mut mem) = leased_slave(8);
            let mut now = SimTime::ZERO;
            let mut inflight: Vec<BlockId> = Vec::new();
            let mut evicted_jobs: BTreeSet<JobId> = BTreeSet::new();
            for step in 0..200u64 {
                now += SimDuration::from_millis(1 + rng.index(1999) as u64);
                let job = JobId(rng.index(6) as u64);
                let block = BlockId(rng.index(12) as u64);
                match rng.index(10) {
                    0..=3 => {
                        let mut c = cmd(job.0, block.0, B64 * (1 + job.0), step % 7);
                        if rng.uniform() < 0.5 {
                            c.mode = EvictionMode::Implicit;
                        }
                        // A command resurrects the job from this harness's
                        // point of view (a re-submission).
                        evicted_jobs.remove(&job);
                        for a in s.enqueue(now, vec![c], &mut mem) {
                            if let SlaveAction::StartRead { block, .. } = a {
                                inflight.push(block);
                            }
                        }
                    }
                    4..=5 => {
                        if !inflight.is_empty() {
                            let b = inflight.remove(rng.index(inflight.len()));
                            for a in s.on_read_done(now, b, &mut mem) {
                                if let SlaveAction::StartRead { block, .. } = a {
                                    inflight.push(block);
                                }
                            }
                        }
                    }
                    6 => {
                        s.on_block_read(now, block, job, &mut mem);
                    }
                    7 => {
                        evicted_jobs.insert(job);
                        s.on_evict_job(now, job, &mut mem);
                    }
                    8 => {
                        for a in s.expire_leases(now, &mut mem) {
                            if let SlaveAction::StartRead { block, .. } = a {
                                inflight.push(block);
                            }
                        }
                    }
                    _ => {
                        let dead = if rng.uniform() < 0.5 {
                            vec![job]
                        } else {
                            vec![]
                        };
                        if dead.contains(&job) {
                            evicted_jobs.insert(job);
                        }
                        for a in s.on_liveness_result(now, dead, vec![], &mut mem) {
                            if let SlaveAction::StartRead { block, .. } = a {
                                inflight.push(block);
                            }
                        }
                    }
                }
                s.check_consistency(&mem)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                // An evicted job's references may linger only until its
                // lease runs out, never past it.
                for job in &evicted_jobs {
                    if let Some(list) = s
                        .refs
                        .iter()
                        .find(|(_, l)| l.iter().any(|&(j, _)| j == *job))
                    {
                        let expiry = s.lease_expiry.get(job).copied();
                        assert!(
                            expiry.is_some(),
                            "seed {seed} step {step}: completed {job:?} holds ref on \
                             {:?} with no lease",
                            list.0
                        );
                    }
                }
            }
            // Drain: complete in-flight reads, then let every lease lapse.
            for b in inflight.drain(..) {
                s.on_read_done(now, b, &mut mem);
            }
            let deadline = now + lease + SimDuration::from_secs(1);
            s.expire_leases(deadline, &mut mem);
            assert_eq!(
                s.total_references(),
                0,
                "seed {seed}: references survived job completion + lease expiry"
            );
            assert_eq!(mem.migrated_used(), 0, "seed {seed}: resident bytes leaked");
            s.check_consistency(&mem).unwrap();
        }
    }
}
