//! Migration-queue scheduling policies.
//!
//! Ignem slaves do **not** drain their migration queue FIFO: they
//! "prioritize migration for blocks belonging to jobs with smaller input
//! sizes … If two jobs have exactly the same input size we use job
//! submission time as a tie-breaker" (§III-A1). Disabling this
//! prioritization costs ~15% of Ignem's benefit in the paper's §IV-C-5
//! ablation, which `bench`'s `ablation-priority` experiment reproduces via
//! [`Policy::Fifo`].

use ignem_simcore::time::SimTime;

/// Sort key describing one queued migration for policy decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueKey {
    /// Smallest total input size among jobs waiting on this block.
    pub job_input_bytes: u64,
    /// Earliest submission time among those jobs.
    pub submitted: SimTime,
    /// Arrival order of the command at this slave (FIFO key).
    pub arrival: u64,
}

/// The queue-ordering policy of a slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// The paper's default: smallest job input first, submission-time
    /// tie-break, arrival order as the final tie-break.
    #[default]
    SmallestJobFirst,
    /// Plain arrival order (the §IV-C-5 ablation).
    Fifo,
    /// The paper's §IV-E **future-work** idea, implemented here: "a
    /// migration scheme that can infer the Ignem speed-up curve for
    /// different jobs can potentially use this information to prioritize
    /// jobs which will benefit more." The speed-up curve peaks where a
    /// job's input just fits what migration can deliver within the
    /// lead-time (`sweet_spot_bytes`): below it, bigger jobs gain more
    /// absolute time; above it, the migratable fraction shrinks. The
    /// policy therefore serves fully-migratable jobs largest-first, then
    /// over-sized jobs smallest-first.
    BenefitAware {
        /// Estimated input size migration can fully cover in the typical
        /// lead-time (disks × migration rate × lead-time).
        sweet_spot_bytes: u64,
    },
}

impl Policy {
    /// Compares two queued migrations; the **lesser** is migrated first.
    pub fn cmp(&self, a: &QueueKey, b: &QueueKey) -> std::cmp::Ordering {
        match self {
            Policy::SmallestJobFirst => a
                .job_input_bytes
                .cmp(&b.job_input_bytes)
                .then(a.submitted.cmp(&b.submitted))
                .then(a.arrival.cmp(&b.arrival)),
            Policy::Fifo => a.arrival.cmp(&b.arrival),
            Policy::BenefitAware { sweet_spot_bytes } => {
                let class = |k: &QueueKey| k.job_input_bytes > *sweet_spot_bytes;
                let rank = |k: &QueueKey| {
                    if k.job_input_bytes <= *sweet_spot_bytes {
                        // Fully migratable: larger input = larger benefit.
                        sweet_spot_bytes - k.job_input_bytes
                    } else {
                        // Oversized: smaller input = larger covered fraction.
                        k.job_input_bytes
                    }
                };
                class(a)
                    .cmp(&class(b))
                    .then(rank(a).cmp(&rank(b)))
                    .then(a.submitted.cmp(&b.submitted))
                    .then(a.arrival.cmp(&b.arrival))
            }
        }
    }

    /// Index of the entry to migrate next, or `None` if the queue is empty.
    pub fn select(&self, keys: &[QueueKey]) -> Option<usize> {
        keys.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| self.cmp(a, b))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(input: u64, sub_us: u64, arrival: u64) -> QueueKey {
        QueueKey {
            job_input_bytes: input,
            submitted: SimTime::from_micros(sub_us),
            arrival,
        }
    }

    #[test]
    fn smallest_job_first_prefers_small_inputs() {
        let keys = vec![key(500, 0, 0), key(100, 10, 1), key(300, 5, 2)];
        assert_eq!(Policy::SmallestJobFirst.select(&keys), Some(1));
    }

    #[test]
    fn submission_time_breaks_ties() {
        let keys = vec![key(100, 20, 0), key(100, 10, 1)];
        assert_eq!(Policy::SmallestJobFirst.select(&keys), Some(1));
    }

    #[test]
    fn arrival_breaks_remaining_ties() {
        let keys = vec![key(100, 10, 5), key(100, 10, 2)];
        assert_eq!(Policy::SmallestJobFirst.select(&keys), Some(1));
    }

    #[test]
    fn fifo_ignores_sizes() {
        let keys = vec![key(500, 0, 0), key(100, 10, 1)];
        assert_eq!(Policy::Fifo.select(&keys), Some(0));
    }

    #[test]
    fn empty_queue_selects_none() {
        assert_eq!(Policy::SmallestJobFirst.select(&[]), None);
        assert_eq!(Policy::Fifo.select(&[]), None);
    }

    #[test]
    fn default_is_smallest_job_first() {
        assert_eq!(Policy::default(), Policy::SmallestJobFirst);
    }

    #[test]
    fn benefit_aware_prefers_largest_fully_migratable() {
        let p = Policy::BenefitAware {
            sweet_spot_bytes: 1000,
        };
        // All three below the sweet spot: largest wins.
        let keys = vec![key(200, 0, 0), key(900, 0, 1), key(500, 0, 2)];
        assert_eq!(p.select(&keys), Some(1));
    }

    #[test]
    fn benefit_aware_demotes_oversized_jobs() {
        let p = Policy::BenefitAware {
            sweet_spot_bytes: 1000,
        };
        // An oversized job loses to any fully-migratable one...
        let keys = vec![key(5000, 0, 0), key(10, 0, 1)];
        assert_eq!(p.select(&keys), Some(1));
        // ...and among oversized jobs, the smaller wins.
        let keys = vec![key(5000, 0, 0), key(2000, 0, 1)];
        assert_eq!(p.select(&keys), Some(1));
    }
}
