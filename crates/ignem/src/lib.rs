//! # ignem-core — upward migration of cold data
//!
//! The paper's contribution: a master–slave framework that migrates a job's
//! **cold input data** from disk into memory during the job's *lead-time*
//! (queueing delay, scheduler heartbeats, JVM warm-up), so the job's map
//! tasks read from RAM instead of a cold, contended disk.
//!
//! * [`command`] — the client/master/slave protocol (migrate & evict,
//!   batched per slave).
//! * [`master`] — file → block resolution, single-replica choice, per-job
//!   eviction routing, soft-state failure semantics.
//! * [`slave`] — the migration queue (one block at a time,
//!   smallest-job-first), reference-list eviction (explicit & implicit),
//!   memory threshold + dead-job cleanup, do-not-harm, purge-on-failure.
//! * [`policy`] — queue ordering (the §IV-C-5 prioritization ablation).
//!
//! The crate is pure protocol + policy logic: timing (how long the
//! migration read takes, how much lead-time exists) comes from the
//! `ignem-cluster` simulation that hosts these components.
//!
//! ```
//! use ignem_core::prelude::*;
//! use ignem_dfs::prelude::*;
//! use ignem_netsim::NodeId;
//! use ignem_simcore::{rng::SimRng, time::SimTime};
//! use ignem_storage::memstore::MemStore;
//!
//! // A minimal end-to-end protocol walk on one node.
//! let mut nn = NameNode::new(DfsConfig { block_size: 64 << 20, replication: 1 });
//! nn.register_node(NodeId(0));
//! let mut rng = SimRng::new(7);
//! nn.create_file("/input", 64 << 20, &mut rng)?;
//!
//! let mut master = IgnemMaster::new();
//! let mut slave = IgnemSlave::new(NodeId(0), IgnemConfig::default());
//! let mut mem: MemStore<BlockId> = MemStore::new(1 << 34);
//!
//! let batches = master.handle_migrate(&MigrateRequest {
//!     job: JobId(1),
//!     files: vec!["/input".into()],
//!     mode: EvictionMode::Explicit,
//!     submitted: SimTime::ZERO,
//! }, &nn, &mut rng)?;
//!
//! // The cluster layer would turn StartRead into a disk request; here we
//! // complete it immediately.
//! let actions = slave.enqueue(SimTime::ZERO, batches[0].migrates.clone(), &mut mem);
//! let SlaveAction::StartRead { block, .. } = actions[0] else { panic!() };
//! slave.on_read_done(SimTime::from_secs(1), block, &mut mem);
//! assert!(mem.contains(&block)); // the job's read will now hit memory
//! # Ok::<(), ignem_dfs::error::DfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod master;
pub mod policy;
pub mod slave;

/// Commonly used items.
pub mod prelude {
    pub use crate::command::{EvictionMode, JobId, MigrateCommand, MigrateRequest, SlaveBatch};
    pub use crate::master::{IgnemMaster, MasterStats};
    pub use crate::policy::{Policy, QueueKey};
    pub use crate::slave::{IgnemConfig, IgnemSlave, SlaveAction, SlaveStats};
}

pub use command::{EvictionMode, JobId, MigrateCommand, MigrateRequest, SlaveBatch};
pub use master::IgnemMaster;
pub use policy::Policy;
pub use slave::{IgnemConfig, IgnemSlave, SlaveAction};
