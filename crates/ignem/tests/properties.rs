//! Property-based tests for Ignem's buffer-leak-freedom and consistency
//! invariants (paper §III-A4: "How does Ignem avoid memory leaks in its
//! migration buffer?").

use ignem_core::command::{EvictionMode, JobId, MigrateCommand};
use ignem_core::policy::Policy;
use ignem_core::slave::{IgnemConfig, IgnemSlave, SlaveAction};
use ignem_dfs::block::BlockId;
use ignem_netsim::NodeId;
use ignem_simcore::time::SimTime;
use ignem_storage::memstore::MemStore;
use proptest::prelude::*;

const MIB: u64 = 1 << 20;
const B64: u64 = 64 * MIB;

/// A randomly generated slave interaction step.
#[derive(Debug, Clone)]
enum Step {
    Migrate { job: u64, block: u64, input: u64 },
    CompleteRead,
    EvictJob { job: u64 },
    ReadBlock { job: u64, block: u64 },
    MasterFail,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u64..6, 0u64..12, 1u64..50).prop_map(|(job, block, input)| Step::Migrate {
            job,
            block,
            input: input * B64,
        }),
        4 => Just(Step::CompleteRead),
        2 => (0u64..6).prop_map(|job| Step::EvictJob { job }),
        2 => (0u64..6, 0u64..12).prop_map(|(job, block)| Step::ReadBlock { job, block }),
        1 => Just(Step::MasterFail),
    ]
}

/// Drives a slave through an arbitrary interaction sequence, mirroring what
/// the cluster layer would do, while checking invariants at each step.
fn run_steps(steps: Vec<Step>, policy: Policy, implicit: bool) -> Result<(), TestCaseError> {
    let mut slave = IgnemSlave::new(
        NodeId(0),
        IgnemConfig {
            buffer_capacity: 4 * B64, // tight, to exercise blocking
            cleanup_threshold: 0.5,
            policy,
            ..IgnemConfig::default()
        },
    );
    let mut mem: MemStore<BlockId> = MemStore::new(8 * B64);
    let mut in_flight: Option<BlockId> = None;
    let mut cancelled = false;
    let mut clock = 0u64;
    let mode = if implicit {
        EvictionMode::Implicit
    } else {
        EvictionMode::Explicit
    };

    let handle = |actions: Vec<SlaveAction>,
                      in_flight: &mut Option<BlockId>,
                      cancelled: &mut bool| {
        for a in actions {
            match a {
                SlaveAction::StartRead { block, .. } => {
                    assert!(in_flight.is_none(), "two concurrent migration reads");
                    *in_flight = Some(block);
                    *cancelled = false;
                }
                SlaveAction::CancelRead { block } => {
                    assert_eq!(*in_flight, Some(block));
                    *in_flight = None;
                    *cancelled = true;
                }
                SlaveAction::QueryJobLiveness { .. } => {}
            }
        }
    };

    for step in steps {
        clock += 1;
        let now = SimTime::from_secs(clock);
        let actions = match step {
            Step::Migrate { job, block, input } => slave.enqueue(
                now,
                vec![MigrateCommand {
                    job: JobId(job),
                    block: BlockId(block),
                    bytes: B64,
                    mode,
                    job_input_bytes: input,
                    submitted: now,
                }],
                &mut mem,
            ),
            Step::CompleteRead => match in_flight.take() {
                Some(block) => slave.on_read_done(now, block, &mut mem),
                None => continue,
            },
            Step::EvictJob { job } => slave.on_evict_job(now, JobId(job), &mut mem),
            Step::ReadBlock { job, block } => {
                slave.on_block_read(now, BlockId(block), JobId(job), &mut mem)
            }
            Step::MasterFail => slave.on_master_failed(now, &mut mem),
        };
        handle(actions, &mut in_flight, &mut cancelled);

        // INVARIANT: one migration at a time.
        prop_assert_eq!(slave.is_migrating(), in_flight.is_some());
        // INVARIANT: every resident migrated block has a non-empty ref list.
        prop_assert_eq!(
            mem.migrated_used() as usize / B64 as usize,
            count_ref_blocks(&slave),
            "resident migrated blocks must equal ref-listed blocks"
        );
        // INVARIANT: migrated bytes never exceed the configured budget.
        prop_assert!(mem.migrated_used() <= 4 * B64);
    }

    // Drain: finish any in-flight read, then evict every job. The buffer
    // must come back to zero — no leaks.
    clock += 1;
    if let Some(block) = in_flight.take() {
        let a = slave.on_read_done(SimTime::from_secs(clock), block, &mut mem);
        handle(a, &mut in_flight, &mut cancelled);
        // Completion may start another; keep finishing.
        while let Some(b) = in_flight.take() {
            clock += 1;
            let a = slave.on_read_done(SimTime::from_secs(clock), b, &mut mem);
            handle(a, &mut in_flight, &mut cancelled);
        }
    }
    for job in 0..6u64 {
        clock += 1;
        let a = slave.on_evict_job(SimTime::from_secs(clock), JobId(job), &mut mem);
        handle(a, &mut in_flight, &mut cancelled);
        while let Some(b) = in_flight.take() {
            clock += 1;
            let a = slave.on_read_done(SimTime::from_secs(clock), b, &mut mem);
            handle(a, &mut in_flight, &mut cancelled);
        }
    }
    prop_assert_eq!(mem.migrated_used(), 0, "migration buffer leaked");
    Ok(())
}

fn count_ref_blocks(slave: &IgnemSlave) -> usize {
    // Resident blocks are exactly those with a reference list; probe the
    // visible block-id space.
    (0..12u64)
        .filter(|&b| slave.references(BlockId(b)).is_some())
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_leak_explicit_sjf(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        run_steps(steps, Policy::SmallestJobFirst, false)?;
    }

    #[test]
    fn no_leak_implicit_sjf(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        run_steps(steps, Policy::SmallestJobFirst, true)?;
    }

    #[test]
    fn no_leak_explicit_fifo(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        run_steps(steps, Policy::Fifo, false)?;
    }
}
