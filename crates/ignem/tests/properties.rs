//! Randomized (deterministic, seeded) tests for Ignem's buffer-leak-freedom
//! and consistency invariants (paper §III-A4: "How does Ignem avoid memory
//! leaks in its migration buffer?"), plus directed recovery-path tests:
//! master failover, slave restart mid-migration, and duplicate command
//! delivery (an unreliable RPC channel may retransmit).

use ignem_core::command::{EvictionMode, JobId, MigrateCommand};
use ignem_core::policy::Policy;
use ignem_core::slave::{IgnemConfig, IgnemSlave, SlaveAction};
use ignem_dfs::block::BlockId;
use ignem_netsim::rpc::Epoch;
use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimTime;
use ignem_storage::memstore::MemStore;

const MIB: u64 = 1 << 20;
const B64: u64 = 64 * MIB;
const CASES: u64 = 64;

/// A randomly generated slave interaction step.
#[derive(Debug, Clone)]
enum Step {
    Migrate { job: u64, block: u64, input: u64 },
    CompleteRead,
    EvictJob { job: u64 },
    ReadBlock { job: u64, block: u64 },
    MasterFail,
}

/// Mirrors the old proptest weights (4/4/2/2/1) with a seeded generator.
fn gen_steps(rng: &mut SimRng) -> Vec<Step> {
    let n = 1 + rng.index(59);
    (0..n)
        .map(|_| match rng.index(13) {
            0..=3 => Step::Migrate {
                job: rng.next_u64() % 6,
                block: rng.next_u64() % 12,
                input: (1 + rng.next_u64() % 49) * B64,
            },
            4..=7 => Step::CompleteRead,
            8..=9 => Step::EvictJob {
                job: rng.next_u64() % 6,
            },
            10..=11 => Step::ReadBlock {
                job: rng.next_u64() % 6,
                block: rng.next_u64() % 12,
            },
            _ => Step::MasterFail,
        })
        .collect()
}

fn tight_slave(policy: Policy) -> (IgnemSlave, MemStore<BlockId>) {
    let slave = IgnemSlave::new(
        NodeId(0),
        IgnemConfig {
            buffer_capacity: 4 * B64, // tight, to exercise blocking
            cleanup_threshold: 0.5,
            policy,
            ..IgnemConfig::default()
        },
    );
    let mem: MemStore<BlockId> = MemStore::new(8 * B64);
    (slave, mem)
}

/// Drives a slave through an arbitrary interaction sequence, mirroring what
/// the cluster layer would do, while checking invariants at each step.
fn run_steps(seed: u64, steps: Vec<Step>, policy: Policy, implicit: bool) {
    let (mut slave, mut mem) = tight_slave(policy);
    let mut in_flight: Option<BlockId> = None;
    let mut cancelled = false;
    let mut clock = 0u64;
    let mode = if implicit {
        EvictionMode::Implicit
    } else {
        EvictionMode::Explicit
    };

    let handle =
        |actions: Vec<SlaveAction>, in_flight: &mut Option<BlockId>, cancelled: &mut bool| {
            for a in actions {
                match a {
                    SlaveAction::StartRead { block, .. } => {
                        assert!(in_flight.is_none(), "two concurrent migration reads");
                        *in_flight = Some(block);
                        *cancelled = false;
                    }
                    SlaveAction::CancelRead { block } => {
                        assert_eq!(*in_flight, Some(block));
                        *in_flight = None;
                        *cancelled = true;
                    }
                    SlaveAction::QueryJobLiveness { .. } => {}
                }
            }
        };

    for step in steps {
        clock += 1;
        let now = SimTime::from_secs(clock);
        let actions = match step {
            Step::Migrate { job, block, input } => slave.enqueue(
                now,
                vec![MigrateCommand {
                    job: JobId(job),
                    block: BlockId(block),
                    bytes: B64,
                    mode,
                    job_input_bytes: input,
                    submitted: now,
                }],
                &mut mem,
            ),
            Step::CompleteRead => match in_flight.take() {
                Some(block) => slave.on_read_done(now, block, &mut mem),
                None => continue,
            },
            Step::EvictJob { job } => slave.on_evict_job(now, JobId(job), &mut mem),
            Step::ReadBlock { job, block } => {
                slave.on_block_read(now, BlockId(block), JobId(job), &mut mem)
            }
            Step::MasterFail => {
                let next = slave.epoch().next();
                slave.on_master_failed(now, next, &mut mem)
            }
        };
        handle(actions, &mut in_flight, &mut cancelled);

        // INVARIANT: one migration at a time.
        assert_eq!(slave.is_migrating(), in_flight.is_some(), "seed {seed}");
        // INVARIANT: every resident migrated block has a non-empty ref list.
        assert_eq!(
            mem.migrated_used() as usize / B64 as usize,
            count_ref_blocks(&slave),
            "seed {seed}: resident migrated blocks must equal ref-listed blocks"
        );
        // INVARIANT: migrated bytes never exceed the configured budget.
        assert!(mem.migrated_used() <= 4 * B64, "seed {seed}");
    }

    // Drain: finish any in-flight read, then evict every job. The buffer
    // must come back to zero — no leaks.
    clock += 1;
    if let Some(block) = in_flight.take() {
        let a = slave.on_read_done(SimTime::from_secs(clock), block, &mut mem);
        handle(a, &mut in_flight, &mut cancelled);
        // Completion may start another; keep finishing.
        while let Some(b) = in_flight.take() {
            clock += 1;
            let a = slave.on_read_done(SimTime::from_secs(clock), b, &mut mem);
            handle(a, &mut in_flight, &mut cancelled);
        }
    }
    for job in 0..6u64 {
        clock += 1;
        let a = slave.on_evict_job(SimTime::from_secs(clock), JobId(job), &mut mem);
        handle(a, &mut in_flight, &mut cancelled);
        while let Some(b) = in_flight.take() {
            clock += 1;
            let a = slave.on_read_done(SimTime::from_secs(clock), b, &mut mem);
            handle(a, &mut in_flight, &mut cancelled);
        }
    }
    assert_eq!(
        mem.migrated_used(),
        0,
        "seed {seed}: migration buffer leaked"
    );
}

fn count_ref_blocks(slave: &IgnemSlave) -> usize {
    // Resident blocks are exactly those with a reference list; probe the
    // visible block-id space.
    (0..12u64)
        .filter(|&b| slave.references(BlockId(b)).is_some())
        .count()
}

#[test]
fn no_leak_explicit_sjf() {
    for seed in 0..CASES {
        let steps = gen_steps(&mut SimRng::new(0x16E3_0001 ^ seed));
        run_steps(seed, steps, Policy::SmallestJobFirst, false);
    }
}

#[test]
fn no_leak_implicit_sjf() {
    for seed in 0..CASES {
        let steps = gen_steps(&mut SimRng::new(0x16E3_0002 ^ seed));
        run_steps(seed, steps, Policy::SmallestJobFirst, true);
    }
}

#[test]
fn no_leak_explicit_fifo() {
    for seed in 0..CASES {
        let steps = gen_steps(&mut SimRng::new(0x16E3_0003 ^ seed));
        run_steps(seed, steps, Policy::Fifo, false);
    }
}

// ---------------------------------------------------------------------------
// Directed recovery-path tests
// ---------------------------------------------------------------------------

fn cmd(job: u64, block: u64, input_blocks: u64) -> MigrateCommand {
    MigrateCommand {
        job: JobId(job),
        block: BlockId(block),
        bytes: B64,
        mode: EvictionMode::Explicit,
        job_input_bytes: input_blocks * B64,
        submitted: SimTime::ZERO,
    }
}

fn start_one_migration(slave: &mut IgnemSlave, mem: &mut MemStore<BlockId>) -> BlockId {
    let actions = slave.enqueue(SimTime::ZERO, vec![cmd(1, 1, 4), cmd(1, 2, 4)], mem);
    let started = actions
        .iter()
        .find_map(|a| match a {
            SlaveAction::StartRead { block, .. } => Some(*block),
            _ => None,
        })
        .expect("migration must start");
    started
}

/// A master failure with a migration read in flight must cancel that IO and
/// leave no orphaned in-flight state, queued work, or resident bytes.
#[test]
fn master_failure_orphans_no_inflight_io() {
    let (mut slave, mut mem) = tight_slave(Policy::SmallestJobFirst);
    let started = start_one_migration(&mut slave, &mut mem);
    assert!(slave.is_migrating());

    let actions = slave.on_master_failed(SimTime::from_secs(1), Epoch(2), &mut mem);
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, SlaveAction::CancelRead { block } if *block == started)),
        "in-flight migration IO must be cancelled, not orphaned"
    );
    assert!(!slave.is_migrating());
    assert_eq!(slave.queue_len(), 0, "queued commands must be purged");
    assert_eq!(mem.migrated_used(), 0, "purge must reclaim the buffer");
    assert_eq!(count_ref_blocks(&slave), 0, "no dangling reference lists");

    // A completion for the cancelled read must never be delivered by the
    // cluster layer; the slave has forgotten the block entirely.
    assert!(slave.references(started).is_none());
}

/// A slave restart (process failure) mid-migration discards migrated bytes
/// and cancels the in-flight read; nothing leaks across the restart.
#[test]
fn slave_restart_mid_migration_leaks_nothing() {
    let (mut slave, mut mem) = tight_slave(Policy::SmallestJobFirst);
    // Land one block, then get a second in flight.
    let first = start_one_migration(&mut slave, &mut mem);
    let actions = slave.on_read_done(SimTime::from_secs(1), first, &mut mem);
    let second = actions
        .iter()
        .find_map(|a| match a {
            SlaveAction::StartRead { block, .. } => Some(*block),
            _ => None,
        })
        .expect("second migration must start");
    assert_eq!(mem.migrated_used(), B64);

    let actions = slave.fail(SimTime::from_secs(2), &mut mem);
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, SlaveAction::CancelRead { block } if *block == second)),
        "restart must cancel the in-flight read"
    );
    assert_eq!(mem.migrated_used(), 0, "restart must drop migrated bytes");
    assert_eq!(slave.queue_len(), 0);
    assert!(!slave.is_migrating());
    assert_eq!(count_ref_blocks(&slave), 0);
}

// ---------------------------------------------------------------------------
// Duplicate-delivery idempotency (unreliable RPC may retransmit a batch)
// ---------------------------------------------------------------------------

/// Re-delivering a migrate command for a block that is already queued must
/// not enqueue a second waiter: a later eviction of the job must fully
/// release the block.
#[test]
fn duplicate_migrate_while_queued_is_idempotent() {
    let (mut slave, mut mem) = tight_slave(Policy::SmallestJobFirst);
    // Two commands: one starts, the other queues.
    let actions = slave.enqueue(SimTime::ZERO, vec![cmd(1, 1, 4), cmd(1, 2, 4)], &mut mem);
    let started = actions
        .iter()
        .find_map(|a| match a {
            SlaveAction::StartRead { block, .. } => Some(*block),
            _ => None,
        })
        .expect("one migration starts");
    assert_eq!(slave.queue_len(), 1);
    let before = slave.stats().deduped;

    // The master retries: the same batch arrives again.
    slave.enqueue(
        SimTime::from_secs(1),
        vec![cmd(1, 1, 4), cmd(1, 2, 4)],
        &mut mem,
    );
    assert_eq!(slave.queue_len(), 1, "duplicate must not double-enqueue");
    assert!(slave.stats().deduped > before, "duplicates must be counted");

    // Land both blocks, then evict once: everything must come back clean.
    let mut landed = 0;
    let mut block = Some(started);
    let mut clock = 2;
    while let Some(b) = block {
        let actions = slave.on_read_done(SimTime::from_secs(clock), b, &mut mem);
        landed += 1;
        clock += 1;
        block = actions.iter().find_map(|a| match a {
            SlaveAction::StartRead { block, .. } => Some(*block),
            _ => None,
        });
    }
    assert_eq!(landed, 2);
    // Exactly one reference per block despite the duplicate delivery.
    assert_eq!(slave.references(BlockId(1)).map(<[_]>::len), Some(1));
    assert_eq!(slave.references(BlockId(2)).map(<[_]>::len), Some(1));
    slave.on_evict_job(SimTime::from_secs(clock), JobId(1), &mut mem);
    assert_eq!(mem.migrated_used(), 0, "single evict must fully release");
}

/// Re-delivering a migrate command for a block that is already resident must
/// not grow the reference list (which would make the block un-evictable by a
/// single eviction — a buffer leak).
#[test]
fn duplicate_migrate_while_resident_is_idempotent() {
    let (mut slave, mut mem) = tight_slave(Policy::SmallestJobFirst);
    slave.enqueue(SimTime::ZERO, vec![cmd(1, 1, 4)], &mut mem);
    slave.on_read_done(SimTime::from_secs(1), BlockId(1), &mut mem);
    assert_eq!(slave.references(BlockId(1)).map(<[_]>::len), Some(1));

    // Duplicate arrives after the block landed.
    slave.enqueue(SimTime::from_secs(2), vec![cmd(1, 1, 4)], &mut mem);
    assert_eq!(
        slave.references(BlockId(1)).map(<[_]>::len),
        Some(1),
        "duplicate must not corrupt the reference list"
    );

    slave.on_evict_job(SimTime::from_secs(3), JobId(1), &mut mem);
    assert_eq!(mem.migrated_used(), 0);
    assert!(slave.references(BlockId(1)).is_none());
}

/// A duplicate while the block's read is in flight must neither start a
/// second read nor add a second waiter.
#[test]
fn duplicate_migrate_while_in_flight_is_idempotent() {
    let (mut slave, mut mem) = tight_slave(Policy::SmallestJobFirst);
    slave.enqueue(SimTime::ZERO, vec![cmd(1, 1, 4)], &mut mem);
    assert!(slave.is_migrating());

    let actions = slave.enqueue(SimTime::from_secs(1), vec![cmd(1, 1, 4)], &mut mem);
    assert!(
        !actions
            .iter()
            .any(|a| matches!(a, SlaveAction::StartRead { .. })),
        "duplicate must not start a second read"
    );
    assert_eq!(slave.in_flight_migrations(), 1);

    slave.on_read_done(SimTime::from_secs(2), BlockId(1), &mut mem);
    assert_eq!(slave.references(BlockId(1)).map(<[_]>::len), Some(1));
    slave.on_evict_job(SimTime::from_secs(3), JobId(1), &mut mem);
    assert_eq!(mem.migrated_used(), 0, "single evict must fully release");
}

// ---------------------------------------------------------------------------
// Incarnation fencing: crash/restart schedules leave no dead-incarnation state
// ---------------------------------------------------------------------------

/// Property test: across random schedules of sends, deliveries, ack
/// timeouts, and node crash/restart cycles, no reference-list entry, lease,
/// or retransmission-outbox entry belonging to a dead incarnation survives —
/// in the slave (its crash purge is total) or in the master (registration
/// fences every send stamped with the dead incarnation, so their pending
/// timeouts settle as stale instead of retransmitting).
#[test]
fn property_no_dead_incarnation_state_survives_restart() {
    use ignem_core::command::{RpcPayload, SeqNo};
    use ignem_core::master::{IgnemMaster, RetryDecision};
    use ignem_netsim::rpc::Incarnation;
    use ignem_simcore::time::SimDuration;

    const NODES: usize = 3;
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x1CA2_7A71_0000 ^ seed);
        let mut master = IgnemMaster::new();
        let mut slaves: Vec<(IgnemSlave, MemStore<BlockId>)> = (0..NODES)
            .map(|n| {
                let slave = IgnemSlave::new(
                    NodeId(n as u32),
                    IgnemConfig {
                        lease: Some(SimDuration::from_secs(60)),
                        ..IgnemConfig::default()
                    },
                );
                (slave, MemStore::new(8 * B64))
            })
            .collect();
        // In-flight master → slave sends: (seq, node, stamped incarnation).
        let mut outstanding: Vec<(SeqNo, usize, Incarnation)> = Vec::new();
        let mut clock = 0u64;

        for step in 0..150u64 {
            clock += 1;
            let now = SimTime::from_secs(clock);
            let n = rng.index(NODES);
            let node = NodeId(n as u32);
            match rng.index(8) {
                0..=1 => {
                    // Master issues a send; it is stamped with the master's
                    // current belief of the node's incarnation.
                    let job = JobId(rng.next_u64() % 4);
                    let (seq, _timeout) = master.register_send(node, RpcPayload::Evict(job));
                    outstanding.push((seq, n, master.slave_incarnation(node)));
                }
                2..=3 => {
                    // A send is delivered. The slave accepts it iff the stamp
                    // is not from a dead (pre-restart) incarnation.
                    if outstanding.is_empty() {
                        continue;
                    }
                    let i = rng.index(outstanding.len());
                    let (seq, to, stamp) = outstanding.remove(i);
                    let (slave, _mem) = &mut slaves[to];
                    let accepted = slave.observe_incarnation(stamp);
                    assert_eq!(
                        accepted,
                        stamp >= slave.incarnation(),
                        "seed {seed} step {step}: fencing must reject exactly \
                         the stale stamps"
                    );
                    master.on_ack(seq);
                }
                4 => {
                    // An ack timeout fires. Retransmissions keep the stamp of
                    // the original send (the master learns of restarts only
                    // through registration, never through timeouts).
                    if outstanding.is_empty() {
                        continue;
                    }
                    let i = rng.index(outstanding.len());
                    let (seq, to, stamp) = outstanding[i];
                    match master.on_timeout(seq) {
                        RetryDecision::Settled => {
                            outstanding.remove(i);
                        }
                        RetryDecision::Retry {
                            to: rto,
                            incarnation,
                            ..
                        } => {
                            assert_eq!(rto, NodeId(to as u32));
                            assert_eq!(incarnation, stamp, "seed {seed} step {step}");
                        }
                        RetryDecision::GiveUp { .. } => {
                            outstanding.remove(i);
                        }
                    }
                }
                5..=6 => {
                    // The slave does real work so a later crash has refs and
                    // leases to purge; complete reads immediately.
                    let (slave, mem) = &mut slaves[n];
                    let block = rng.next_u64() % 8;
                    let job = rng.next_u64() % 4;
                    let mut started: Vec<BlockId> = slave
                        .enqueue(now, vec![cmd(job, block, 4)], mem)
                        .into_iter()
                        .filter_map(|a| match a {
                            SlaveAction::StartRead { block, .. } => Some(block),
                            _ => None,
                        })
                        .collect();
                    while let Some(b) = started.pop() {
                        for a in slave.on_read_done(now, b, mem) {
                            if let SlaveAction::StartRead { block, .. } = a {
                                started.push(block);
                            }
                        }
                    }
                }
                _ => {
                    // Crash + restart. The crash purge must be total, and a
                    // delivered registration must fence every outstanding
                    // send stamped with the dead incarnation.
                    let (slave, mem) = &mut slaves[n];
                    slave.fail(now, mem);
                    let fresh = slave.restart();
                    assert_eq!(slave.total_references(), 0, "seed {seed} step {step}");
                    assert_eq!(slave.next_lease_expiry(), None, "seed {seed} step {step}");
                    assert_eq!(mem.migrated_used(), 0, "seed {seed} step {step}");
                    // The registration may be lost (lossy channel); the
                    // cluster layer retries it, here we just skip sometimes.
                    if rng.uniform() < 0.75 {
                        assert!(master.handle_register(node, fresh));
                        assert!(
                            !master.handle_register(node, fresh),
                            "duplicate registration must be inert"
                        );
                        outstanding.retain(|&(seq, to, _)| {
                            if to != n {
                                return true;
                            }
                            assert!(
                                matches!(master.on_timeout(seq), RetryDecision::Settled),
                                "seed {seed} step {step}: send to a dead \
                                 incarnation must settle, not retransmit"
                            );
                            false
                        });
                    }
                }
            }
            // INVARIANT: the master never holds an outbox entry stamped with
            // an incarnation it already knows to be dead — registration
            // purges are complete, so every outstanding send carries exactly
            // the master's current belief for its destination.
            for &(_, to, stamp) in &outstanding {
                assert_eq!(
                    stamp,
                    master.slave_incarnation(NodeId(to as u32)),
                    "seed {seed} step {step}: dead-incarnation outbox entry survived"
                );
            }
            for (slave, mem) in &slaves {
                slave
                    .check_consistency(mem)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
            }
        }
    }
}

/// Distinct jobs sharing a block still get one reference each (duplicate
/// suppression must be per-(job, block), not per-block).
#[test]
fn shared_block_across_jobs_keeps_one_ref_per_job() {
    let (mut slave, mut mem) = tight_slave(Policy::SmallestJobFirst);
    slave.enqueue(SimTime::ZERO, vec![cmd(1, 1, 4)], &mut mem);
    slave.enqueue(SimTime::ZERO, vec![cmd(2, 1, 4)], &mut mem);
    // Duplicates of both.
    slave.enqueue(SimTime::ZERO, vec![cmd(1, 1, 4), cmd(2, 1, 4)], &mut mem);
    slave.on_read_done(SimTime::from_secs(1), BlockId(1), &mut mem);
    assert_eq!(slave.references(BlockId(1)).map(<[_]>::len), Some(2));
    slave.on_evict_job(SimTime::from_secs(2), JobId(1), &mut mem);
    assert_eq!(mem.migrated_used(), B64, "job 2 still holds the block");
    slave.on_evict_job(SimTime::from_secs(3), JobId(2), &mut mem);
    assert_eq!(mem.migrated_used(), 0);
}
