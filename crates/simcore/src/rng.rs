//! Deterministic random number generation.
//!
//! All simulator randomness flows through [`SimRng`], a SplitMix64 generator.
//! SplitMix64 is tiny, fast, passes BigCrush, and — unlike `StdRng` — its
//! stream is stable across `rand` versions, so experiment outputs are
//! reproducible forever given a seed.

/// A deterministic SplitMix64 random number generator.
///
/// Self-contained (no `rand` dependency): the repository must build with no
/// network access, and a hand-rolled SplitMix64 keeps the stream
/// version-stable forever given a seed.
///
/// ```
/// use ignem_simcore::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child generator.
    ///
    /// Useful for giving each workload generator or node its own stream so
    /// that adding draws to one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.splitmix() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.uniform() * (hi - lo)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        // Multiply-shift; bias is negligible for simulation n << 2^64.
        ((self.splitmix() as u128 * n as u128) >> 64) as usize
    }

    /// Chooses one element of a slice uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.splitmix() >> 32) as u32
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.splitmix()
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.splitmix().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn index_covers_range() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(9);
        let mut child = parent.fork();
        // The child stream must not equal the continuation of the parent.
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(c, p);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SimRng::new(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_zero() {
        SimRng::new(0).index(0);
    }
}
