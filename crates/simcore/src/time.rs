//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** from the start of
//! the simulation. Integer time keeps event ordering exact and runs
//! bit-for-bit reproducible across platforms; microsecond resolution is far
//! below every latency the models care about (seeks are milliseconds,
//! heartbeats are seconds).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock.
///
/// `SimTime` is a thin wrapper over microseconds-since-start. It is `Copy`,
/// totally ordered, and supports arithmetic with [`SimDuration`].
///
/// ```
/// use ignem_simcore::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_secs_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
///
/// ```
/// use ignem_simcore::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant `s` whole seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "duration_since: earlier={earlier} is after self={self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs_f64(1.0);
        let d = SimDuration::from_secs(2);
        assert_eq!((t + d).as_secs_f64(), 3.0);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!(t.saturating_duration_since(t + d), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 2, SimDuration::from_secs(1));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_negative_duration() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250000s");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "0.010000s");
    }
}
