//! # ignem-simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the Ignem reproduction: a single-threaded,
//! fully deterministic discrete-event engine plus the shared modelling
//! vocabulary used by every substrate (storage, network, DFS, compute,
//! Ignem itself).
//!
//! * [`time`] — integer-microsecond [`time::SimTime`] / [`time::SimDuration`].
//! * [`event`] — the [`event::Engine`]: time-ordered queue with cancellation.
//! * [`rng`] — version-stable seeded RNG ([`rng::SimRng`]).
//! * [`dist`] — exponential / log-normal / Pareto samplers for workloads.
//! * [`flow`] — fluid-flow processor-sharing resources with concurrency
//!   degradation ([`flow::FlowResource`]): the disk/NIC model.
//! * [`stats`] — online stats, CDFs, histograms, time-weighted series.
//! * [`trace`] — legacy string tracing ([`trace::TraceSink`]).
//! * [`telemetry`] — typed event stream ([`telemetry::Event`]), flight
//!   recorder with JSONL export, adapter onto the legacy trace sinks.
//! * [`span`] — causal span trees reconstructed from recorded streams,
//!   with a per-category critical-path extractor.
//! * [`metrics`] — sim-time windowed counters/gauges/histograms
//!   ([`metrics::MetricsRegistry`]), integer-only CSV/JSONL export.
//! * [`perfetto`] — Chrome trace-event JSON export of spans and metrics.
//! * [`profile`] — host-time profiling hooks with an injected clock.
//! * [`units`] — byte-size constants and formatting.
//!
//! ## Example
//!
//! ```
//! use ignem_simcore::prelude::*;
//!
//! // Two 64 MB reads contending on a degrading HDD finish much later than
//! // back-to-back reads would.
//! let mut disk = FlowResource::new(140e6, 1.5);
//! disk.add(SimTime::ZERO, FlowId(1), 64e6, SimDuration::from_millis(8));
//! disk.add(SimTime::ZERO, FlowId(2), 64e6, SimDuration::from_millis(8));
//! let done = disk.advance(SimTime::from_secs(60));
//! assert_eq!(done.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod flow;
pub mod idmap;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod rng;
pub mod span;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod units;

/// Convenient glob-import of the most-used types.
pub mod prelude {
    pub use crate::dist::{Constant, Distribution, Exponential, LogNormal, Pareto, Uniform};
    pub use crate::event::{Engine, EventId};
    pub use crate::flow::{FlowId, FlowResource};
    pub use crate::idmap::{DenseId, IdMap, IdSet};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Histogram, OnlineStats, Samples, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::{fmt_bytes, GB, GIB, KB, MB, MIB, TB};
}
