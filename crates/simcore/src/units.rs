//! Byte-quantity helpers shared across the workspace.

/// One kilobyte (10³ bytes; storage vendors' decimal convention, matching
/// the device bandwidth specs the models are calibrated against).
pub const KB: u64 = 1_000;
/// One megabyte (10⁶ bytes).
pub const MB: u64 = 1_000_000;
/// One gigabyte (10⁹ bytes).
pub const GB: u64 = 1_000_000_000;
/// One terabyte (10¹² bytes).
pub const TB: u64 = 1_000_000_000_000;

/// One mebibyte (2²⁰ bytes). HDFS block sizes are binary (64 MiB).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2³⁰ bytes).
pub const GIB: u64 = 1 << 30;

/// Formats a byte count human-readably (decimal units).
///
/// ```
/// assert_eq!(ignem_simcore::units::fmt_bytes(1_500_000), "1.50 MB");
/// assert_eq!(ignem_simcore::units::fmt_bytes(512), "512 B");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= TB {
        format!("{:.2} TB", b / TB as f64)
    } else if bytes >= GB {
        format!("{:.2} GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.2} MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.2} KB", b / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_picks_unit() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(2 * KB), "2.00 KB");
        assert_eq!(fmt_bytes(64 * MIB), "67.11 MB");
        assert_eq!(fmt_bytes(3 * GB), "3.00 GB");
        assert_eq!(fmt_bytes(2 * TB), "2.00 TB");
    }

    #[test]
    fn constants_relate() {
        assert_eq!(MB, 1000 * KB);
        assert_eq!(GB, 1000 * MB);
        assert_eq!(GIB, 1024 * MIB);
    }
}
