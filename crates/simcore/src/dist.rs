//! Probability distributions for workload synthesis.
//!
//! `rand` 0.8 ships only uniform sampling without `rand_distr`; to keep the
//! dependency set minimal the handful of distributions the workload
//! generators need are implemented here, all driven by [`SimRng`].

use crate::rng::SimRng;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// The exponential distribution with the given rate `λ` (mean `1/λ`).
///
/// Used for inter-arrival times of jobs.
///
/// ```
/// use ignem_simcore::{dist::{Distribution, Exponential}, rng::SimRng};
///
/// let d = Exponential::from_mean(2.0);
/// let x = d.sample(&mut SimRng::new(1));
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate: {rate}");
        Exponential { rate }
    }

    /// Creates an exponential with the given mean.
    pub fn from_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; (1 - u) avoids ln(0).
        -(1.0 - rng.uniform()).ln() / self.rate
    }
}

/// The log-normal distribution parameterised by the underlying normal's
/// `mu` and `sigma`.
///
/// Job queueing delays and task service times in cluster traces are heavy
/// tailed and well described by log-normals (the paper's Google-trace
/// queueing times have mean 8.8 s but median 1.8 s — a strongly skewed shape
/// that [`LogNormal::from_median_mean`] recovers exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates the unique log-normal with the given **median** and **mean**.
    ///
    /// For a log-normal, `median = exp(mu)` and `mean = exp(mu + sigma²/2)`,
    /// so `sigma = sqrt(2 ln(mean/median))`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < median <= mean`.
    pub fn from_median_mean(median: f64, mean: f64) -> Self {
        assert!(
            median > 0.0 && mean >= median,
            "need 0 < median <= mean, got median={median} mean={mean}"
        );
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        LogNormal::new(mu, sigma)
    }

    /// The distribution's median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution's mean, `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// The Pareto (power-law) distribution with scale `x_m` and shape `alpha`.
///
/// Models the heavy tail of job input sizes ("85% of jobs read ≤64 MB, the
/// largest read 24 GB").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive and finite.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0);
        assert!(shape.is_finite() && shape > 0.0);
        Pareto { scale, shape }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale / (1.0 - rng.uniform()).powf(1.0 / self.shape)
    }
}

/// A uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }
}

/// A degenerate distribution that always returns the same value. Handy for
/// turning stochastic models deterministic in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

/// One standard-normal sample via Box–Muller (the cosine branch).
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = 1.0 - rng.uniform(); // (0, 1]
    let u2 = rng.uniform();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::from_mean(4.0);
        let m = mean_of(&d, 1, 200_000);
        assert!((m - 4.0).abs() < 0.1, "mean={m}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(0.5);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_median_mean_round_trip() {
        // The paper's Google-trace queueing times: median 1.8 s, mean 8.8 s.
        let d = LogNormal::from_median_mean(1.8, 8.8);
        assert!((d.median() - 1.8).abs() < 1e-12);
        assert!((d.mean() - 8.8).abs() < 1e-12);
        let m = mean_of(&d, 3, 400_000);
        assert!((m - 8.8).abs() < 0.6, "empirical mean={m}");
        // Median check: about half the samples below 1.8.
        let mut rng = SimRng::new(4);
        let below = (0..100_000).filter(|_| d.sample(&mut rng) < 1.8).count() as f64 / 100_000.0;
        assert!((below - 0.5).abs() < 0.01, "below-median frac={below}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(64.0, 1.5);
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 64.0);
        }
    }

    #[test]
    fn pareto_mean_converges() {
        // alpha=3 has mean scale*alpha/(alpha-1) = 1.5*scale.
        let d = Pareto::new(2.0, 3.0);
        let m = mean_of(&d, 6, 400_000);
        assert!((m - 3.0).abs() < 0.05, "mean={m}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = Uniform::new(3.0, 9.0);
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((3.0..9.0).contains(&x));
        }
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(5.5);
        assert_eq!(d.sample(&mut SimRng::new(1)), 5.5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::new(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    #[should_panic]
    fn lognormal_rejects_mean_below_median() {
        LogNormal::from_median_mean(5.0, 1.0);
    }
}
