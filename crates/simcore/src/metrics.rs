//! Sim-time metrics registry: counters, gauges and log-bucketed
//! histograms, sampled into fixed sim-time windows.
//!
//! The registry is the quantitative sibling of [`crate::telemetry`]: where
//! the telemetry stream records *what happened*, the registry records *how
//! much, when*. Instruments are keyed by a static name plus an integer tag
//! (usually a node id), so recording never allocates; windows close as
//! simulation time advances past fixed boundaries, so the exported series
//! is a pure function of the event history and the window length —
//! bit-identical across runs and platforms. All encoded values are
//! integers (microseconds, bytes, counts): no floats ever reach the CSV or
//! JSONL exports.
//!
//! Like [`Telemetry`](crate::telemetry::Telemetry), a disabled registry
//! (the default) is a `None` behind the handle: every recording call is a
//! single branch and the simulation's event stream is untouched either
//! way. Handles are cheap clones sharing one interior state, so the world,
//! the master, every slave, the RPC channel and the disks can all write
//! into the same registry while the caller keeps a handle to read the
//! report afterwards.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// Instrument key: a static metric name plus an integer tag (node id,
/// class index, …). Keeping the name `&'static str` makes recording
/// allocation-free and gives exports a total ordering over the pair.
pub type MetricKey = (&'static str, u64);

/// Number of log₂ histogram buckets: bucket `k` holds values whose
/// bit-length is `k`, i.e. `v == 0 → 0` and otherwise
/// `k = 64 - v.leading_zeros()`.
pub const HIST_BUCKETS: usize = 65;

/// One histogram's accumulated state (per window or in total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Log₂ bucket counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    #[inline]
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        // lint: allow(P02, reason = "fixed-size array, not a map: bucket_of yields 0..=64 < HIST_BUCKETS")
        self.buckets[bucket_of(v)] += 1;
    }

    /// Folds another histogram's observations into this one.
    fn merge(&mut self, o: &Hist) {
        self.count += o.count;
        self.sum = self.sum.saturating_add(o.sum);
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (b, c) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *b += c;
        }
    }

    /// The value at quantile `q_num/q_den` (nearest-rank over bucket upper
    /// bounds), or 0 for an empty histogram. Approximate by construction:
    /// resolution is one power of two.
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q_num).div_ceil(q_den).max(1);
        let mut seen = 0;
        for (k, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(k);
            }
        }
        self.max
    }
}

/// The log₂ bucket index for a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `k` (`0` for bucket 0).
pub fn upper_bound(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Everything recorded inside one closed sim-time window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Window index (`start_us / window_us`).
    pub index: u64,
    /// Window start in sim microseconds.
    pub start_us: u64,
    /// Counter increments that happened inside this window (non-zero only).
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values at window close (every gauge ever set).
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histogram observations made inside this window (non-empty only).
    pub hists: Vec<(MetricKey, Hist)>,
}

/// The full export of a registry: closed windows plus run totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// The fixed window length in microseconds.
    pub window_us: u64,
    /// Every closed window, in time order (gap windows are elided: a
    /// window in which nothing was recorded and no gauge changed still
    /// appears, carrying only the persisted gauges).
    pub windows: Vec<WindowSnapshot>,
    /// Whole-run counter totals.
    pub counter_totals: Vec<(MetricKey, u64)>,
    /// Final gauge values.
    pub gauge_finals: Vec<(MetricKey, i64)>,
    /// Whole-run histogram totals.
    pub hist_totals: Vec<(MetricKey, Hist)>,
}

impl MetricsReport {
    /// The whole-run total of one counter, 0 when never incremented.
    pub fn counter_total(&self, name: &str, tag: u64) -> u64 {
        self.counter_totals
            .iter()
            .find(|((n, t), _)| *n == name && *t == tag)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The whole-run histogram for one key, if any value was observed.
    pub fn hist_total(&self, name: &str, tag: u64) -> Option<&Hist> {
        self.hist_totals
            .iter()
            .find(|((n, t), _)| *n == name && *t == tag)
            .map(|(_, h)| h)
    }

    /// Renders the windows as CSV rows (all integer cells) under the
    /// header `window,start_us,kind,name,tag,field,value`.
    pub fn to_csv_rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for w in &self.windows {
            let base = |kind: &str, key: &MetricKey, field: &str, value: String| {
                vec![
                    w.index.to_string(),
                    w.start_us.to_string(),
                    kind.to_string(),
                    key.0.to_string(),
                    key.1.to_string(),
                    field.to_string(),
                    value,
                ]
            };
            for (key, v) in &w.counters {
                rows.push(base("counter", key, "count", v.to_string()));
            }
            for (key, v) in &w.gauges {
                rows.push(base("gauge", key, "value", v.to_string()));
            }
            for (key, h) in &w.hists {
                rows.push(base("hist", key, "count", h.count.to_string()));
                rows.push(base("hist", key, "sum", h.sum.to_string()));
                rows.push(base("hist", key, "min", h.min.to_string()));
                rows.push(base("hist", key, "max", h.max.to_string()));
                for (k, c) in h.buckets.iter().enumerate() {
                    if *c > 0 {
                        rows.push(base("hist", key, &format!("b{k}"), c.to_string()));
                    }
                }
            }
        }
        rows
    }

    /// The CSV header matching [`to_csv_rows`](Self::to_csv_rows).
    pub fn csv_header() -> [&'static str; 7] {
        [
            "window", "start_us", "kind", "name", "tag", "field", "value",
        ]
    }

    /// Renders the windows as JSONL, one window object per line, integers
    /// only. Metric names are static identifiers and need no escaping.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            out.push_str(&format!(
                "{{\"window\":{},\"start_us\":{},\"window_us\":{},\"counters\":[",
                w.index, w.start_us, self.window_us
            ));
            for (i, ((name, tag), v)) in w.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"tag\":{tag},\"count\":{v}}}"
                ));
            }
            out.push_str("],\"gauges\":[");
            for (i, ((name, tag), v)) in w.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"tag\":{tag},\"value\":{v}}}"
                ));
            }
            out.push_str("],\"hists\":[");
            for (i, ((name, tag), h)) in w.hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"tag\":{tag},\"count\":{},\"sum\":{},\
                     \"min\":{},\"max\":{},\"buckets\":[",
                    h.count, h.sum, h.min, h.max
                ));
                let mut first = true;
                for (k, c) in h.buckets.iter().enumerate() {
                    if *c > 0 {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{k},{c}]"));
                    }
                }
                out.push_str("]}");
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Live instrument storage: an unsorted `Vec` scanned linearly. A handful
/// of instruments are ever live at once, so a scan with an integer-first
/// key compare beats an ordered map on the recording path; snapshots sort
/// into `MetricKey` order at window close so exports keep the total
/// ordering a `BTreeMap` would have given.
#[derive(Debug, Default, Clone)]
struct Table<V> {
    entries: Vec<(MetricKey, V)>,
}

impl<V: Default> Table<V> {
    /// Mutable slot for `key`, inserted at first touch. The lookup scan
    /// compares the tag first (one integer) and the name by pointer before
    /// falling back to content, since every call site passes the same
    /// literal; first-touch insertion lands at the key's total-order
    /// position so snapshots read out sorted without sorting.
    #[inline]
    fn slot(&mut self, key: MetricKey) -> &mut V {
        let pos = self
            .entries
            .iter()
            .position(|(k, _)| k.1 == key.1 && (std::ptr::eq(k.0, key.0) || k.0 == key.0));
        let i = match pos {
            Some(i) => i,
            None => {
                let at = self
                    .entries
                    .iter()
                    .position(|(k, _)| *k > key)
                    .unwrap_or(self.entries.len());
                self.entries.insert(at, (key, V::default()));
                at
            }
        };
        &mut self.entries[i].1
    }
}

impl<V: Clone> Table<V> {
    /// A copy of the entries (kept in total `MetricKey` order on insert).
    fn sorted(&self) -> Vec<(MetricKey, V)> {
        self.entries.clone()
    }
}

impl<V> Table<V> {
    /// Drains the entries (kept in total `MetricKey` order on insert),
    /// leaving the table empty — no clone for per-window tables that
    /// reset at close anyway.
    fn take_sorted(&mut self) -> Vec<(MetricKey, V)> {
        std::mem::take(&mut self.entries)
    }
}

#[derive(Debug, Default, Clone)]
struct Inner {
    window: SimDuration,
    /// Start of the currently open window; window 0 always starts at t=0
    /// so indexes are comparable across runs regardless of first activity.
    open_start: SimTime,
    counters_cur: Table<u64>,
    counters_total: Table<u64>,
    gauges: Table<i64>,
    hists_cur: Table<Hist>,
    hists_total: Table<Hist>,
    windows: Vec<WindowSnapshot>,
}

impl Inner {
    fn close_windows_until(&mut self, now: SimTime) {
        // Close every window whose end lies at or before `now`.
        let len = self.window.as_micros().max(1);
        while self.open_start.as_micros() + len <= now.as_micros() {
            let start_us = self.open_start.as_micros();
            self.flush_window(start_us / len, start_us);
            self.open_start = SimTime::from_micros(start_us + len);
        }
    }

    /// Snapshots the open window and resets its per-window tables. The
    /// window's increments fold into the run totals here — once per close
    /// rather than once per recording call — so the recording hot path
    /// touches a single table.
    fn flush_window(&mut self, index: u64, start_us: u64) {
        for (k, v) in &self.counters_cur.entries {
            *self.counters_total.slot(*k) += *v;
        }
        for (k, h) in &self.hists_cur.entries {
            self.hists_total.slot(*k).merge(h);
        }
        self.windows.push(WindowSnapshot {
            index,
            start_us,
            counters: self.counters_cur.take_sorted(),
            gauges: self.gauges.sorted(),
            hists: self.hists_cur.take_sorted(),
        });
    }

    /// End of the currently open window in sim microseconds — the value
    /// [`Shared::open_end_us`] caches for `set_now`'s fast path.
    fn open_end_us(&self) -> u64 {
        self.open_start.as_micros() + self.window.as_micros().max(1)
    }
}

/// The shared state behind every cloned handle. The open window's end is
/// cached in a [`Cell`] outside the `RefCell` so the once-per-event
/// [`set_now`](MetricsRegistry::set_now) call is a load and a compare
/// while the clock stays inside the current window.
#[derive(Debug)]
struct Shared {
    open_end_us: Cell<u64>,
    state: RefCell<Inner>,
}

/// A shared handle onto a metrics registry (see module docs). The default
/// handle is disabled: every call is a no-op costing one branch.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Rc<Shared>>,
}

/// An opaque copy of a registry's full recording state — open window,
/// per-window and total tables, closed-window backlog — captured by
/// [`MetricsRegistry::state_snapshot`] and reinstated by
/// [`MetricsRegistry::restore_state`]. World snapshots carry one of these
/// so a restored continuation replays the exact same metrics report as an
/// uninterrupted run.
#[derive(Clone, Debug, Default)]
pub struct MetricsState {
    inner: Option<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl MetricsRegistry {
    /// An enabled registry sampling into fixed windows of length `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "zero metrics window");
        let inner = Inner {
            window,
            ..Inner::default()
        };
        MetricsRegistry {
            inner: Some(Rc::new(Shared {
                open_end_us: Cell::new(inner.open_end_us()),
                state: RefCell::new(inner),
            })),
        }
    }

    /// A disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether recording calls do anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances sim time, closing every window boundary crossed. The
    /// simulation loop calls this once per event, next to
    /// [`Telemetry::set_now`](crate::telemetry::Telemetry::set_now);
    /// while the clock stays inside the open window this is a load and a
    /// compare.
    #[inline]
    pub fn set_now(&self, now: SimTime) {
        if let Some(sh) = &self.inner {
            if now.as_micros() >= sh.open_end_us.get() {
                let mut i = sh.state.borrow_mut();
                i.close_windows_until(now);
                sh.open_end_us.set(i.open_end_us());
            }
        }
    }

    /// Adds to a counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, tag: u64, v: u64) {
        if let Some(sh) = &self.inner {
            *sh.state.borrow_mut().counters_cur.slot((name, tag)) += v;
        }
    }

    /// Sets a gauge to an absolute value.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, tag: u64, v: i64) {
        if let Some(sh) = &self.inner {
            *sh.state.borrow_mut().gauges.slot((name, tag)) = v;
        }
    }

    /// Records one observation into a log₂-bucketed histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, tag: u64, v: u64) {
        if let Some(sh) = &self.inner {
            sh.state.borrow_mut().hists_cur.slot((name, tag)).observe(v);
        }
    }

    /// Deep-copies the recording state behind this handle. Pairs with
    /// [`MetricsRegistry::restore_state`]; a disabled handle snapshots to
    /// an (equally inert) empty state.
    pub fn state_snapshot(&self) -> MetricsState {
        MetricsState {
            inner: self.inner.as_ref().map(|sh| sh.state.borrow().clone()),
        }
    }

    /// Reinstates a state captured by [`MetricsRegistry::state_snapshot`].
    /// Every clone of this handle shares the same interior, so the rewind
    /// is visible to all components at once. Restoring a snapshot taken
    /// from a disabled handle onto an enabled one (or vice versa) is a
    /// contract violation and panics: the enable/disable decision is made
    /// at world construction and never changes mid-run.
    pub fn restore_state(&self, state: &MetricsState) {
        match (&self.inner, &state.inner) {
            (Some(sh), Some(saved)) => {
                let mut i = sh.state.borrow_mut();
                *i = saved.clone();
                sh.open_end_us.set(i.open_end_us());
            }
            (None, None) => {}
            _ => panic!("metrics snapshot enable-state mismatch"),
        }
    }

    /// Closes the final (partial) window at `end` and returns the full
    /// report, draining the closed windows from the registry — `finish` is
    /// terminal, so a second call would see totals but no windows. A
    /// disabled handle returns an empty report.
    pub fn finish(&self, end: SimTime) -> MetricsReport {
        let Some(sh) = &self.inner else {
            return MetricsReport::default();
        };
        let mut i = sh.state.borrow_mut();
        i.close_windows_until(end);
        sh.open_end_us.set(i.open_end_us());
        // Flush the open partial window if anything is pending.
        if !i.counters_cur.entries.is_empty()
            || !i.hists_cur.entries.is_empty()
            || !i.gauges.entries.is_empty()
        {
            let len = i.window.as_micros().max(1);
            let start_us = i.open_start.as_micros();
            i.flush_window(start_us / len, start_us);
        }
        MetricsReport {
            window_us: i.window.as_micros(),
            windows: std::mem::take(&mut i.windows),
            counter_totals: i.counters_total.sorted(),
            gauge_finals: i.gauges.sorted(),
            hist_totals: i.hists_total.sorted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let m = MetricsRegistry::disabled();
        assert!(!m.is_enabled());
        m.counter_add("c", 0, 5);
        m.gauge_set("g", 1, -3);
        m.observe("h", 2, 100);
        m.set_now(SimTime::from_secs(10));
        let r = m.finish(SimTime::from_secs(20));
        assert_eq!(r, MetricsReport::default());
    }

    #[test]
    fn windows_close_on_boundaries() {
        let m = MetricsRegistry::new(SimDuration::from_secs(1));
        m.set_now(SimTime::from_micros(100_000));
        m.counter_add("c", 0, 1);
        m.gauge_set("g", 0, 7);
        m.set_now(SimTime::from_micros(2_500_000)); // crosses two boundaries
        m.counter_add("c", 0, 2);
        let r = m.finish(SimTime::from_micros(2_600_000));
        // Windows 0 and 1 closed by set_now; window 2 flushed by finish.
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[0].index, 0);
        assert_eq!(r.windows[0].counters, vec![(("c", 0), 1)]);
        assert_eq!(r.windows[0].gauges, vec![(("g", 0), 7)]);
        // Gap window still carries the persisted gauge, no counters.
        assert_eq!(r.windows[1].index, 1);
        assert!(r.windows[1].counters.is_empty());
        assert_eq!(r.windows[1].gauges, vec![(("g", 0), 7)]);
        assert_eq!(r.windows[2].counters, vec![(("c", 0), 2)]);
        assert_eq!(r.counter_total("c", 0), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 4, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1_000_000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2,3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000
        assert_eq!(h.buckets[20], 1); // 1e6
        assert_eq!(h.quantile(50, 100), 3); // 4th of 7 → bucket 2 → ub 3
        assert_eq!(h.quantile(99, 100), upper_bound(20));
        assert_eq!(Hist::default().quantile(50, 100), 0);
    }

    #[test]
    fn exports_are_integer_only_and_deterministic() {
        let build = || {
            let m = MetricsRegistry::new(SimDuration::from_secs(1));
            m.set_now(SimTime::ZERO);
            m.counter_add("evictions", 3, 2);
            m.observe("rpc_delay_us", 0, 20_000);
            m.gauge_set("occupancy", 1, 1 << 30);
            m.finish(SimTime::from_secs(2))
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        let jsonl = a.to_jsonl();
        assert!(!jsonl.contains('.'), "floats leaked into JSONL: {jsonl}");
        for row in a.to_csv_rows() {
            assert_eq!(row.len(), MetricsReport::csv_header().len());
            for cell in &row[..2] {
                cell.parse::<u64>().expect("integer cell");
            }
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in [0u64, 1, 2, 7, 8, 1023, 1024, u64::MAX] {
            let k = bucket_of(v);
            assert!(v <= upper_bound(k), "{v} > ub({k})");
            if k > 0 {
                assert!(v > upper_bound(k - 1), "{v} <= ub({})", k - 1);
            }
        }
    }
}
