//! Structured telemetry: a typed event stream for the whole simulator.
//!
//! The legacy [`trace`](crate::trace) module carries free-form strings —
//! fine for eyeballing, useless for querying. This module replaces it as
//! the primary instrumentation path: hosts emit typed [`Event`]s through a
//! shared [`Telemetry`] handle, each stamped with the simulated time and a
//! monotonic sequence number ([`EventRecord`]). Sinks implement
//! [`EventSink`]; the built-in ones are
//!
//! * [`FlightRecorder`] — a bounded ring buffer with JSONL export, cheap
//!   enough to leave on for a whole run and inspect afterwards;
//! * [`TraceAdapter`] — formats typed events back into the legacy
//!   `(time, category, message)` shape so every existing
//!   [`TraceSink`](crate::trace::TraceSink) keeps working unchanged.
//!
//! Emission is zero-cost when no sink is installed: a disabled
//! [`Telemetry`] handle is a `None` check and the event constructor
//! closure never runs. Nothing here consumes randomness, so installing a
//! sink cannot perturb a seeded simulation.
//!
//! ## Identifier conventions
//!
//! `Event` lives in `simcore`, below the crates that define the `JobId` /
//! `BlockId` / `TaskId` / `NodeId` newtypes, so it carries their raw
//! integer payloads (`u64` jobs/blocks/tasks, `u32` nodes). Control-plane
//! endpoints use [`Peer`], which serialises the master as `-1`.
//!
//! ## JSONL record format
//!
//! [`EventRecord::to_json`] renders one record per line with a fixed field
//! order: `{"seq":N,"at_us":N,"type":"<tag>",...}` followed by the
//! variant's fields. All values are integers or escaped strings — no
//! floats — so a deterministic simulation produces a bit-identical trace
//! on every run and platform.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;
use crate::trace::TraceSink;

/// One end of a control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Peer {
    /// The master / NameNode side.
    Master,
    /// The slave daemon on the given node.
    Node(u32),
}

impl Peer {
    /// JSON encoding: the master is `-1`, a node is its index.
    pub fn as_i64(self) -> i64 {
        match self {
            Peer::Master => -1,
            Peer::Node(n) => n as i64,
        }
    }
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peer::Master => write!(f, "master"),
            Peer::Node(n) => write!(f, "node{n}"),
        }
    }
}

/// Where a block read was served from (the telemetry mirror of the
/// cluster layer's `ReadKind`, kept here so `simcore` stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// Local or remote memory.
    Memory,
    /// The reader's local disk.
    LocalDisk,
    /// A remote disk over the network.
    RemoteDisk,
}

impl ReadClass {
    /// Stable JSON tag for this class.
    pub fn tag(self) -> &'static str {
        match self {
            ReadClass::Memory => "memory",
            ReadClass::LocalDisk => "local_disk",
            ReadClass::RemoteDisk => "remote_disk",
        }
    }
}

/// A typed simulation event. See the module docs for the identifier
/// conventions; times beyond the record's own timestamp are microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A planned job was handed to the submitter.
    JobSubmitted {
        /// Job id.
        job: u64,
        /// Workload-plan display name.
        name: String,
        /// Index of the planned workload entry.
        plan: u64,
        /// Stage index within the planned entry.
        stage: u64,
    },
    /// The job cleared submitter + AM overhead and became schedulable.
    JobScheduled {
        /// Job id.
        job: u64,
    },
    /// The job's last task completed.
    JobCompleted {
        /// Job id.
        job: u64,
        /// Submission-to-completion time in microseconds.
        duration_us: u64,
    },
    /// A task was assigned to a node's free slot.
    TaskAssigned {
        /// Task id.
        task: u64,
        /// Owning job.
        job: u64,
        /// Node the task runs on.
        node: u32,
    },
    /// The task cleared its launch overhead and started IO/compute.
    TaskStarted {
        /// Task id.
        task: u64,
        /// Owning job.
        job: u64,
        /// Node the task runs on.
        node: u32,
    },
    /// The task finished.
    TaskFinished {
        /// Task id.
        task: u64,
        /// Owning job.
        job: u64,
        /// Node the task ran on.
        node: u32,
    },
    /// A straggling map task got a speculative duplicate attempt.
    TaskSpeculated {
        /// The straggling task.
        task: u64,
        /// Owning job.
        job: u64,
    },
    /// A map task finished reading its input block.
    BlockRead {
        /// Reading task.
        task: u64,
        /// Owning job.
        job: u64,
        /// Block read.
        block: u64,
        /// Node that served the bytes.
        node: u32,
        /// Bytes read.
        bytes: u64,
        /// Serving medium.
        class: ReadClass,
        /// End-to-end read duration in microseconds.
        duration_us: u64,
    },
    /// A migrate request failed at the master (best-effort: the job reads
    /// cold).
    MigrationRejected {
        /// Requesting job.
        job: u64,
        /// Error description.
        reason: String,
    },
    /// The master assigned a block's migration to a slave.
    MigrationAssigned {
        /// Requesting job.
        job: u64,
        /// Block to migrate.
        block: u64,
        /// Chosen replica holder.
        node: u32,
        /// Block size.
        bytes: u64,
    },
    /// A slave accepted new interest in a block (first command for this
    /// `(job, block)` pair; idempotent redeliveries do not re-emit).
    MigrationEnqueued {
        /// The slave's node.
        node: u32,
        /// Interested job.
        job: u64,
        /// Block to migrate.
        block: u64,
        /// Block size.
        bytes: u64,
    },
    /// A slave started the disk read for a queued migration.
    MigrationStarted {
        /// The slave's node.
        node: u32,
        /// Block being read.
        block: u64,
        /// Block size.
        bytes: u64,
    },
    /// A migration read completed and the block entered memory.
    MigrationCompleted {
        /// The slave's node.
        node: u32,
        /// Migrated block.
        block: u64,
        /// Block size.
        bytes: u64,
    },
    /// A migration read completed but the block was dropped (no interested
    /// job left, or memory filled up meanwhile).
    MigrationWasted {
        /// The slave's node.
        node: u32,
        /// Dropped block.
        block: u64,
        /// Block size.
        bytes: u64,
    },
    /// A queued migration was discarded before starting (missed read or
    /// dead job).
    MigrationDiscarded {
        /// The slave's node.
        node: u32,
        /// Discarded block.
        block: u64,
    },
    /// An in-flight migration read was cancelled (purge or restart).
    MigrationCancelled {
        /// The slave's node.
        node: u32,
        /// Cancelled block.
        block: u64,
    },
    /// A migrated block left memory (reference list emptied or purge).
    BlockEvicted {
        /// The slave's node.
        node: u32,
        /// Evicted block.
        block: u64,
        /// Bytes released.
        bytes: u64,
    },
    /// A message was offered to the control-plane channel.
    RpcSent {
        /// Sender.
        from: Peer,
        /// Receiver.
        to: Peer,
    },
    /// The channel dropped a message.
    RpcDropped {
        /// Sender.
        from: Peer,
        /// Receiver.
        to: Peer,
    },
    /// The channel delivered a message twice.
    RpcDuplicated {
        /// Sender.
        from: Peer,
        /// Receiver.
        to: Peer,
    },
    /// An active partition cut the message off.
    RpcCut {
        /// Sender.
        from: Peer,
        /// Receiver.
        to: Peer,
    },
    /// The master retransmitted an unacknowledged send.
    RpcRetried {
        /// Sequence number of the send.
        seq: u64,
        /// Destination slave.
        node: u32,
        /// Delivery attempt number (2 on the first retransmission).
        attempt: u32,
    },
    /// The master received an acknowledgement for an outstanding send.
    RpcAcked {
        /// Sequence number of the send.
        seq: u64,
    },
    /// The master exhausted every retransmission attempt.
    RpcGaveUp {
        /// Sequence number of the send.
        seq: u64,
        /// Unreachable slave.
        node: u32,
    },
    /// A slave's lease on a job's references expired un-renewed; the job's
    /// interest on that node was released (eviction/discard events follow).
    LeaseExpired {
        /// Node whose slave held the lease.
        node: u32,
        /// The job whose references were released.
        job: u64,
    },
    /// A slave rejected a master command stamped with a stale epoch (a
    /// retransmission from a master incarnation that has since failed over).
    EpochRejected {
        /// Rejecting node.
        node: u32,
        /// The stale epoch carried by the command.
        stale: u64,
        /// The epoch the slave currently recognizes.
        current: u64,
    },
    /// A slave rejected a master command stamped with a stale incarnation
    /// (a retransmission addressed to a crashed-and-replaced boot of the
    /// node's daemon).
    IncarnationRejected {
        /// Rejecting node.
        node: u32,
        /// The stale incarnation carried by the command.
        stale: u64,
        /// The incarnation the slave is currently running.
        current: u64,
    },
    /// A node crashed: its volatile memory is gone, its NIC is down, and
    /// every in-flight transfer touching it was dropped. The matching
    /// `BlockEvicted` events for wiped RAM replicas carry the same
    /// timestamp.
    NodeCrashed {
        /// The crashed node.
        node: u32,
    },
    /// A crashed node restarted under a fresh incarnation (durable disk
    /// blocks intact, memory empty, not yet re-registered).
    NodeRestarted {
        /// The restarted node.
        node: u32,
        /// The incarnation the slave now runs under.
        incarnation: u64,
    },
    /// The master processed a restarted slave's registration: stale
    /// outbox state for the dead incarnation was purged.
    SlaveRegistered {
        /// The registering node.
        node: u32,
        /// The incarnation the master now records for the node.
        incarnation: u64,
    },
    /// The master absorbed a re-registered node's full block report; its
    /// durable replicas are visible to reads again.
    BlockReportReceived {
        /// The reporting node.
        node: u32,
        /// Number of block replicas the report restored.
        blocks: u64,
    },
    /// The NameNode started copying an under-replicated block to restore
    /// its replication factor.
    RereplicationStarted {
        /// The block being copied.
        block: u64,
        /// The surviving replica holder serving the read.
        source: u32,
        /// The node receiving the new replica.
        target: u32,
        /// Block size.
        bytes: u64,
    },
    /// Re-replication of a block found no usable source or target and was
    /// deferred to a backoff retry.
    RereplicationDeferred {
        /// The block that could not be copied yet.
        block: u64,
        /// Backoff attempt number (1 on the first deferral).
        attempt: u32,
    },
    /// A fault was injected.
    FaultInjected {
        /// Debug rendering of the fault.
        desc: String,
    },
    /// A transient fault healed (disk restored, node resumed, partition
    /// healed).
    FaultHealed {
        /// What healed.
        desc: String,
    },
}

impl Event {
    /// Stable JSON type tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::JobSubmitted { .. } => "job_submitted",
            Event::JobScheduled { .. } => "job_scheduled",
            Event::JobCompleted { .. } => "job_completed",
            Event::TaskAssigned { .. } => "task_assigned",
            Event::TaskStarted { .. } => "task_started",
            Event::TaskFinished { .. } => "task_finished",
            Event::TaskSpeculated { .. } => "task_speculated",
            Event::BlockRead { .. } => "block_read",
            Event::MigrationRejected { .. } => "migration_rejected",
            Event::MigrationAssigned { .. } => "migration_assigned",
            Event::MigrationEnqueued { .. } => "migration_enqueued",
            Event::MigrationStarted { .. } => "migration_started",
            Event::MigrationCompleted { .. } => "migration_completed",
            Event::MigrationWasted { .. } => "migration_wasted",
            Event::MigrationDiscarded { .. } => "migration_discarded",
            Event::MigrationCancelled { .. } => "migration_cancelled",
            Event::BlockEvicted { .. } => "block_evicted",
            Event::RpcSent { .. } => "rpc_sent",
            Event::RpcDropped { .. } => "rpc_dropped",
            Event::RpcDuplicated { .. } => "rpc_duplicated",
            Event::RpcCut { .. } => "rpc_cut",
            Event::RpcRetried { .. } => "rpc_retried",
            Event::RpcAcked { .. } => "rpc_acked",
            Event::RpcGaveUp { .. } => "rpc_gave_up",
            Event::LeaseExpired { .. } => "lease_expired",
            Event::EpochRejected { .. } => "epoch_rejected",
            Event::IncarnationRejected { .. } => "incarnation_rejected",
            Event::NodeCrashed { .. } => "node_crashed",
            Event::NodeRestarted { .. } => "node_restarted",
            Event::SlaveRegistered { .. } => "slave_registered",
            Event::BlockReportReceived { .. } => "block_report_received",
            Event::RereplicationStarted { .. } => "rereplication_started",
            Event::RereplicationDeferred { .. } => "rereplication_deferred",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultHealed { .. } => "fault_healed",
        }
    }

    /// Legacy trace category (the tag the string-based sinks filtered on).
    pub fn category(&self) -> &'static str {
        match self {
            Event::JobSubmitted { .. }
            | Event::JobScheduled { .. }
            | Event::JobCompleted { .. } => "job",
            Event::TaskAssigned { .. }
            | Event::TaskStarted { .. }
            | Event::TaskFinished { .. }
            | Event::TaskSpeculated { .. } => "task",
            Event::BlockRead { .. } => "read",
            Event::MigrationRejected { .. }
            | Event::MigrationAssigned { .. }
            | Event::MigrationEnqueued { .. }
            | Event::MigrationStarted { .. }
            | Event::MigrationCompleted { .. }
            | Event::MigrationWasted { .. }
            | Event::MigrationDiscarded { .. }
            | Event::MigrationCancelled { .. }
            | Event::BlockEvicted { .. }
            | Event::LeaseExpired { .. }
            | Event::EpochRejected { .. }
            | Event::IncarnationRejected { .. } => "migration",
            Event::RpcSent { .. }
            | Event::RpcDropped { .. }
            | Event::RpcDuplicated { .. }
            | Event::RpcCut { .. }
            | Event::RpcRetried { .. }
            | Event::RpcAcked { .. }
            | Event::RpcGaveUp { .. } => "rpc",
            Event::NodeCrashed { .. }
            | Event::NodeRestarted { .. }
            | Event::SlaveRegistered { .. }
            | Event::BlockReportReceived { .. }
            | Event::RereplicationStarted { .. }
            | Event::RereplicationDeferred { .. }
            | Event::FaultInjected { .. }
            | Event::FaultHealed { .. } => "fault",
        }
    }

    /// Renders the event as the legacy human-readable trace message.
    pub fn legacy_message(&self) -> String {
        match self {
            Event::JobSubmitted {
                job, name, stage, ..
            } => format!("{name} submitted as job {job} (stage {stage})"),
            Event::JobScheduled { job } => format!("job {job} became schedulable"),
            Event::JobCompleted { job, duration_us } => {
                format!("job {job} finished after {:.2}s", *duration_us as f64 / 1e6)
            }
            Event::TaskAssigned { task, job, node } => {
                format!("task {task} of job {job} assigned to node{node}")
            }
            Event::TaskStarted { task, job, node } => {
                format!("task {task} of job {job} launched on node{node}")
            }
            Event::TaskFinished { task, job, node } => {
                format!("task {task} of job {job} finished on node{node}")
            }
            Event::TaskSpeculated { task, job } => {
                format!("straggler task {task} of job {job} speculated")
            }
            Event::BlockRead {
                task,
                block,
                node,
                bytes,
                class,
                duration_us,
                ..
            } => format!(
                "task {task} read block {block} ({bytes} bytes) from {} via node{node} in {:.3}s",
                class.tag(),
                *duration_us as f64 / 1e6
            ),
            Event::MigrationRejected { job, reason } => {
                format!("migrate request for job {job} rejected: {reason}")
            }
            Event::MigrationAssigned {
                job,
                block,
                node,
                bytes,
            } => format!("job {job}: block {block} assigned to node{node} ({bytes} bytes)"),
            Event::MigrationEnqueued {
                node,
                job,
                block,
                bytes,
            } => format!("node{node} queues block {block} for job {job} ({bytes} bytes)"),
            Event::MigrationStarted { node, block, bytes } => {
                format!("node{node} starts migrating block {block} ({bytes} bytes)")
            }
            Event::MigrationCompleted { node, block, bytes } => {
                format!("node{node} finished migrating block {block} ({bytes} bytes)")
            }
            Event::MigrationWasted { node, block, .. } => {
                format!("node{node} wasted migration read of block {block}")
            }
            Event::MigrationDiscarded { node, block } => {
                format!("node{node} discards queued block {block}")
            }
            Event::MigrationCancelled { node, block } => {
                format!("node{node} cancels in-flight migration of block {block}")
            }
            Event::BlockEvicted { node, block, bytes } => {
                format!("node{node} evicts block {block} ({bytes} bytes)")
            }
            Event::RpcSent { from, to } => format!("message {from} -> {to}"),
            Event::RpcDropped { from, to } => format!("dropped {from} -> {to}"),
            Event::RpcDuplicated { from, to } => format!("duplicated {from} -> {to}"),
            Event::RpcCut { from, to } => format!("partitioned {from} -> {to}"),
            Event::RpcRetried { seq, node, attempt } => {
                format!("retransmitting seq {seq} to node{node} (attempt {attempt})")
            }
            Event::RpcAcked { seq } => format!("seq {seq} acked"),
            Event::RpcGaveUp { seq, node } => format!("gave up on seq {seq} to node{node}"),
            Event::LeaseExpired { node, job } => {
                format!("node{node} expires lease of job {job}")
            }
            Event::EpochRejected {
                node,
                stale,
                current,
            } => format!("node{node} rejects stale epoch {stale} (current {current})"),
            Event::IncarnationRejected {
                node,
                stale,
                current,
            } => format!("node{node} rejects stale incarnation {stale} (current {current})"),
            Event::NodeCrashed { node } => format!("node{node} crashed"),
            Event::NodeRestarted { node, incarnation } => {
                format!("node{node} restarted as incarnation {incarnation}")
            }
            Event::SlaveRegistered { node, incarnation } => {
                format!("master registers node{node} incarnation {incarnation}")
            }
            Event::BlockReportReceived { node, blocks } => {
                format!("block report from node{node} restores {blocks} replicas")
            }
            Event::RereplicationStarted {
                block,
                source,
                target,
                bytes,
            } => format!(
                "re-replicating block {block} ({bytes} bytes) from node{source} to node{target}"
            ),
            Event::RereplicationDeferred { block, attempt } => {
                format!("re-replication of block {block} deferred (attempt {attempt})")
            }
            Event::FaultInjected { desc } => desc.clone(),
            Event::FaultHealed { desc } => format!("healed: {desc}"),
        }
    }

    fn json_fields(&self, out: &mut String) {
        match self {
            Event::JobSubmitted {
                job,
                name,
                plan,
                stage,
            } => {
                push_u64(out, "job", *job);
                push_str(out, "name", name);
                push_u64(out, "plan", *plan);
                push_u64(out, "stage", *stage);
            }
            Event::JobScheduled { job } => push_u64(out, "job", *job),
            Event::JobCompleted { job, duration_us } => {
                push_u64(out, "job", *job);
                push_u64(out, "duration_us", *duration_us);
            }
            Event::TaskAssigned { task, job, node }
            | Event::TaskStarted { task, job, node }
            | Event::TaskFinished { task, job, node } => {
                push_u64(out, "task", *task);
                push_u64(out, "job", *job);
                push_u64(out, "node", *node as u64);
            }
            Event::TaskSpeculated { task, job } => {
                push_u64(out, "task", *task);
                push_u64(out, "job", *job);
            }
            Event::BlockRead {
                task,
                job,
                block,
                node,
                bytes,
                class,
                duration_us,
            } => {
                push_u64(out, "task", *task);
                push_u64(out, "job", *job);
                push_u64(out, "block", *block);
                push_u64(out, "node", *node as u64);
                push_u64(out, "bytes", *bytes);
                push_str(out, "class", class.tag());
                push_u64(out, "duration_us", *duration_us);
            }
            Event::MigrationRejected { job, reason } => {
                push_u64(out, "job", *job);
                push_str(out, "reason", reason);
            }
            Event::MigrationAssigned {
                job,
                block,
                node,
                bytes,
            } => {
                push_u64(out, "job", *job);
                push_u64(out, "block", *block);
                push_u64(out, "node", *node as u64);
                push_u64(out, "bytes", *bytes);
            }
            Event::MigrationEnqueued {
                node,
                job,
                block,
                bytes,
            } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "job", *job);
                push_u64(out, "block", *block);
                push_u64(out, "bytes", *bytes);
            }
            Event::MigrationStarted { node, block, bytes }
            | Event::MigrationCompleted { node, block, bytes }
            | Event::MigrationWasted { node, block, bytes }
            | Event::BlockEvicted { node, block, bytes } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "block", *block);
                push_u64(out, "bytes", *bytes);
            }
            Event::MigrationDiscarded { node, block }
            | Event::MigrationCancelled { node, block } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "block", *block);
            }
            Event::RpcSent { from, to }
            | Event::RpcDropped { from, to }
            | Event::RpcDuplicated { from, to }
            | Event::RpcCut { from, to } => {
                push_i64(out, "from", from.as_i64());
                push_i64(out, "to", to.as_i64());
            }
            Event::RpcRetried { seq, node, attempt } => {
                push_u64(out, "rpc_seq", *seq);
                push_u64(out, "node", *node as u64);
                push_u64(out, "attempt", *attempt as u64);
            }
            Event::RpcAcked { seq } => push_u64(out, "rpc_seq", *seq),
            Event::RpcGaveUp { seq, node } => {
                push_u64(out, "rpc_seq", *seq);
                push_u64(out, "node", *node as u64);
            }
            Event::LeaseExpired { node, job } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "job", *job);
            }
            Event::EpochRejected {
                node,
                stale,
                current,
            }
            | Event::IncarnationRejected {
                node,
                stale,
                current,
            } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "stale", *stale);
                push_u64(out, "current", *current);
            }
            Event::NodeCrashed { node } => push_u64(out, "node", *node as u64),
            Event::NodeRestarted { node, incarnation }
            | Event::SlaveRegistered { node, incarnation } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "incarnation", *incarnation);
            }
            Event::BlockReportReceived { node, blocks } => {
                push_u64(out, "node", *node as u64);
                push_u64(out, "blocks", *blocks);
            }
            Event::RereplicationStarted {
                block,
                source,
                target,
                bytes,
            } => {
                push_u64(out, "block", *block);
                push_u64(out, "source", *source as u64);
                push_u64(out, "target", *target as u64);
                push_u64(out, "bytes", *bytes);
            }
            Event::RereplicationDeferred { block, attempt } => {
                push_u64(out, "block", *block);
                push_u64(out, "attempt", *attempt as u64);
            }
            Event::FaultInjected { desc } | Event::FaultHealed { desc } => {
                push_str(out, "desc", desc);
            }
        }
    }
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_i64(out: &mut String, key: &str, v: i64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_str(out: &mut String, key: &str, v: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    escape_into(out, v);
}

/// Appends `s` as a JSON string literal (quotes included).
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One emitted event: the payload plus its stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic per-run sequence number (emission order).
    pub seq: u64,
    /// Simulated time of the transition.
    pub at: SimTime,
    /// The typed payload.
    pub event: Event,
}

impl EventRecord {
    /// Renders the record as one JSON object (one JSONL line, without the
    /// trailing newline). Field order is fixed and all values are integers
    /// or escaped strings, so deterministic runs yield bit-identical
    /// traces.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"at_us\":");
        s.push_str(&self.at.as_micros().to_string());
        s.push_str(",\"type\":\"");
        s.push_str(self.event.kind());
        s.push('"');
        self.event.json_fields(&mut s);
        s.push('}');
        s
    }
}

/// A consumer of typed event records.
pub trait EventSink {
    /// Receives one record. Records arrive in strictly increasing `seq`
    /// order with nondecreasing timestamps.
    fn record(&mut self, rec: &EventRecord);
}

struct Inner {
    now: SimTime,
    next_seq: u64,
    sink: Box<dyn EventSink>,
}

/// A cheap, cloneable emission handle shared by every instrumented
/// component. A default-constructed handle is **disabled**: emitting
/// through it is a single `Option` check and the event constructor never
/// runs.
///
/// The handle carries a "now cursor" rather than taking a time per
/// emission, so clock-less components (the Ignem master, the RPC channel)
/// can emit correctly stamped events: the simulation loop calls
/// [`set_now`](Telemetry::set_now) once per dispatched event.
///
/// ```
/// use ignem_simcore::telemetry::{Event, FlightRecorder, Telemetry};
/// use ignem_simcore::time::SimTime;
///
/// let recorder = FlightRecorder::new(16);
/// let tele = Telemetry::new(Box::new(recorder.clone()));
/// tele.set_now(SimTime::from_secs(1));
/// tele.emit(|| Event::JobScheduled { job: 7 });
/// assert_eq!(recorder.len(), 1);
/// assert_eq!(recorder.events()[0].at, SimTime::from_secs(1));
/// ```
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Telemetry {
    /// Creates an enabled handle feeding `sink`.
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Inner {
                now: SimTime::ZERO,
                next_seq: 0,
                sink,
            }))),
        }
    }

    /// Whether a sink is installed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the shared now-cursor; subsequent emissions are stamped
    /// with `at`. A no-op on a disabled handle.
    pub fn set_now(&self, at: SimTime) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now = at;
        }
    }

    /// Emits one event. The constructor closure only runs when a sink is
    /// installed, so argument formatting is free when telemetry is off.
    pub fn emit(&self, event: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            let rec = EventRecord {
                seq: inner.next_seq,
                at: inner.now,
                event: event(),
            };
            inner.next_seq += 1;
            inner.sink.record(&rec);
        }
    }

    /// The shared `(now, next_seq)` cursor, or `None` on a disabled
    /// handle. World snapshots capture this so a restored continuation
    /// keeps stamping records with a gap-free sequence.
    pub fn cursor(&self) -> Option<(SimTime, u64)> {
        self.inner.as_ref().map(|inner| {
            let i = inner.borrow();
            (i.now, i.next_seq)
        })
    }

    /// Rewinds the shared cursor to a value captured by
    /// [`Telemetry::cursor`]. Every component clone hanging off the same
    /// inner sees the rewound cursor — the sink itself is untouched. A
    /// no-op on a disabled handle.
    pub fn restore_cursor(&self, now: SimTime, next_seq: u64) {
        if let Some(inner) = &self.inner {
            let mut i = inner.borrow_mut();
            i.now = now;
            i.next_seq = next_seq;
        }
    }

    /// Swaps the sink behind the shared handle, returning the old one.
    /// Because master, slaves and RPC all clone one `Telemetry`, the swap
    /// redirects every emitter at once — the restore path uses this to
    /// point a forked continuation at a fresh recorder without rebuilding
    /// the world. Returns `None` (and installs nothing) on a disabled
    /// handle.
    pub fn replace_sink(&self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.inner
            .as_ref()
            .map(|inner| std::mem::replace(&mut inner.borrow_mut().sink, sink))
    }
}

struct RecorderState {
    capacity: usize,
    buf: VecDeque<EventRecord>,
    dropped: u64,
}

/// A bounded ring-buffer sink: keeps the most recent `capacity` records
/// and counts the ones it had to drop. Cloning shares the buffer, so the
/// caller keeps a handle while the simulation owns the sink — the
/// [`SharedVecSink`](crate::trace::SharedVecSink) pattern, but bounded.
#[derive(Clone)]
pub struct FlightRecorder {
    state: Rc<RefCell<RecorderState>>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("FlightRecorder")
            .field("capacity", &s.capacity)
            .field("len", &s.buf.len())
            .field("dropped", &s.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity flight recorder");
        FlightRecorder {
            state: Rc::new(RefCell::new(RecorderState {
                capacity,
                buf: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.state.borrow().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.state.borrow().buf.is_empty()
    }

    /// Records evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state.borrow().dropped
    }

    /// Copies the buffered records out, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.state.borrow().buf.iter().cloned().collect()
    }

    /// Renders the buffered records as JSONL (one record per line,
    /// trailing newline included when nonempty).
    pub fn to_jsonl(&self) -> String {
        let state = self.state.borrow();
        let mut out = String::with_capacity(state.buf.len() * 96);
        for rec in &state.buf {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

impl EventSink for FlightRecorder {
    fn record(&mut self, rec: &EventRecord) {
        let mut s = self.state.borrow_mut();
        if s.buf.len() == s.capacity {
            s.buf.pop_front();
            s.dropped += 1;
        }
        s.buf.push_back(rec.clone());
    }
}

/// Adapts a legacy [`TraceSink`] to the typed event stream: every event is
/// formatted into the old `(time, category, message)` shape, so existing
/// string sinks keep working behind `World::with_trace`.
pub struct TraceAdapter {
    sink: Box<dyn TraceSink>,
}

impl TraceAdapter {
    /// Wraps a legacy sink.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        TraceAdapter { sink }
    }
}

impl EventSink for TraceAdapter {
    fn record(&mut self, rec: &EventRecord) {
        self.sink
            .record(rec.at, rec.event.category(), rec.event.legacy_message());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SharedVecSink;

    fn job_event(job: u64) -> Event {
        Event::JobScheduled { job }
    }

    #[test]
    fn disabled_handle_never_runs_the_constructor() {
        let tele = Telemetry::default();
        assert!(!tele.is_enabled());
        tele.emit(|| panic!("constructor must not run when disabled"));
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_time_stamped() {
        let rec = FlightRecorder::new(8);
        let tele = Telemetry::new(Box::new(rec.clone()));
        tele.set_now(SimTime::from_secs(1));
        tele.emit(|| job_event(1));
        tele.set_now(SimTime::from_secs(2));
        tele.emit(|| job_event(2));
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].at, SimTime::from_secs(1));
        assert_eq!(events[1].at, SimTime::from_secs(2));
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let rec = FlightRecorder::new(2);
        let tele = Telemetry::new(Box::new(rec.clone()));
        for j in 0..5 {
            tele.emit(|| job_event(j));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let events = rec.events();
        assert!(matches!(events[0].event, Event::JobScheduled { job: 3 }));
        assert!(matches!(events[1].event, Event::JobScheduled { job: 4 }));
        // Dropped records do not disturb the surviving sequence numbers.
        assert_eq!(events[0].seq, 3);
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let rec = EventRecord {
            seq: 3,
            at: SimTime::from_micros(1_500_000),
            event: Event::JobSubmitted {
                job: 7,
                name: "a \"quoted\"\nname".into(),
                plan: 1,
                stage: 0,
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"seq\":3,\"at_us\":1500000,\"type\":\"job_submitted\",\"job\":7,\
             \"name\":\"a \\\"quoted\\\"\\nname\",\"plan\":1,\"stage\":0}"
        );
        let peer = EventRecord {
            seq: 0,
            at: SimTime::ZERO,
            event: Event::RpcDropped {
                from: Peer::Master,
                to: Peer::Node(3),
            },
        };
        assert_eq!(
            peer.to_json(),
            "{\"seq\":0,\"at_us\":0,\"type\":\"rpc_dropped\",\"from\":-1,\"to\":3}"
        );
    }

    #[test]
    fn jsonl_export_is_one_record_per_line() {
        let rec = FlightRecorder::new(8);
        let tele = Telemetry::new(Box::new(rec.clone()));
        tele.emit(|| job_event(1));
        tele.emit(|| job_event(2));
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn trace_adapter_preserves_legacy_shape() {
        let (legacy, entries) = SharedVecSink::new();
        let tele = Telemetry::new(Box::new(TraceAdapter::new(Box::new(legacy))));
        tele.set_now(SimTime::from_secs(2));
        tele.emit(|| Event::JobSubmitted {
            job: 1,
            name: "wc".into(),
            plan: 0,
            stage: 0,
        });
        tele.emit(|| Event::MigrationStarted {
            node: 3,
            block: 9,
            bytes: 64,
        });
        let e = entries.borrow();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].category, "job");
        assert!(e[0].message.contains("submitted"));
        assert_eq!(e[0].at, SimTime::from_secs(2));
        assert_eq!(e[1].category, "migration");
        assert!(e[1].message.contains("block 9"));
    }

    #[test]
    fn every_variant_has_consistent_kind_and_category() {
        let samples = vec![
            Event::JobSubmitted {
                job: 0,
                name: String::new(),
                plan: 0,
                stage: 0,
            },
            Event::JobScheduled { job: 0 },
            Event::JobCompleted {
                job: 0,
                duration_us: 0,
            },
            Event::TaskAssigned {
                task: 0,
                job: 0,
                node: 0,
            },
            Event::TaskStarted {
                task: 0,
                job: 0,
                node: 0,
            },
            Event::TaskFinished {
                task: 0,
                job: 0,
                node: 0,
            },
            Event::TaskSpeculated { task: 0, job: 0 },
            Event::BlockRead {
                task: 0,
                job: 0,
                block: 0,
                node: 0,
                bytes: 0,
                class: ReadClass::Memory,
                duration_us: 0,
            },
            Event::MigrationRejected {
                job: 0,
                reason: String::new(),
            },
            Event::MigrationAssigned {
                job: 0,
                block: 0,
                node: 0,
                bytes: 0,
            },
            Event::MigrationEnqueued {
                node: 0,
                job: 0,
                block: 0,
                bytes: 0,
            },
            Event::MigrationStarted {
                node: 0,
                block: 0,
                bytes: 0,
            },
            Event::MigrationCompleted {
                node: 0,
                block: 0,
                bytes: 0,
            },
            Event::MigrationWasted {
                node: 0,
                block: 0,
                bytes: 0,
            },
            Event::MigrationDiscarded { node: 0, block: 0 },
            Event::MigrationCancelled { node: 0, block: 0 },
            Event::BlockEvicted {
                node: 0,
                block: 0,
                bytes: 0,
            },
            Event::RpcSent {
                from: Peer::Master,
                to: Peer::Node(0),
            },
            Event::RpcDropped {
                from: Peer::Master,
                to: Peer::Node(0),
            },
            Event::RpcDuplicated {
                from: Peer::Master,
                to: Peer::Node(0),
            },
            Event::RpcCut {
                from: Peer::Master,
                to: Peer::Node(0),
            },
            Event::RpcRetried {
                seq: 0,
                node: 0,
                attempt: 2,
            },
            Event::RpcAcked { seq: 0 },
            Event::RpcGaveUp { seq: 0, node: 0 },
            Event::LeaseExpired { node: 0, job: 0 },
            Event::EpochRejected {
                node: 0,
                stale: 0,
                current: 1,
            },
            Event::IncarnationRejected {
                node: 0,
                stale: 1,
                current: 2,
            },
            Event::NodeCrashed { node: 0 },
            Event::NodeRestarted {
                node: 0,
                incarnation: 2,
            },
            Event::SlaveRegistered {
                node: 0,
                incarnation: 2,
            },
            Event::BlockReportReceived { node: 0, blocks: 0 },
            Event::RereplicationStarted {
                block: 0,
                source: 0,
                target: 1,
                bytes: 0,
            },
            Event::RereplicationDeferred {
                block: 0,
                attempt: 1,
            },
            Event::FaultInjected {
                desc: String::new(),
            },
            Event::FaultHealed {
                desc: String::new(),
            },
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for ev in &samples {
            assert!(kinds.insert(ev.kind()), "duplicate kind {}", ev.kind());
            assert!(!ev.category().is_empty());
            let json = EventRecord {
                seq: 0,
                at: SimTime::ZERO,
                event: ev.clone(),
            }
            .to_json();
            // Crude structural check: balanced braces, quoted type tag.
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains(&format!("\"type\":\"{}\"", ev.kind())));
        }
        assert_eq!(kinds.len(), samples.len());
    }
}
