//! Chrome trace-event JSON export for span forests and metric windows.
//!
//! Emits the legacy trace-event format (`{"traceEvents":[...]}`), which
//! Perfetto (ui.perfetto.dev) and `chrome://tracing` both open directly.
//! Spans render as complete (`ph:"X"`) duration events on per-node tracks
//! — pid 0 is the cluster/master track, pid `n+1` is node `n` — and each
//! metric window renders as a counter (`ph:"C"`) sample on the cluster
//! track. All timestamps and values are integers (micros), so the output
//! is bit-identical across runs whenever the span forest is.

use crate::metrics::MetricsReport;
use crate::span::SpanForest;

/// Renders a span forest (and optionally a metrics report) as a Chrome
/// trace-event JSON string.
pub fn export(forest: &SpanForest, metrics: Option<&MetricsReport>) -> String {
    let mut events: Vec<String> = Vec::new();

    // Process-name metadata so Perfetto labels tracks.
    let mut pids: Vec<i64> = forest.spans.iter().map(|s| s.node).collect();
    pids.push(-1);
    pids.sort_unstable();
    pids.dedup();
    for node in pids {
        let pid = node + 1;
        let name = if node < 0 {
            "cluster".to_string()
        } else {
            format!("node{node}")
        };
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    // Spans, in id order (already canonical in the forest).
    for s in &forest.spans {
        let pid = s.node + 1;
        let parent = s.parent.map(|p| p.0 as i64).unwrap_or(-1);
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{name}\",\"cat\":\"{cat}\",\
             \"args\":{{\"span\":{span},\"parent\":{parent},\"job\":{job},\"block\":{block}}}}}",
            ts = s.start.as_micros(),
            dur = s.duration().as_micros(),
            name = s.name,
            cat = s.category.tag(),
            span = s.id.0,
            job = s.job,
            block = s.block,
        ));
    }

    // Metric windows as counter tracks on the cluster pid.
    if let Some(report) = metrics {
        for w in &report.windows {
            let ts = w.start_us;
            for ((name, tag), v) in &w.counters {
                events.push(counter_event(ts, name, *tag, *v as i64));
            }
            for ((name, tag), v) in &w.gauges {
                events.push(counter_event(ts, name, *tag, *v));
            }
            for ((name, tag), h) in &w.hists {
                events.push(counter_event(ts, name, *tag, h.count as i64));
            }
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        events.join(",\n")
    )
}

fn counter_event(ts: u64, name: &str, tag: u64, value: i64) -> String {
    format!(
        "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{ts},\
         \"name\":\"{name}[{tag}]\",\"args\":{{\"value\":{value}}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::telemetry::{Event, EventRecord};
    use crate::time::{SimDuration, SimTime};

    fn forest() -> SpanForest {
        let evs = vec![
            EventRecord {
                seq: 0,
                at: SimTime::from_secs(1),
                event: Event::MigrationAssigned {
                    job: 1,
                    block: 2,
                    node: 0,
                    bytes: 64,
                },
            },
            EventRecord {
                seq: 1,
                at: SimTime::from_secs(2),
                event: Event::MigrationEnqueued {
                    node: 0,
                    job: 1,
                    block: 2,
                    bytes: 64,
                },
            },
            EventRecord {
                seq: 2,
                at: SimTime::from_secs(3),
                event: Event::MigrationStarted {
                    node: 0,
                    block: 2,
                    bytes: 64,
                },
            },
            EventRecord {
                seq: 3,
                at: SimTime::from_secs(4),
                event: Event::MigrationCompleted {
                    node: 0,
                    block: 2,
                    bytes: 64,
                },
            },
        ];
        SpanForest::build(&evs)
    }

    #[test]
    fn export_is_valid_shaped_integer_only_json() {
        let json = export(&forest(), None);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Integer-only: no float formatting anywhere.
        assert!(!json.contains('.'), "floats leaked into the trace");
        // Balanced braces (cheap structural check without a JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        // Track metadata present for node 0.
        assert!(json.contains("\"name\":\"node0\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn export_is_deterministic() {
        let f = forest();
        assert_eq!(export(&f, None), export(&f, None));
    }

    #[test]
    fn counter_tracks_come_from_metric_windows() {
        let reg = MetricsRegistry::new(SimDuration::from_secs(1));
        reg.set_now(SimTime::ZERO);
        reg.counter_add("migrations", 0, 3);
        reg.gauge_set("occupancy", 1, 42);
        let report = reg.finish(SimTime::from_secs(1));
        let json = export(&forest(), Some(&report));
        assert!(json.contains("\"name\":\"migrations[0]\""));
        assert!(json.contains("\"name\":\"occupancy[1]\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(!json.contains('.'));
    }
}
