//! Fluid-flow modelling of shared, rate-limited resources.
//!
//! Disks and NICs are modelled as *processor-sharing* servers: `n` concurrent
//! transfers each progress at an equal share of the device's effective
//! capacity. For mechanical disks the effective capacity itself shrinks as
//! concurrency rises (seek thrashing), captured by a **degradation factor**
//! `d`: with `n` active requests the device delivers
//! `C / (1 + d·(n − 1))` bytes/s in total, split evenly among transferring
//! flows. This is the phenomenon Ignem exploits by migrating one block at a
//! time (paper §III-A1) and the reason Fig. 1's HDD reads are so slow under
//! concurrent mappers.
//!
//! [`FlowResource`] is a pure state machine: callers drive it with
//! [`FlowResource::advance`] and query [`FlowResource::next_event`] to learn
//! when the earliest internal change (a seek finishing or a flow completing)
//! occurs. It never schedules events itself, which keeps it independently
//! testable and lets the cluster simulation map changes onto engine timers.

use crate::idmap::{DenseId, IdMap};
use crate::time::{SimDuration, SimTime};

/// Identifies one flow (transfer) on a resource. Caller-assigned; must be
/// unique among concurrently active flows on the same resource, and ids of
/// concurrently active flows must stay numerically close (the flow table is
/// a dense sliding-window [`IdMap`] whose memory is proportional to the live
/// id span — monotone counters are ideal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl DenseId for FlowId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        FlowId(index as u64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Positioning (disk seek); occupies the device but transfers no bytes.
    Seeking { until: SimTime },
    /// Transferring bytes at the current shared rate.
    Transferring,
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64, // bytes
    phase: Phase,
}

/// A shared resource carrying fluid flows (see module docs).
///
/// ```
/// use ignem_simcore::flow::{FlowId, FlowResource};
/// use ignem_simcore::time::{SimDuration, SimTime};
///
/// // 100 MB/s, no degradation.
/// let mut disk = FlowResource::new(100e6, 0.0);
/// let t0 = SimTime::ZERO;
/// disk.add(t0, FlowId(1), 50e6, SimDuration::ZERO);
/// // Alone, the 50 MB flow finishes after 0.5 s.
/// assert_eq!(disk.next_event(), Some(SimTime::from_secs_f64(0.5)));
/// let done = disk.advance(SimTime::from_secs_f64(0.5));
/// assert_eq!(done, vec![FlowId(1)]);
/// ```
#[derive(Debug, Clone)]
pub struct FlowResource {
    capacity: f64,    // bytes/sec at concurrency 1
    degradation: f64, // d in C / (1 + d (n-1))
    flows: IdMap<FlowId, Flow>,
    clock: SimTime,
    // Lifetime accounting (drives utilisation figures).
    bytes_completed: f64,
    busy: SimDuration,
}

/// Sub-microsecond residue: a flow with at most this much transfer time left
/// counts as complete (absorbs integer-microsecond rounding).
const COMPLETION_SLACK_SECS: f64 = 2e-6;

impl FlowResource {
    /// Creates a resource with `capacity` bytes/s and concurrency-degradation
    /// factor `degradation` (0 = ideal sharing).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive or `degradation` is
    /// negative.
    pub fn new(capacity: f64, degradation: f64) -> Self {
        assert!(capacity.is_finite() && capacity > 0.0, "bad capacity");
        assert!(
            degradation.is_finite() && degradation >= 0.0,
            "bad degradation"
        );
        FlowResource {
            capacity,
            degradation,
            flows: IdMap::new(),
            clock: SimTime::ZERO,
            bytes_completed: 0.0,
            busy: SimDuration::ZERO,
        }
    }

    /// Nominal (concurrency-1) capacity in bytes/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Changes the nominal capacity, effective for all time **after** the
    /// internal clock (callers must [`advance`](Self::advance) to the change
    /// instant first so earlier progress is accounted at the old rate). Used
    /// by gray-fault injection (a degraded disk). Any previously queried
    /// [`next_event`](Self::next_event) is invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(capacity.is_finite() && capacity > 0.0, "bad capacity");
        self.capacity = capacity;
    }

    /// Number of active flows (seeking or transferring).
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered by completed *and* in-progress flows so far.
    pub fn bytes_completed(&self) -> f64 {
        self.bytes_completed
    }

    /// Cumulative time the resource had at least one active flow.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// The internal clock (last time state was advanced to).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Effective total delivery rate with `n` active flows.
    pub fn effective_capacity(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.capacity / (1.0 + self.degradation * (n as f64 - 1.0))
        }
    }

    /// Current per-flow transfer rate (bytes/s) for transferring flows.
    pub fn per_flow_rate(&self) -> f64 {
        let n_active = self.flows.len();
        let n_xfer = self
            .flows
            .values()
            .filter(|f| matches!(f.phase, Phase::Transferring))
            .count();
        if n_xfer == 0 {
            0.0
        } else {
            self.effective_capacity(n_active) / n_xfer as f64
        }
    }

    /// Bytes left for a flow, if it is active.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Starts a new flow of `bytes` at time `now`, preceded by `seek`
    /// positioning latency. Returns flows that completed while advancing the
    /// internal clock to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already active, `bytes` is not positive/finite, or
    /// `now` precedes the internal clock.
    pub fn add(&mut self, now: SimTime, id: FlowId, bytes: f64, seek: SimDuration) -> Vec<FlowId> {
        assert!(bytes.is_finite() && bytes > 0.0, "bad byte count: {bytes}");
        let done = self.advance(now);
        let phase = if seek.is_zero() {
            Phase::Transferring
        } else {
            Phase::Seeking { until: now + seek }
        };
        let prev = self.flows.insert(
            id,
            Flow {
                remaining: bytes,
                phase,
            },
        );
        assert!(prev.is_none(), "duplicate flow id {id:?}");
        done
    }

    /// Cancels an active flow (no completion is reported for it). Returns
    /// flows that completed while advancing to `now`. Cancelling an unknown
    /// id is a no-op (it may have completed in the same advance).
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Vec<FlowId> {
        let done = self.advance(now);
        self.flows.remove(&id);
        done
    }

    /// The earliest future instant at which the resource's state changes on
    /// its own (a seek completes or a flow finishes), or `None` if no flows
    /// are active. Valid for the state as of the internal clock; any call to
    /// [`add`](Self::add)/[`cancel`](Self::cancel)/[`advance`](Self::advance)
    /// invalidates it.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let rate = self.per_flow_rate();
        for flow in self.flows.values() {
            let t = match flow.phase {
                Phase::Seeking { until } => until,
                Phase::Transferring => {
                    if rate <= 0.0 {
                        continue;
                    }
                    let secs = flow.remaining / rate;
                    let d = SimDuration::from_secs_f64(secs.max(0.0));
                    // Never report an event at (or before) the current
                    // clock: a sub-microsecond residue completes on the
                    // next 1 µs step via the completion slack, and a
                    // zero-delay report would spin the caller's timer.
                    let d = if d.is_zero() {
                        SimDuration::from_micros(1)
                    } else {
                        d
                    };
                    self.clock + d
                }
            };
            let t = t.max(self.clock + SimDuration::from_micros(1));
            earliest = Some(match earliest {
                Some(e) if e <= t => e,
                _ => t,
            });
        }
        earliest
    }

    /// Advances the internal clock to `now`, progressing all flows through
    /// every intermediate rate change. Returns the flows that completed, in
    /// completion order (ties in id order).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the internal clock.
    pub fn advance(&mut self, now: SimTime) -> Vec<FlowId> {
        assert!(
            now >= self.clock,
            "advance backwards: {now} < {}",
            self.clock
        );
        let mut completed = Vec::new();
        while self.clock < now {
            if self.flows.is_empty() {
                self.clock = now;
                break;
            }
            let rate = self.per_flow_rate();
            // Next internal boundary: earliest seek end or projected completion.
            let mut boundary = now;
            for flow in self.flows.values() {
                let t = match flow.phase {
                    Phase::Seeking { until } => until,
                    Phase::Transferring if rate > 0.0 => {
                        self.clock + SimDuration::from_secs_f64(flow.remaining / rate)
                    }
                    Phase::Transferring => continue,
                };
                if t < boundary {
                    boundary = t;
                }
            }
            let step = boundary.duration_since(self.clock);
            let step_secs = step.as_secs_f64();
            self.busy += step;
            // Progress transferring flows.
            let slack = rate * COMPLETION_SLACK_SECS;
            let mut finished: Vec<FlowId> = Vec::new();
            for (id, flow) in self.flows.iter_mut() {
                match flow.phase {
                    Phase::Transferring => {
                        let moved = rate * step_secs;
                        let delta = moved.min(flow.remaining);
                        flow.remaining -= delta;
                        self.bytes_completed += delta;
                        if flow.remaining <= slack.max(1e-9) {
                            self.bytes_completed += flow.remaining;
                            flow.remaining = 0.0;
                            finished.push(id);
                        }
                    }
                    Phase::Seeking { until } => {
                        if until <= boundary {
                            flow.phase = Phase::Transferring;
                        }
                    }
                }
            }
            for id in &finished {
                self.flows.remove(id);
            }
            completed.extend(finished);
            self.clock = boundary;
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_runs_at_full_capacity() {
        let mut r = FlowResource::new(100.0 * MB, 0.5);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        assert_eq!(r.next_event(), Some(t(1.0)));
        assert_eq!(r.advance(t(1.0)), vec![FlowId(1)]);
        assert_eq!(r.active(), 0);
    }

    #[test]
    fn two_flows_share_equally_without_degradation() {
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        r.add(SimTime::ZERO, FlowId(2), 100.0 * MB, SimDuration::ZERO);
        // Each gets 50 MB/s => both done at 2 s.
        let done = r.advance(t(2.0));
        assert_eq!(done, vec![FlowId(1), FlowId(2)]);
    }

    #[test]
    fn degradation_slows_concurrent_flows() {
        // d=1: two flows -> effective capacity halves -> each gets C/4.
        let mut r = FlowResource::new(100.0 * MB, 1.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        r.add(SimTime::ZERO, FlowId(2), 100.0 * MB, SimDuration::ZERO);
        assert!((r.per_flow_rate() - 25.0 * MB).abs() < 1.0);
        let done = r.advance(t(4.0));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 50.0 * MB, SimDuration::ZERO);
        r.add(SimTime::ZERO, FlowId(2), 150.0 * MB, SimDuration::ZERO);
        // Flow 1 done at 1 s (50 MB at 50 MB/s). Flow 2 then has 100 MB left
        // at 100 MB/s -> done at 2 s.
        let done = r.advance(t(1.0));
        assert_eq!(done, vec![FlowId(1)]);
        assert_eq!(r.next_event(), Some(t(2.0)));
        assert_eq!(r.advance(t(2.0)), vec![FlowId(2)]);
    }

    #[test]
    fn seek_delays_transfer_start() {
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(
            SimTime::ZERO,
            FlowId(1),
            100.0 * MB,
            SimDuration::from_millis(500),
        );
        // 0.5 s seek + 1 s transfer.
        assert_eq!(r.next_event(), Some(t(0.5)));
        assert!(r.advance(t(0.5)).is_empty());
        assert_eq!(r.advance(t(1.5)), vec![FlowId(1)]);
    }

    #[test]
    fn seeking_flow_counts_toward_degradation() {
        // One transferring + one seeking with d=1 -> effective C/2, single
        // transferring flow gets all of it.
        let mut r = FlowResource::new(100.0 * MB, 1.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        r.add(
            SimTime::ZERO,
            FlowId(2),
            10.0 * MB,
            SimDuration::from_secs(10),
        );
        assert!((r.per_flow_rate() - 50.0 * MB).abs() < 1.0);
        let done = r.advance(t(2.0));
        assert_eq!(done, vec![FlowId(1)]);
    }

    #[test]
    fn cancel_removes_without_completion() {
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        r.add(SimTime::ZERO, FlowId(2), 100.0 * MB, SimDuration::ZERO);
        r.cancel(t(0.5), FlowId(2));
        // Flow 1 had 75 MB left at t=0.5, now alone at 100 MB/s -> 1.25 s.
        assert_eq!(r.next_event(), Some(t(1.25)));
        assert_eq!(r.advance(t(1.25)), vec![FlowId(1)]);
    }

    #[test]
    fn advance_through_many_boundaries_in_one_call() {
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        for i in 0..4 {
            r.add(
                SimTime::ZERO,
                FlowId(i),
                (10.0 + 10.0 * i as f64) * MB,
                SimDuration::ZERO,
            );
        }
        // Jump far past all completions at once.
        let done = r.advance(t(100.0));
        assert_eq!(done.len(), 4);
        // Shortest flow completes first.
        assert_eq!(done[0], FlowId(0));
        assert_eq!(r.active(), 0);
    }

    #[test]
    fn accounting_tracks_bytes_and_busy_time() {
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        r.advance(t(1.0));
        r.advance(t(5.0)); // idle gap
        assert!((r.bytes_completed() - 100.0 * MB).abs() < 1.0);
        assert!((r.busy_time().as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn idle_resource_has_no_next_event() {
        let r = FlowResource::new(1.0, 0.0);
        assert_eq!(r.next_event(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate flow id")]
    fn duplicate_id_rejected() {
        let mut r = FlowResource::new(1.0, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 1.0, SimDuration::ZERO);
        r.add(SimTime::ZERO, FlowId(1), 1.0, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "advance backwards")]
    fn advance_backwards_rejected() {
        let mut r = FlowResource::new(1.0, 0.0);
        r.advance(t(1.0));
        r.advance(t(0.5));
    }

    #[test]
    fn capacity_change_between_add_and_advance_rerates_flow() {
        // DiskDegrade regression: a capacity change landing between `add`
        // and the next `advance` must re-rate the flow immediately —
        // `next_event` is recomputed from the new per-flow rate, and the
        // completion lands at the stretched time, not the stale one.
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        assert_eq!(r.next_event(), Some(t(1.0)));
        r.set_capacity(25.0 * MB);
        assert_eq!(
            r.next_event(),
            Some(t(4.0)),
            "next_event must be recomputed from the degraded rate"
        );
        assert!(r.advance(t(3.9)).is_empty(), "must not finish at old rate");
        assert_eq!(r.advance(t(4.0)), vec![FlowId(1)]);
    }

    #[test]
    fn mid_request_capacity_change_splits_completion_time() {
        // Degrade after half the bytes moved: 50 MB at 100 MB/s (0.5 s),
        // then 50 MB at 25 MB/s (2 s) -> completes at 2.5 s.
        let mut r = FlowResource::new(100.0 * MB, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 100.0 * MB, SimDuration::ZERO);
        assert!(r.advance(t(0.5)).is_empty());
        r.set_capacity(25.0 * MB);
        assert_eq!(r.next_event(), Some(t(2.5)));
        assert_eq!(r.advance(t(2.5)), vec![FlowId(1)]);
        // And the heal path: a restored disk speeds the next flow back up.
        r.add(t(3.0), FlowId(2), 50.0 * MB, SimDuration::ZERO);
        r.set_capacity(100.0 * MB);
        assert_eq!(r.next_event(), Some(t(3.5)));
        assert_eq!(r.advance(t(3.5)), vec![FlowId(2)]);
    }

    #[test]
    fn completion_times_are_exact_enough() {
        // A RAM-speed flow (4 GB/s) of one 64 MB block: 16 ms.
        let mut r = FlowResource::new(4e9, 0.0);
        r.add(SimTime::ZERO, FlowId(1), 64.0 * MB, SimDuration::ZERO);
        let next = r.next_event().unwrap();
        assert!((next.as_secs_f64() - 0.016).abs() < 1e-4);
        assert_eq!(r.advance(next), vec![FlowId(1)]);
    }
}
