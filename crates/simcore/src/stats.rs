//! Metric collection: online moments, empirical CDFs, histograms and
//! time-weighted series.
//!
//! Every table and figure in the evaluation is produced from these types:
//! block-read histograms (Fig. 1/6), task-runtime CDFs (Fig. 2), lead-time
//! ratio CDFs (Fig. 3), utilisation timelines (Fig. 4) and the memory
//! occupancy histograms (Fig. 7).

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance/min/max over `f64` samples (Welford's algorithm).
///
/// ```
/// use ignem_simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A collected sample set supporting percentiles, CDF evaluation and export.
///
/// ```
/// use ignem_simcore::stats::Samples;
///
/// let mut s = Samples::new();
/// s.extend([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.percentile(50.0), 2.5);
/// assert_eq!(s.fraction_below(2.5), 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on a NaN sample.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp gives NaN a fixed place in the order instead of
            // panicking mid-sort (lint rule F01).
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (linear interpolation between order statistics).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "percentile of empty sample set");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return self.values[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Median (50th percentile).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Fraction of samples strictly below `x` (the empirical CDF).
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.values.partition_point(|&v| v < x);
        idx as f64 / self.values.len() as f64
    }

    /// The sorted samples.
    pub fn sorted_values(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.values
    }

    /// CDF points `(value, cumulative fraction)` thinned to at most
    /// `max_points`, always including the extremes. Used for figure export.
    pub fn cdf_points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        assert!(max_points >= 2, "need at least two CDF points");
        self.ensure_sorted();
        let n = self.values.len();
        if n == 0 {
            return Vec::new();
        }
        let mut pts = Vec::new();
        let step = (n.max(2) - 1) as f64 / (max_points - 1) as f64;
        let mut last_idx = usize::MAX;
        for k in 0..max_points {
            let idx = ((k as f64 * step).round() as usize).min(n - 1);
            if idx == last_idx {
                continue;
            }
            last_idx = idx;
            pts.push((self.values[idx], (idx + 1) as f64 / n as f64));
        }
        pts
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

/// A fixed-bin histogram over `[lo, hi)` with an overflow bin.
///
/// ```
/// use ignem_simcore::stats::Histogram;
///
/// let mut h = Histogram::uniform(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_counts()[0], 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>, // len = bins + 1, ascending
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0, "bad histogram spec");
        let w = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + w * i as f64).collect();
        Histogram {
            edges,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
        }
    }

    /// Creates a histogram from explicit ascending bin edges.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges or edges are not strictly ascending.
    pub fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let bins = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        let lo = self.edges[0];
        // lint: allow(P02, reason = "constructor rejects empty edge lists, so last() always exists")
        let hi = *self.edges.last().expect("edges nonempty");
        if x < lo {
            self.underflow += 1;
        } else if x >= hi {
            self.overflow += 1;
        } else {
            let idx = (self.edges.partition_point(|&e| e <= x) - 1).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow + self.underflow
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin edges (`bins + 1` values).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Samples above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Relative frequency per bin (fractions of total count).
    pub fn relative(&self) -> Vec<f64> {
        let total = self.count().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }
}

/// Tracks a piecewise-constant value over simulated time, producing
/// time-weighted averages and sampled series (per-server memory occupancy in
/// Fig. 7, disk utilisation in Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    weighted_sum: f64, // integral of value dt (seconds)
    span: SimDuration,
    peak: f64,
    /// Change points `(time, new_value)` for series export.
    history: Vec<(SimTime, f64)>,
    keep_history: bool,
}

impl TimeWeighted {
    /// Creates a tracker starting at `value` at time zero. `keep_history`
    /// retains every change point for series export (costs memory).
    pub fn new(value: f64, keep_history: bool) -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            value,
            weighted_sum: 0.0,
            span: SimDuration::ZERO,
            peak: value,
            history: if keep_history {
                vec![(SimTime::ZERO, value)]
            } else {
                Vec::new()
            },
            keep_history,
        }
    }

    /// Sets the value at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_time);
        self.weighted_sum += self.value * dt.as_secs_f64();
        self.span += dt;
        self.last_time = now;
        self.value = value;
        self.peak = self.peak.max(value);
        if self.keep_history && self.history.last().map(|&(_, v)| v) != Some(value) {
            // lint: allow(Q01, reason = "opt-in reporting series, deduplicated per value change")
            self.history.push((now, value));
        }
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        self.set(now, self.value + delta);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Maximum value ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[0, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let extra = now.saturating_duration_since(self.last_time).as_secs_f64();
        let total = self.span.as_secs_f64() + extra;
        if total == 0.0 {
            self.value
        } else {
            (self.weighted_sum + self.value * extra) / total
        }
    }

    /// The value held at time `t` (requires history).
    ///
    /// # Panics
    ///
    /// Panics if history was not kept.
    pub fn value_at(&self, t: SimTime) -> f64 {
        assert!(self.keep_history, "history not kept");
        match self.history.binary_search_by_key(&t, |&(at, _)| at) {
            Ok(i) => self.history[i].1,
            Err(0) => self.history[0].1,
            Err(i) => self.history[i - 1].1,
        }
    }

    /// The raw change-point history `(time, new_value)` (requires history).
    ///
    /// # Panics
    ///
    /// Panics if history was not kept.
    pub fn sample_series_raw(&self) -> &[(SimTime, f64)] {
        assert!(self.keep_history, "history not kept");
        &self.history
    }

    /// Samples the series every `interval` over `[0, end]` (requires
    /// history). Returns `(time, value)` pairs.
    pub fn sample_series(&self, interval: SimDuration, end: SimTime) -> Vec<(SimTime, f64)> {
        assert!(!interval.is_zero(), "zero sampling interval");
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= end {
            out.push((t, self.value_at(t)));
            t += interval;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn online_stats_merge_matches_combined() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0];
        let mut all = OnlineStats::new();
        xs.iter().for_each(|&x| all.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..3].iter().for_each(|&x| a.push(x));
        xs[3..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s: Samples = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert_eq!(s.percentile(25.0), 17.5);
    }

    #[test]
    fn fraction_below_is_cdf() {
        let mut s: Samples = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.fraction_below(0.5), 0.0);
        assert_eq!(s.fraction_below(2.5), 0.5);
        assert_eq!(s.fraction_below(100.0), 1.0);
    }

    #[test]
    fn cdf_points_cover_extremes() {
        let mut s: Samples = (0..1000).map(|i| i as f64).collect();
        let pts = s.cdf_points(11);
        assert_eq!(pts.first().unwrap().0, 0.0);
        assert_eq!(pts.last().unwrap().0, 999.0);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(pts.len() <= 11);
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::uniform(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.bin_counts().iter().all(|&c| c == 1));
        h.record(-1.0);
        h.record(10.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 12);
    }

    #[test]
    fn histogram_explicit_edges() {
        let mut h = Histogram::from_edges(vec![0.0, 1.0, 10.0, 100.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.bin_counts(), &[1, 1, 1]);
        let rel = h.relative();
        assert!((rel.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(0.0, false);
        tw.set(SimTime::from_secs(10), 100.0); // 0 for 10 s
        tw.set(SimTime::from_secs(20), 0.0); // 100 for 10 s
        assert_eq!(tw.average(SimTime::from_secs(20)), 50.0);
        assert_eq!(tw.peak(), 100.0);
        // Continues at 0 for another 20 s -> average 25.
        assert_eq!(tw.average(SimTime::from_secs(40)), 25.0);
    }

    #[test]
    fn time_weighted_history_and_sampling() {
        let mut tw = TimeWeighted::new(1.0, true);
        tw.set(SimTime::from_secs(5), 3.0);
        tw.set(SimTime::from_secs(10), 2.0);
        assert_eq!(tw.value_at(SimTime::from_secs(0)), 1.0);
        assert_eq!(tw.value_at(SimTime::from_secs(7)), 3.0);
        assert_eq!(tw.value_at(SimTime::from_secs(10)), 2.0);
        let series = tw.sample_series(SimDuration::from_secs(5), SimTime::from_secs(10));
        assert_eq!(
            series,
            vec![
                (SimTime::from_secs(0), 1.0),
                (SimTime::from_secs(5), 3.0),
                (SimTime::from_secs(10), 2.0)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn samples_reject_nan() {
        Samples::new().push(f64::NAN);
    }
}
