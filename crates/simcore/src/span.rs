//! Causal spans: reconstructing span trees from a recorded event stream.
//!
//! The telemetry stream is flat; this module folds it back into the causal
//! trees the events describe, without touching the stream itself. Every
//! migration round becomes a tree — `migration` root, `command`
//! (assignment → slave acceptance, with one `retry` child per
//! retransmission), `queued` (acceptance → disk read start), `transfer`
//! (read start → completion) and `resident` (completion → eviction) — and
//! every job and crash-recovery epoch likewise. Span ids are derived from
//! the **seq of the record that opens the span** (shifted by four bits to
//! make room for sibling spans opened by the same record), so trees built
//! from the same stream are identical by construction, and trees built
//! from two same-seed runs are bit-identical because the streams are.
//!
//! The [`CriticalPath`] extractor charges each span's exclusive time to a
//! [`Category`] and aggregates per owning job. Ownership and credit follow
//! the *exact* fold the cluster explainer uses for its lead-time
//! decomposition (first enqueuer owns the round; a completion is credited
//! only when both owner and start are known; wasted/cancelled rounds are
//! uncredited; a discard releases the owner only before the read starts),
//! so the per-job category sums reconcile with the explainer by integer
//! equality, not approximately.

use std::collections::BTreeMap;

use crate::telemetry::{Event, EventRecord};
use crate::time::{SimDuration, SimTime};

/// Identifier of a span: the opening record's seq shifted left by four,
/// plus a 0..=15 disambiguator for sibling spans opened by one record.
///
/// The disambiguator bound is a *hard* assert (not `debug_assert!`): a
/// silent wrap in release builds would collide span ids across siblings
/// and corrupt the forest without any diagnostic, which is strictly worse
/// than aborting the fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// Bits reserved below the opening seq for the sibling disambiguator.
const SPAN_DISAMBIGUATOR_BITS: u64 = 4;

impl SpanId {
    fn new(seq: u64, k: u64) -> SpanId {
        assert!(
            k < (1 << SPAN_DISAMBIGUATOR_BITS),
            "per-record span disambiguator overflow: record seq {seq} opened more than {} sibling spans",
            1u64 << SPAN_DISAMBIGUATOR_BITS,
        );
        SpanId(seq << SPAN_DISAMBIGUATOR_BITS | k)
    }

    /// The seq of the event record that opened this span.
    pub fn opening_seq(&self) -> u64 {
        self.0 >> SPAN_DISAMBIGUATOR_BITS
    }
}

/// The cost category a span's exclusive time is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Waiting in a queue: job submission → schedulable, and a migration's
    /// wait in the slave's migration queue.
    Queueing,
    /// Master-side processing: schedulable → first task assignment.
    MasterProcessing,
    /// Control-plane network time: command issue → slave acceptance,
    /// excluding retransmission backoff.
    Network,
    /// Time spent waiting out ack-timeout backoff between retransmission
    /// attempts.
    RetransmissionBackoff,
    /// Disk service: the migration read itself, under contention.
    DiskContention,
    /// Structural spans (roots, tasks, residency, recovery phases) whose
    /// exclusive time is not part of the lead-time decomposition.
    Structural,
}

impl Category {
    /// Every category, in a fixed order.
    pub const ALL: [Category; 6] = [
        Category::Queueing,
        Category::MasterProcessing,
        Category::Network,
        Category::RetransmissionBackoff,
        Category::DiskContention,
        Category::Structural,
    ];

    /// Stable machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Category::Queueing => "queueing",
            Category::MasterProcessing => "master_processing",
            Category::Network => "network",
            Category::RetransmissionBackoff => "retransmission_backoff",
            Category::DiskContention => "disk_contention",
            Category::Structural => "structural",
        }
    }
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Identifier (derived from the opening record's seq).
    pub id: SpanId,
    /// Parent span, `None` for tree roots.
    pub parent: Option<SpanId>,
    /// Span kind: `job`, `queue`, `heartbeat_wait`, `task`, `migration`,
    /// `command`, `retry`, `queued`, `transfer`, `resident`, `recovery`,
    /// `register`, `block_report`, `reignite`.
    pub name: &'static str,
    /// Category the span's exclusive time belongs to.
    pub category: Category,
    /// Node track the span renders on (`-1` = cluster/master track).
    pub node: i64,
    /// Owning job id, `-1` when not job-scoped.
    pub job: i64,
    /// Block id, `-1` when not block-scoped.
    pub block: i64,
    /// Open time.
    pub start: SimTime,
    /// Close time (open spans are closed at the last record's time).
    pub end: SimTime,
}

impl Span {
    /// The span's wall duration in sim time.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// Accumulated per-round facts the critical path needs (one per migration
/// round that closed — or was still open when the stream ended).
#[derive(Debug, Clone, PartialEq, Eq)]
struct RoundDone {
    owner: Option<u64>,
    /// Transfer service time, credited iff `owner` and the start were both
    /// known at completion (the explainer's rule).
    credited_transfer: Option<SimDuration>,
    queued: SimDuration,
    command: SimDuration,
    backoff: SimDuration,
}

/// State of one open migration round, keyed by `(node, block)`.
#[derive(Debug, Default)]
struct RoundState {
    root: Option<SpanId>,
    root_start: SimTime,
    owner: Option<u64>,
    command: Option<(SpanId, SimTime)>,
    queued_open: Option<(SpanId, SimTime)>,
    transfer_open: Option<(SpanId, SimTime)>,
    started_at: Option<SimTime>,
    queued_total: SimDuration,
    command_total: SimDuration,
    backoff_total: SimDuration,
}

#[derive(Debug)]
struct JobState {
    root: SpanId,
    queue_open: Option<(SpanId, SimTime)>,
    hb_open: Option<(SpanId, SimTime)>,
    queue_delay: SimDuration,
    heartbeat_delay: SimDuration,
}

#[derive(Debug)]
struct RecoveryState {
    root: SpanId,
    register_open: Option<(SpanId, SimTime)>,
    report_open: Option<(SpanId, SimTime)>,
    reignite_open: Option<(SpanId, SimTime)>,
}

/// A forest of spans reconstructed from one recorded event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanForest {
    /// Every span, sorted by id (i.e. by opening seq).
    pub spans: Vec<Span>,
    /// Retransmissions observed (`RpcRetried` records).
    pub retries_observed: u64,
    rounds_done: Vec<RoundDone>,
    job_delays: Vec<(u64, SimDuration, SimDuration)>,
}

impl SpanForest {
    /// Rebuilds the span forest from a recorded stream. Spans still open
    /// when the stream ends are closed at the last record's timestamp.
    pub fn build(events: &[EventRecord]) -> SpanForest {
        Builder::default().run(events)
    }

    /// The span with the given id, if present.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans
            .binary_search_by(|s| s.id.cmp(&id))
            .ok()
            .map(|i| &self.spans[i])
    }

    /// Direct children of `id`, in id order.
    pub fn children(&self, id: SpanId) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// A span's exclusive time: its duration minus the summed durations of
    /// its direct children (saturating; overlapping children may overcount
    /// coverage, which only ever shrinks the exclusive share).
    pub fn exclusive(&self, id: SpanId) -> SimDuration {
        let Some(span) = self.span(id) else {
            return SimDuration::ZERO;
        };
        let covered: u64 = self
            .children(id)
            .iter()
            .map(|c| c.duration().as_micros())
            .sum();
        SimDuration::from_micros(span.duration().as_micros().saturating_sub(covered))
    }

    /// Charges every span's exclusive time to its category and aggregates
    /// per owning job (see [`CriticalPath`]).
    pub fn critical_path(&self) -> CriticalPath {
        let mut jobs: BTreeMap<u64, JobCriticalPath> = BTreeMap::new();
        for (job, queue_delay, heartbeat_delay) in &self.job_delays {
            let e = jobs
                .entry(*job)
                .or_insert_with(|| JobCriticalPath::new(*job));
            e.queueing = *queue_delay;
            e.master_processing = *heartbeat_delay;
        }
        for r in &self.rounds_done {
            let Some(owner) = r.owner else { continue };
            let e = jobs
                .entry(owner)
                .or_insert_with(|| JobCriticalPath::new(owner));
            if let Some(t) = r.credited_transfer {
                e.disk_contention += t;
            }
            e.migration_queue += r.queued;
            e.retransmission_backoff += r.backoff;
            e.network += SimDuration::from_micros(
                r.command.as_micros().saturating_sub(r.backoff.as_micros()),
            );
        }
        CriticalPath {
            jobs: jobs.into_values().collect(),
            retries: self.retries_observed,
        }
    }

    /// A canonical single-line rendering of every span, for hashing and
    /// golden pins. Integer-only and ordered by span id.
    pub fn canonical_lines(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{} id={} parent={} cat={} node={} job={} block={} start={} end={}\n",
                s.name,
                s.id.0,
                s.parent.map(|p| p.0 as i64).unwrap_or(-1),
                s.category.tag(),
                s.node,
                s.job,
                s.block,
                s.start.as_micros(),
                s.end.as_micros(),
            ));
        }
        out
    }
}

/// Per-job critical-path decomposition: each field is an exact sum of span
/// (exclusive) durations of that category, attributed to the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCriticalPath {
    /// Job id.
    pub job: u64,
    /// Submission → schedulable (equals the explainer's `queue_delay`).
    pub queueing: SimDuration,
    /// Schedulable → first task assignment (equals `heartbeat_delay`).
    pub master_processing: SimDuration,
    /// Credited migration read service (equals `migration_service`).
    pub disk_contention: SimDuration,
    /// Time the job's migration rounds waited in slave queues.
    pub migration_queue: SimDuration,
    /// Command network time (issue → acceptance, minus backoff).
    pub network: SimDuration,
    /// Retransmission backoff inside the job's commands.
    pub retransmission_backoff: SimDuration,
}

impl JobCriticalPath {
    fn new(job: u64) -> JobCriticalPath {
        JobCriticalPath {
            job,
            queueing: SimDuration::ZERO,
            master_processing: SimDuration::ZERO,
            disk_contention: SimDuration::ZERO,
            migration_queue: SimDuration::ZERO,
            network: SimDuration::ZERO,
            retransmission_backoff: SimDuration::ZERO,
        }
    }
}

/// The critical-path extraction over a whole stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Per-job sums, ordered by job id.
    pub jobs: Vec<JobCriticalPath>,
    /// Retransmissions observed in the stream (reconciles against the
    /// master's `retries` counter on an untruncated stream).
    pub retries: u64,
}

impl CriticalPath {
    /// The entry for one job, if the stream mentioned it.
    pub fn job(&self, job: u64) -> Option<&JobCriticalPath> {
        self.jobs.iter().find(|j| j.job == job)
    }
}

#[derive(Default)]
struct Builder {
    spans: Vec<Span>,
    jobs: BTreeMap<u64, JobState>,
    tasks: BTreeMap<u64, (SpanId, SimTime, u32, u64)>,
    rounds: BTreeMap<(u32, u64), RoundState>,
    residents: BTreeMap<(u32, u64), Vec<(SpanId, SimTime)>>,
    retry_last: BTreeMap<u64, SimTime>,
    recoveries: BTreeMap<u32, RecoveryState>,
    rounds_done: Vec<RoundDone>,
    retries_observed: u64,
    last_at: SimTime,
}

impl Builder {
    // One parameter per `Span` field; a params struct would just mirror `Span`.
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        category: Category,
        node: i64,
        job: i64,
        block: i64,
        start: SimTime,
        end: SimTime,
    ) {
        self.spans.push(Span {
            id,
            parent,
            name,
            category,
            node,
            job,
            block,
            start,
            end,
        });
    }

    fn run(mut self, events: &[EventRecord]) -> SpanForest {
        for rec in events {
            self.last_at = rec.at;
            self.handle(rec);
        }
        self.finish()
    }

    fn job_root(&self, job: u64) -> Option<SpanId> {
        self.jobs.get(&job).map(|j| j.root)
    }

    /// Opens a migration round if `(node, block)` has none, rooted at the
    /// given record.
    fn open_round(&mut self, key: (u32, u64), seq: u64, at: SimTime, job: Option<u64>) {
        let st = self.rounds.entry(key).or_default();
        if st.root.is_none() {
            let root = SpanId::new(seq, 0);
            st.root = Some(root);
            st.root_start = at;
            let parent = job.and_then(|j| self.jobs.get(&j).map(|s| s.root));
            self.spans.push(Span {
                id: root,
                parent,
                name: "migration",
                category: Category::Structural,
                node: key.0 as i64,
                job: job.map(|j| j as i64).unwrap_or(-1),
                block: key.1 as i64,
                start: at,
                end: at,
            });
        }
    }

    /// Closes any open child spans of a round at `at` and retires it.
    fn close_round(&mut self, key: (u32, u64), at: SimTime, credited: Option<SimDuration>) {
        let Some(mut st) = self.rounds.remove(&key) else {
            return;
        };
        if let Some((id, start)) = st.command.take() {
            st.command_total += at.saturating_duration_since(start);
            self.seal(id, at);
        }
        if let Some((id, start)) = st.queued_open.take() {
            st.queued_total += at.saturating_duration_since(start);
            self.seal(id, at);
        }
        if let Some((id, _)) = st.transfer_open.take() {
            self.seal(id, at);
        }
        if let Some(root) = st.root {
            self.seal(root, at);
        }
        self.rounds_done.push(RoundDone {
            owner: st.owner,
            credited_transfer: credited,
            queued: st.queued_total,
            command: st.command_total,
            backoff: st.backoff_total,
        });
    }

    /// Sets a span's end time (spans are pushed open with `end == start`).
    fn seal(&mut self, id: SpanId, end: SimTime) {
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            s.end = end;
        }
    }

    fn handle(&mut self, rec: &EventRecord) {
        let (seq, at) = (rec.seq, rec.at);
        match &rec.event {
            Event::JobSubmitted { job, .. } if !self.jobs.contains_key(job) => {
                let root = SpanId::new(seq, 0);
                let queue = SpanId::new(seq, 1);
                self.push(
                    root,
                    None,
                    "job",
                    Category::Structural,
                    -1,
                    *job as i64,
                    -1,
                    at,
                    at,
                );
                self.push(
                    queue,
                    Some(root),
                    "queue",
                    Category::Queueing,
                    -1,
                    *job as i64,
                    -1,
                    at,
                    at,
                );
                self.jobs.insert(
                    *job,
                    JobState {
                        root,
                        queue_open: Some((queue, at)),
                        hb_open: None,
                        queue_delay: SimDuration::ZERO,
                        heartbeat_delay: SimDuration::ZERO,
                    },
                );
            }
            Event::JobScheduled { job } => {
                let Some(js) = self.jobs.get_mut(job) else {
                    return;
                };
                if let Some((id, start)) = js.queue_open.take() {
                    js.queue_delay = at.saturating_duration_since(start);
                    let root = js.root;
                    let hb = SpanId::new(seq, 0);
                    let j = *job as i64;
                    self.seal(id, at);
                    self.push(
                        hb,
                        Some(root),
                        "heartbeat_wait",
                        Category::MasterProcessing,
                        -1,
                        j,
                        -1,
                        at,
                        at,
                    );
                    if let Some(js) = self.jobs.get_mut(job) {
                        js.hb_open = Some((hb, at));
                    }
                }
            }
            Event::TaskAssigned { task, job, node } => {
                let parent = self.job_root(*job);
                if let Some(js) = self.jobs.get_mut(job) {
                    if let Some((id, start)) = js.hb_open.take() {
                        js.heartbeat_delay = at.saturating_duration_since(start);
                        self.seal(id, at);
                    }
                }
                let id = SpanId::new(seq, 0);
                self.push(
                    id,
                    parent,
                    "task",
                    Category::Structural,
                    *node as i64,
                    *job as i64,
                    -1,
                    at,
                    at,
                );
                self.tasks.insert(*task, (id, at, *node, *job));
            }
            Event::TaskFinished { task, .. } => {
                if let Some((id, _, _, _)) = self.tasks.remove(task) {
                    self.seal(id, at);
                }
            }
            Event::JobCompleted { job, .. } => {
                let mut to_seal = Vec::new();
                if let Some(js) = self.jobs.get_mut(job) {
                    if let Some((id, start)) = js.queue_open.take() {
                        js.queue_delay = at.saturating_duration_since(start);
                        to_seal.push(id);
                    }
                    if let Some((id, start)) = js.hb_open.take() {
                        js.heartbeat_delay = at.saturating_duration_since(start);
                        to_seal.push(id);
                    }
                    to_seal.push(js.root);
                }
                for id in to_seal {
                    self.seal(id, at);
                }
            }
            Event::MigrationAssigned {
                job, block, node, ..
            } => {
                let key = (*node, *block);
                self.open_round(key, seq, at, Some(*job));
                let st = self.rounds.get_mut(&key).expect("round just opened");
                if st.command.is_none() {
                    let root = st.root;
                    let id = SpanId::new(seq, 1);
                    st.command = Some((id, at));
                    self.push(
                        id,
                        root,
                        "command",
                        Category::Network,
                        *node as i64,
                        *job as i64,
                        *block as i64,
                        at,
                        at,
                    );
                }
            }
            Event::MigrationEnqueued {
                node, job, block, ..
            } => {
                let key = (*node, *block);
                self.open_round(key, seq, at, Some(*job));
                let st = self.rounds.get_mut(&key).expect("round just opened");
                // First enqueuer owns the round — the explainer's rule.
                if st.owner.is_none() {
                    st.owner = Some(*job);
                }
                let root = st.root;
                if let Some((id, start)) = st.command.take() {
                    st.command_total += at.saturating_duration_since(start);
                    self.seal(id, at);
                }
                let st = self.rounds.get_mut(&key).expect("round exists");
                if st.queued_open.is_none() && st.transfer_open.is_none() {
                    let id = SpanId::new(seq, 1);
                    st.queued_open = Some((id, at));
                    self.push(
                        id,
                        root,
                        "queued",
                        Category::Queueing,
                        *node as i64,
                        *job as i64,
                        *block as i64,
                        at,
                        at,
                    );
                }
                // A pending re-ignition completes at the first accepted
                // migration command after the node's block report.
                if let Some(rs) = self.recoveries.get_mut(node) {
                    if let Some((id, _)) = rs.reignite_open.take() {
                        let root = rs.root;
                        self.seal(id, at);
                        self.seal(root, at);
                        self.recoveries.remove(node);
                    }
                }
            }
            Event::MigrationStarted { node, block, .. } => {
                let key = (*node, *block);
                self.open_round(key, seq, at, None);
                let st = self.rounds.get_mut(&key).expect("round just opened");
                let root = st.root;
                let job = st.owner.map(|j| j as i64).unwrap_or(-1);
                if let Some((id, start)) = st.queued_open.take() {
                    st.queued_total += at.saturating_duration_since(start);
                    self.seal(id, at);
                }
                let st = self.rounds.get_mut(&key).expect("round exists");
                st.started_at = Some(at);
                let id = SpanId::new(seq, 0);
                st.transfer_open = Some((id, at));
                self.push(
                    id,
                    root,
                    "transfer",
                    Category::DiskContention,
                    *node as i64,
                    job,
                    *block as i64,
                    at,
                    at,
                );
            }
            Event::MigrationCompleted { node, block, .. } => {
                let key = (*node, *block);
                let (credited, root, job) = match self.rounds.get(&key) {
                    Some(st) => (
                        match (st.owner, st.started_at) {
                            (Some(_), Some(started)) => Some(at.saturating_duration_since(started)),
                            _ => None,
                        },
                        st.root,
                        st.owner.map(|j| j as i64).unwrap_or(-1),
                    ),
                    None => (None, None, -1),
                };
                self.close_round(key, at, credited);
                let id = SpanId::new(seq, 1);
                self.residents.entry(key).or_default().push((id, at));
                self.push(
                    id,
                    root,
                    "resident",
                    Category::Structural,
                    *node as i64,
                    job,
                    *block as i64,
                    at,
                    at,
                );
            }
            Event::MigrationWasted { node, block, .. }
            | Event::MigrationCancelled { node, block } => {
                self.close_round((*node, *block), at, None);
            }
            Event::MigrationDiscarded { node, block } => {
                let key = (*node, *block);
                // Before the read starts a discard dissolves the round;
                // after, the owner keeps it (the explainer's guard).
                if matches!(self.rounds.get(&key), Some(st) if st.started_at.is_none()) {
                    self.close_round(key, at, None);
                }
            }
            Event::BlockEvicted { node, block, .. } => {
                if let Some(open) = self.residents.get_mut(&(*node, *block)) {
                    if !open.is_empty() {
                        let (id, _) = open.remove(0);
                        self.seal(id, at);
                    }
                }
            }
            Event::RpcRetried {
                seq: rpc_seq,
                node,
                attempt: _,
            } => {
                self.retries_observed += 1;
                // Attribute to the earliest open command span on the node
                // (commands batch per slave; the heuristic is deterministic
                // and documented in DESIGN.md §12).
                let target = self
                    .rounds
                    .iter()
                    .filter(|((n, _), st)| *n == *node && st.command.is_some())
                    .map(|(key, st)| {
                        let (id, start) = st.command.expect("filtered on Some");
                        (id, start, *key)
                    })
                    .min_by_key(|(id, _, _)| *id);
                let id = SpanId::new(seq, 0);
                let start = self
                    .retry_last
                    .get(rpc_seq)
                    .copied()
                    .or(target.map(|(_, s, _)| s))
                    .unwrap_or(at);
                self.retry_last.insert(*rpc_seq, at);
                match target {
                    Some((parent, _, key)) => {
                        if let Some(st) = self.rounds.get_mut(&key) {
                            st.backoff_total += at.saturating_duration_since(start);
                        }
                        self.push(
                            id,
                            Some(parent),
                            "retry",
                            Category::RetransmissionBackoff,
                            *node as i64,
                            -1,
                            -1,
                            start,
                            at,
                        );
                    }
                    None => {
                        // No open migrate command (e.g. an evict retry):
                        // record the backoff as a free-standing span.
                        self.push(
                            id,
                            None,
                            "retry",
                            Category::RetransmissionBackoff,
                            *node as i64,
                            -1,
                            -1,
                            start,
                            at,
                        );
                    }
                }
            }
            Event::NodeRestarted { node, .. } => {
                let root = SpanId::new(seq, 0);
                let register = SpanId::new(seq, 1);
                self.push(
                    root,
                    None,
                    "recovery",
                    Category::Structural,
                    *node as i64,
                    -1,
                    -1,
                    at,
                    at,
                );
                self.push(
                    register,
                    Some(root),
                    "register",
                    Category::Structural,
                    *node as i64,
                    -1,
                    -1,
                    at,
                    at,
                );
                self.recoveries.insert(
                    *node,
                    RecoveryState {
                        root,
                        register_open: Some((register, at)),
                        report_open: None,
                        reignite_open: None,
                    },
                );
            }
            Event::SlaveRegistered { node, .. } => {
                if let Some(rs) = self.recoveries.get_mut(node) {
                    if let Some((id, _)) = rs.register_open.take() {
                        let root = rs.root;
                        let report = SpanId::new(seq, 0);
                        rs.report_open = Some((report, at));
                        self.seal(id, at);
                        self.push(
                            report,
                            Some(root),
                            "block_report",
                            Category::Structural,
                            *node as i64,
                            -1,
                            -1,
                            at,
                            at,
                        );
                    }
                }
            }
            Event::BlockReportReceived { node, .. } => {
                if let Some(rs) = self.recoveries.get_mut(node) {
                    if let Some((id, _)) = rs.report_open.take() {
                        let root = rs.root;
                        let reignite = SpanId::new(seq, 0);
                        rs.reignite_open = Some((reignite, at));
                        self.seal(id, at);
                        self.push(
                            reignite,
                            Some(root),
                            "reignite",
                            Category::Structural,
                            *node as i64,
                            -1,
                            -1,
                            at,
                            at,
                        );
                    }
                }
            }
            // The remaining events carry no span evidence. Each one is
            // named (no catch-all) so that adding an `Event` variant
            // forces a decision here; the X01 cross-check audits this
            // match against the enum.
            Event::JobSubmitted { .. }
            | Event::TaskStarted { .. }
            | Event::TaskSpeculated { .. }
            | Event::BlockRead { .. }
            | Event::MigrationRejected { .. }
            | Event::RpcSent { .. }
            | Event::RpcDropped { .. }
            | Event::RpcDuplicated { .. }
            | Event::RpcCut { .. }
            | Event::RpcAcked { .. }
            | Event::RpcGaveUp { .. }
            | Event::LeaseExpired { .. }
            | Event::EpochRejected { .. }
            | Event::IncarnationRejected { .. }
            | Event::NodeCrashed { .. }
            | Event::RereplicationStarted { .. }
            | Event::RereplicationDeferred { .. }
            | Event::FaultInjected { .. }
            | Event::FaultHealed { .. } => {}
        }
    }

    fn finish(mut self) -> SpanForest {
        let at = self.last_at;
        // Close everything still open at the end of the stream.
        let open_rounds: Vec<(u32, u64)> = self.rounds.keys().copied().collect();
        for key in open_rounds {
            self.close_round(key, at, None);
        }
        let open_jobs: Vec<u64> = self.jobs.keys().copied().collect();
        for job in open_jobs {
            let Some(js) = self.jobs.get_mut(&job) else {
                continue;
            };
            let (queue_open, hb_open, root) = (js.queue_open.take(), js.hb_open.take(), js.root);
            if let Some((id, start)) = queue_open {
                if let Some(js) = self.jobs.get_mut(&job) {
                    js.queue_delay = at.saturating_duration_since(start);
                }
                self.seal(id, at);
            }
            if let Some((id, start)) = hb_open {
                if let Some(js) = self.jobs.get_mut(&job) {
                    js.heartbeat_delay = at.saturating_duration_since(start);
                }
                self.seal(id, at);
            }
            self.seal(root, at);
        }
        let open_tasks: Vec<u64> = self.tasks.keys().copied().collect();
        for task in open_tasks {
            if let Some((id, _, _, _)) = self.tasks.remove(&task) {
                self.seal(id, at);
            }
        }
        let resident_ids: Vec<SpanId> = self
            .residents
            .values()
            .flat_map(|v| v.iter().map(|(id, _)| *id))
            .collect();
        for id in resident_ids {
            self.seal(id, at);
        }
        let recovery_ids: Vec<SpanId> = self
            .recoveries
            .values()
            .flat_map(|rs| {
                [
                    Some(rs.root),
                    rs.register_open.map(|(id, _)| id),
                    rs.report_open.map(|(id, _)| id),
                    rs.reignite_open.map(|(id, _)| id),
                ]
            })
            .flatten()
            .collect();
        for id in recovery_ids {
            self.seal(id, at);
        }
        let job_delays = self
            .jobs
            .iter()
            .map(|(job, js)| (*job, js.queue_delay, js.heartbeat_delay))
            .collect();
        let mut spans = self.spans;
        spans.sort_by_key(|s| s.id);
        SpanForest {
            spans,
            retries_observed: self.retries_observed,
            rounds_done: self.rounds_done,
            job_delays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, at_s: u64, event: Event) -> EventRecord {
        EventRecord {
            seq,
            at: SimTime::from_secs(at_s),
            event,
        }
    }

    fn migration_stream() -> Vec<EventRecord> {
        vec![
            rec(
                0,
                0,
                Event::JobSubmitted {
                    job: 1,
                    name: "j".into(),
                    plan: 0,
                    stage: 0,
                },
            ),
            rec(1, 2, Event::JobScheduled { job: 1 }),
            rec(
                2,
                2,
                Event::MigrationAssigned {
                    job: 1,
                    block: 7,
                    node: 3,
                    bytes: 64,
                },
            ),
            rec(
                3,
                3,
                Event::RpcRetried {
                    seq: 10,
                    node: 3,
                    attempt: 2,
                },
            ),
            rec(
                4,
                5,
                Event::MigrationEnqueued {
                    node: 3,
                    job: 1,
                    block: 7,
                    bytes: 64,
                },
            ),
            rec(
                5,
                6,
                Event::TaskAssigned {
                    task: 1,
                    job: 1,
                    node: 3,
                },
            ),
            rec(
                6,
                8,
                Event::MigrationStarted {
                    node: 3,
                    block: 7,
                    bytes: 64,
                },
            ),
            rec(
                7,
                13,
                Event::MigrationCompleted {
                    node: 3,
                    block: 7,
                    bytes: 64,
                },
            ),
            rec(
                8,
                20,
                Event::TaskFinished {
                    task: 1,
                    job: 1,
                    node: 3,
                },
            ),
            rec(
                9,
                20,
                Event::JobCompleted {
                    job: 1,
                    duration_us: 0,
                },
            ),
            rec(
                10,
                21,
                Event::BlockEvicted {
                    node: 3,
                    block: 7,
                    bytes: 64,
                },
            ),
        ]
    }

    #[test]
    fn migration_round_becomes_a_tree() {
        let f = SpanForest::build(&migration_stream());
        let root = f.spans.iter().find(|s| s.name == "migration").unwrap();
        assert_eq!(root.node, 3);
        assert_eq!(root.block, 7);
        // Root parented under the job span.
        let job = f.spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(root.parent, Some(job.id));
        let kids = f.children(root.id);
        let names: Vec<&str> = kids.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["command", "queued", "transfer", "resident"]);
        // Retry hangs off the command span.
        let command = kids.iter().find(|s| s.name == "command").unwrap();
        let retry = f.spans.iter().find(|s| s.name == "retry").unwrap();
        assert_eq!(retry.parent, Some(command.id));
        // Retry backoff runs from the command issue to the retransmission.
        assert_eq!(retry.start, SimTime::from_secs(2));
        assert_eq!(retry.end, SimTime::from_secs(3));
        // Resident span ends at the eviction.
        let resident = f.spans.iter().find(|s| s.name == "resident").unwrap();
        assert_eq!(resident.start, SimTime::from_secs(13));
        assert_eq!(resident.end, SimTime::from_secs(21));
    }

    #[test]
    fn critical_path_matches_the_lead_time_decomposition() {
        let f = SpanForest::build(&migration_stream());
        let cp = f.critical_path();
        let j = cp.job(1).expect("job 1 on the critical path");
        assert_eq!(j.queueing, SimDuration::from_secs(2));
        assert_eq!(j.master_processing, SimDuration::from_secs(4)); // 2→6
        assert_eq!(j.disk_contention, SimDuration::from_secs(5)); // 8→13
        assert_eq!(j.migration_queue, SimDuration::from_secs(3)); // 5→8
                                                                  // Command ran 2→5 with 1s of backoff inside.
        assert_eq!(j.retransmission_backoff, SimDuration::from_secs(1));
        assert_eq!(j.network, SimDuration::from_secs(2));
        assert_eq!(cp.retries, 1);
    }

    #[test]
    fn wasted_and_cancelled_rounds_are_uncredited() {
        let mut evs = migration_stream();
        // Replace the completion with a waste.
        evs[7] = rec(
            7,
            13,
            Event::MigrationWasted {
                node: 3,
                block: 7,
                bytes: 64,
            },
        );
        let f = SpanForest::build(&evs);
        let cp = f.critical_path();
        let j = cp.job(1).unwrap();
        assert_eq!(j.disk_contention, SimDuration::ZERO);
        // Queue and network time still happened and is still charged.
        assert_eq!(j.migration_queue, SimDuration::from_secs(3));
    }

    #[test]
    fn discard_before_start_dissolves_the_round() {
        let evs = vec![
            rec(
                0,
                1,
                Event::MigrationAssigned {
                    job: 5,
                    block: 9,
                    node: 2,
                    bytes: 64,
                },
            ),
            rec(
                1,
                2,
                Event::MigrationEnqueued {
                    node: 2,
                    job: 5,
                    block: 9,
                    bytes: 64,
                },
            ),
            rec(2, 4, Event::MigrationDiscarded { node: 2, block: 9 }),
            // A later, second round for the same key gets a fresh owner.
            rec(
                3,
                6,
                Event::MigrationEnqueued {
                    node: 2,
                    job: 8,
                    block: 9,
                    bytes: 64,
                },
            ),
            rec(
                4,
                7,
                Event::MigrationStarted {
                    node: 2,
                    block: 9,
                    bytes: 64,
                },
            ),
            rec(
                5,
                9,
                Event::MigrationCompleted {
                    node: 2,
                    block: 9,
                    bytes: 64,
                },
            ),
        ];
        let f = SpanForest::build(&evs);
        let cp = f.critical_path();
        assert_eq!(cp.job(5).unwrap().disk_contention, SimDuration::ZERO);
        assert_eq!(
            cp.job(8).unwrap().disk_contention,
            SimDuration::from_secs(2)
        );
        assert_eq!(
            f.spans.iter().filter(|s| s.name == "migration").count(),
            2,
            "two distinct rounds"
        );
    }

    #[test]
    fn recovery_epoch_becomes_a_tree() {
        let evs = vec![
            rec(
                0,
                10,
                Event::NodeRestarted {
                    node: 4,
                    incarnation: 2,
                },
            ),
            rec(
                1,
                12,
                Event::SlaveRegistered {
                    node: 4,
                    incarnation: 2,
                },
            ),
            rec(2, 13, Event::BlockReportReceived { node: 4, blocks: 8 }),
            rec(
                3,
                15,
                Event::MigrationEnqueued {
                    node: 4,
                    job: 1,
                    block: 3,
                    bytes: 64,
                },
            ),
        ];
        let f = SpanForest::build(&evs);
        let root = f.spans.iter().find(|s| s.name == "recovery").unwrap();
        let names: Vec<&str> = f.children(root.id).iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["register", "block_report", "reignite"]);
        assert_eq!(root.start, SimTime::from_secs(10));
        assert_eq!(root.end, SimTime::from_secs(15));
        let reignite = f.spans.iter().find(|s| s.name == "reignite").unwrap();
        assert_eq!(reignite.start, SimTime::from_secs(13));
        assert_eq!(reignite.end, SimTime::from_secs(15));
    }

    #[test]
    fn same_stream_builds_identical_forests() {
        let evs = migration_stream();
        let a = SpanForest::build(&evs);
        let b = SpanForest::build(&evs);
        assert_eq!(a, b);
        assert!(!a.canonical_lines().is_empty());
        // Canonical lines are integer-only (no float formatting).
        assert!(!a.canonical_lines().contains('.'));
    }

    /// Regression for the release-mode sibling collision: with the old
    /// two-bit disambiguator a fifth sibling span opened by one record
    /// wrapped into its first sibling's id. The widened field must keep
    /// every id distinct and round-trip the opening seq.
    #[test]
    fn more_than_four_siblings_get_distinct_ids() {
        let seq = 42u64;
        let ids: Vec<SpanId> = (0..(1 << SPAN_DISAMBIGUATOR_BITS))
            .map(|k| SpanId::new(seq, k))
            .collect();
        for (i, a) in ids.iter().enumerate() {
            assert_eq!(a.opening_seq(), seq);
            for b in &ids[i + 1..] {
                assert_ne!(a, b, "sibling span ids collided");
            }
        }
        // Ids from the next record never overlap any sibling of this one.
        assert!(ids.iter().all(|a| a.0 < SpanId::new(seq + 1, 0).0));
    }

    /// Overflowing the disambiguator must abort loudly in release builds
    /// too, not silently corrupt the forest.
    #[test]
    #[should_panic(expected = "span disambiguator overflow")]
    fn sibling_overflow_is_a_hard_error() {
        let _ = SpanId::new(7, 1 << SPAN_DISAMBIGUATOR_BITS);
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let f = SpanForest::build(&migration_stream());
        let root = f.spans.iter().find(|s| s.name == "migration").unwrap();
        // Root spans 2→13; children command 2→5, queued 5→8, transfer
        // 8→13, resident 13→21 (extends past the root; exclusive
        // saturates at zero).
        assert_eq!(f.exclusive(root.id), SimDuration::ZERO);
        let command = f.spans.iter().find(|s| s.name == "command").unwrap();
        // Command 2→5 minus 1s retry backoff.
        assert_eq!(f.exclusive(command.id), SimDuration::from_secs(2));
    }
}
