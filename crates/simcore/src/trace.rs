//! Structured simulation tracing.
//!
//! Simulations are hard to debug from aggregate metrics alone. A
//! [`TraceSink`] receives a line per interesting state transition (job
//! submitted, task assigned, migration started, fault injected, …) with
//! the simulated timestamp. Hosts emit traces only when a sink is
//! installed, so tracing is zero-cost when off.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// Short category tag (`"job"`, `"task"`, `"migration"`, `"fault"`, …).
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// A consumer of trace records.
pub trait TraceSink {
    /// Receives one record.
    fn record(&mut self, at: SimTime, category: &'static str, message: String);
}

/// A sink that drops everything (placeholder for "tracing off").
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _at: SimTime, _category: &'static str, _message: String) {}
}

/// A sink that prints each record to stderr, prefixed with the simulated
/// time — handy for ad-hoc debugging.
///
/// An optional category filter keeps chatty categories out of the way
/// when debugging one subsystem (e.g. chaos tests drowning in task
/// events):
///
/// ```
/// use ignem_simcore::trace::StderrSink;
///
/// let sink = StderrSink::with_filter("migration, rpc");
/// assert!(sink.accepts("migration"));
/// assert!(!sink.accepts("task"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StderrSink {
    /// `None` prints everything; `Some` prints only the listed categories.
    filter: Option<Vec<String>>,
}

impl StderrSink {
    /// Creates an unfiltered sink (prints every category).
    pub fn new() -> Self {
        StderrSink::default()
    }

    /// Creates a sink printing only the categories in `spec`, an
    /// env-style comma-separated list like `"migration,rpc"`. Whitespace
    /// around entries is ignored; an empty spec means "print everything".
    pub fn with_filter(spec: &str) -> Self {
        let cats: Vec<String> = spec
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        StderrSink {
            filter: if cats.is_empty() { None } else { Some(cats) },
        }
    }

    /// Whether records in `category` pass the filter.
    pub fn accepts(&self, category: &str) -> bool {
        match &self.filter {
            None => true,
            Some(cats) => cats.iter().any(|c| c == category),
        }
    }
}

impl TraceSink for StderrSink {
    fn record(&mut self, at: SimTime, category: &'static str, message: String) {
        if self.accepts(category) {
            eprintln!("[{at}] {category}: {message}");
        }
    }
}

/// A sink that appends records to a shared vector, so the caller can
/// inspect the trace after the simulation (which consumes the sink).
///
/// ```
/// use ignem_simcore::time::SimTime;
/// use ignem_simcore::trace::{SharedVecSink, TraceSink};
///
/// let (mut sink, entries) = SharedVecSink::new();
/// sink.record(SimTime::from_secs(1), "job", "submitted".into());
/// assert_eq!(entries.borrow().len(), 1);
/// assert_eq!(entries.borrow()[0].category, "job");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedVecSink {
    entries: Rc<RefCell<Vec<TraceEntry>>>,
}

impl SharedVecSink {
    /// Creates a sink and the shared handle to its records.
    pub fn new() -> (SharedVecSink, Rc<RefCell<Vec<TraceEntry>>>) {
        let entries = Rc::new(RefCell::new(Vec::new()));
        (
            SharedVecSink {
                entries: entries.clone(),
            },
            entries,
        )
    }
}

impl TraceSink for SharedVecSink {
    fn record(&mut self, at: SimTime, category: &'static str, message: String) {
        self.entries.borrow_mut().push(TraceEntry {
            at,
            category,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_sink_accumulates_in_order() {
        let (mut sink, entries) = SharedVecSink::new();
        sink.record(SimTime::from_secs(1), "a", "one".into());
        sink.record(SimTime::from_secs(2), "b", "two".into());
        let e = entries.borrow();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].message, "one");
        assert_eq!(e[1].at, SimTime::from_secs(2));
    }

    #[test]
    fn null_sink_is_silent() {
        let mut s = NullSink;
        s.record(SimTime::ZERO, "x", "dropped".into());
    }

    #[test]
    fn stderr_filter_parses_env_style_lists() {
        let all = StderrSink::new();
        assert!(all.accepts("task"));
        let some = StderrSink::with_filter("migration,rpc");
        assert!(some.accepts("migration"));
        assert!(some.accepts("rpc"));
        assert!(!some.accepts("task"));
        // Whitespace and empty entries are tolerated; an empty spec means
        // "everything".
        let spaced = StderrSink::with_filter(" migration , ,rpc ");
        assert!(spaced.accepts("rpc"));
        assert!(!spaced.accepts("job"));
        let empty = StderrSink::with_filter("  ,  ");
        assert!(empty.accepts("anything"));
    }

    #[test]
    fn sinks_are_object_safe() {
        let mut boxed: Box<dyn TraceSink> = Box::new(NullSink);
        boxed.record(SimTime::ZERO, "x", "ok".into());
    }
}
