//! Dense, id-indexed containers: deterministic by construction.
//!
//! The simulator keys nearly all of its hot-path state by small dense ids
//! — block numbers, job numbers, sequence numbers, flow ids, node
//! indices. [`IdMap`] and [`IdSet`] exploit that: they store values in a
//! contiguous slot array indexed by the id itself (minus a sliding base
//! offset), so
//!
//! * lookup, insert and remove are O(1) — no tree rebalancing, no
//!   pointer chasing;
//! * iteration walks the slots in ascending key order — the same order a
//!   `BTreeMap` would produce, with none of a hash map's
//!   seed-dependence, so replacing a `BTreeMap` with an `IdMap` can
//!   never reorder events (lint rule D02 treats them as deterministic
//!   for exactly this reason);
//! * scans touch contiguous memory, which is what the per-event
//!   invariant validation and the flow-resource update loop actually
//!   spend their time on.
//!
//! The price is that memory and iteration are O(*key span*) — the
//! distance between the smallest and largest **live** key — rather than
//! O(len). The containers self-compact: removing the lowest or highest
//! live key shrinks the span, so monotonically allocated ids (sequence
//! numbers, request ids) whose entries die young keep the span small.
//! Keys far above the live span may be *looked up* freely (they miss
//! without allocating); only `insert` grows the span. Do not key an
//! `IdMap` by sparse or adversarial ids — that is what `BTreeMap`
//! remains for.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

/// A key type that is (or wraps) a small dense index.
///
/// `from_index(index(k)) == k` must hold, and `Ord` must agree with the
/// index order — both are true for the id newtypes (`BlockId`, `JobId`,
/// `FlowId`, …) that wrap an unsigned integer.
pub trait DenseId: Copy + Ord {
    /// The key as a slot index.
    fn index(self) -> usize;
    /// The key for a slot index.
    fn from_index(index: usize) -> Self;
}

impl DenseId for usize {
    fn index(self) -> usize {
        self
    }
    fn from_index(index: usize) -> Self {
        index
    }
}

impl DenseId for u64 {
    fn index(self) -> usize {
        // lint: allow(P02, reason = "cannot fail on 64-bit targets; a guard against 32-bit truncation")
        usize::try_from(self).expect("id exceeds the address space")
    }
    fn from_index(index: usize) -> Self {
        index as u64
    }
}

impl DenseId for u32 {
    fn index(self) -> usize {
        self as usize
    }
    fn from_index(index: usize) -> Self {
        u32::try_from(index).expect("index exceeds u32 id space")
    }
}

/// An ordered map from a dense id to `V`, backed by a sliding window of
/// slots (see the [module docs](self) for the determinism and complexity
/// story).
///
/// ```
/// use ignem_simcore::idmap::IdMap;
///
/// let mut m: IdMap<u64, &str> = IdMap::new();
/// m.insert(7, "seven");
/// m.insert(3, "three");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// // Iteration is in ascending key order, like a BTreeMap.
/// assert_eq!(m.iter().map(|(k, _)| k).collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone)]
pub struct IdMap<K, V> {
    /// Key index of `slots[0]`; meaningless while `slots` is empty.
    base: usize,
    slots: VecDeque<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: DenseId, V> IdMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        IdMap {
            base: 0,
            slots: VecDeque::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry (keeps the allocation).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
        self.base = 0;
    }

    /// The slot position of `key`, if it falls inside the current window.
    fn pos(&self, key: K) -> Option<usize> {
        let i = key.index();
        if self.slots.is_empty() || i < self.base {
            return None;
        }
        let off = i - self.base;
        (off < self.slots.len()).then_some(off)
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.pos(*key).and_then(|p| self.slots[p].as_ref())
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.pos(*key) {
            Some(p) => self.slots[p].as_mut(),
            None => None,
        }
    }

    /// Whether `key` has a value.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    /// Grows the slot window to cover `key` when needed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.index();
        if self.slots.is_empty() {
            self.base = i;
            self.slots.push_back(Some(value));
            self.len = 1;
            return None;
        }
        if i < self.base {
            for _ in 0..(self.base - i - 1) {
                self.slots.push_front(None);
            }
            self.slots.push_front(Some(value));
            self.base = i;
            self.len += 1;
            return None;
        }
        let off = i - self.base;
        if off >= self.slots.len() {
            for _ in 0..(off - self.slots.len()) {
                self.slots.push_back(None);
            }
            self.slots.push_back(Some(value));
            self.len += 1;
            return None;
        }
        let old = self.slots[off].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `key`. Shrinks the slot window
    /// when the lowest or highest live key goes away (this is what keeps
    /// the span small under monotone id allocation).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let p = self.pos(*key)?;
        let old = self.slots[p].take();
        if old.is_some() {
            self.len -= 1;
            if self.len == 0 {
                self.slots.clear();
                self.base = 0;
            } else {
                while matches!(self.slots.front(), Some(None)) {
                    self.slots.pop_front();
                    self.base += 1;
                }
                while matches!(self.slots.back(), Some(None)) {
                    self.slots.pop_back();
                }
            }
        }
        old
    }

    /// Returns the value at `key`, inserting `V::default()` first if the
    /// key is vacant (the `entry(k).or_default()` idiom).
    pub fn entry_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        if !self.contains_key(&key) {
            self.insert(key, V::default());
        }
        // lint: allow(P02, reason = "post-insert invariant: the key was inserted two lines up")
        let p = self.pos(key).expect("just inserted");
        // lint: allow(P02, reason = "post-insert invariant: the key was inserted three lines up")
        self.slots[p].as_mut().expect("just inserted")
    }

    /// Iterates `(key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(off, slot)| Some((K::from_index(base + off), slot.as_ref()?)))
    }

    /// Iterates `(key, &mut value)` in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        let base = self.base;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(move |(off, slot)| Some((K::from_index(base + off), slot.as_mut()?)))
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Iterates mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Returns the value at `key`, inserting `make()` first if the key is
    /// vacant (the `entry(k).or_insert_with(..)` idiom).
    pub fn entry_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(&key) {
            self.insert(key, make());
        }
        // lint: allow(P02, reason = "post-insert invariant: the key was inserted two lines up")
        let p = self.pos(key).expect("just inserted");
        // lint: allow(P02, reason = "post-insert invariant: the key was inserted three lines up")
        self.slots[p].as_mut().expect("just inserted")
    }

    /// Consumes the map, iterating values in ascending key order.
    pub fn into_values(self) -> impl Iterator<Item = V> {
        self.slots.into_iter().flatten()
    }

    /// Consumes the map, iterating keys in ascending order.
    pub fn into_keys(self) -> impl Iterator<Item = K> {
        let base = self.base;
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(move |(off, slot)| slot.map(|_| K::from_index(base + off)))
    }

    /// Keeps only the entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(K, &mut V) -> bool) {
        let base = self.base;
        let mut removed = 0usize;
        for (off, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(K::from_index(base + off), v) {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        self.len -= removed;
        if self.len == 0 {
            self.slots.clear();
            self.base = 0;
        } else if removed > 0 {
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
            while matches!(self.slots.back(), Some(None)) {
                self.slots.pop_back();
            }
        }
    }
}

impl<K: DenseId, V> Default for IdMap<K, V> {
    fn default() -> Self {
        IdMap::new()
    }
}

impl<K: DenseId, V> IntoIterator for IdMap<K, V> {
    type Item = (K, V);
    type IntoIter = IntoIter<K, V>;

    fn into_iter(self) -> IntoIter<K, V> {
        IntoIter {
            base: self.base,
            inner: self.slots.into_iter().enumerate(),
            _key: PhantomData,
        }
    }
}

/// Owning iterator over an [`IdMap`], ascending key order.
pub struct IntoIter<K, V> {
    base: usize,
    inner: std::iter::Enumerate<std::collections::vec_deque::IntoIter<Option<V>>>,
    _key: PhantomData<K>,
}

impl<K: DenseId, V> Iterator for IntoIter<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        for (off, slot) in self.inner.by_ref() {
            if let Some(v) = slot {
                return Some((K::from_index(self.base + off), v));
            }
        }
        None
    }
}

impl<K: DenseId + fmt::Debug, V: fmt::Debug> fmt::Debug for IdMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: DenseId, V> std::ops::Index<&K> for IdMap<K, V> {
    type Output = V;

    /// Panics if `key` is absent, mirroring `BTreeMap`'s `Index`.
    fn index(&self, key: &K) -> &V {
        // lint: allow(P02, reason = "documented Index contract, mirroring BTreeMap")
        self.get(key).expect("no entry found for key")
    }
}

impl<K: DenseId, V: PartialEq> PartialEq for IdMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
    }
}

impl<K: DenseId, V: Eq> Eq for IdMap<K, V> {}

impl<K: DenseId, V> FromIterator<(K, V)> for IdMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = IdMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// An ordered set of dense ids: an [`IdMap`] to `()` with set semantics.
///
/// ```
/// use ignem_simcore::idmap::IdSet;
///
/// let mut s: IdSet<u64> = IdSet::new();
/// assert!(s.insert(5));
/// assert!(!s.insert(5));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![5]);
/// ```
pub struct IdSet<K> {
    map: IdMap<K, ()>,
}

impl<K: DenseId> Clone for IdSet<K> {
    fn clone(&self) -> Self {
        IdSet {
            map: self.map.clone(),
        }
    }
}

impl<K: DenseId> Default for IdSet<K> {
    fn default() -> Self {
        IdSet::new()
    }
}

impl<K: DenseId> PartialEq for IdSet<K> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<K: DenseId> Eq for IdSet<K> {}

impl<K: DenseId> IdSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        IdSet { map: IdMap::new() }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Adds `key`; returns true if it was not already a member.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns true if it was a member.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Whether `key` is a member.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.map.keys()
    }

    /// Keeps only the members for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(K) -> bool) {
        self.map.retain(|k, ()| keep(k));
    }
}

impl<K: DenseId + fmt::Debug> fmt::Debug for IdSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<K: DenseId> FromIterator<K> for IdSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        IdSet {
            map: iter.into_iter().map(|k| (k, ())).collect(),
        }
    }
}

impl<K: DenseId> IntoIterator for IdSet<K> {
    type Item = K;
    type IntoIter = SetIntoIter<K>;

    fn into_iter(self) -> SetIntoIter<K> {
        SetIntoIter {
            inner: self.map.into_iter(),
        }
    }
}

/// Owning iterator over an [`IdSet`], ascending order.
pub struct SetIntoIter<K> {
    inner: IntoIter<K, ()>,
}

impl<K: DenseId> Iterator for SetIntoIter<K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        self.inner.next().map(|(k, ())| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: IdMap<u64, i32> = IdMap::new();
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.insert(5, 2), None);
        assert_eq!(m.insert(10, 3), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&5), Some(&2));
        assert_eq!(m.remove(&5), Some(2));
        assert_eq!(m.remove(&5), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&10));
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut m: IdMap<u64, &str> = IdMap::new();
        for k in [9, 2, 7, 4] {
            m.insert(k, "x");
        }
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![2, 4, 7, 9]);
    }

    #[test]
    fn window_compacts_under_monotone_churn() {
        // Monotone allocation with short-lived entries must keep the slot
        // window small — this is the SeqNo/RequestId usage pattern.
        let mut m: IdMap<u64, u64> = IdMap::new();
        for i in 0..10_000u64 {
            m.insert(i, i);
            if i >= 4 {
                m.remove(&(i - 4));
            }
        }
        assert_eq!(m.len(), 4);
        assert!(
            m.slots.len() <= 8,
            "window failed to compact: {} slots for {} entries",
            m.slots.len(),
            m.len()
        );
    }

    #[test]
    fn far_lookups_do_not_allocate() {
        let mut m: IdMap<u64, u64> = IdMap::new();
        m.insert(3, 1);
        // The disk layer probes flush ids near 1 << 62; a miss must not
        // widen the window.
        assert_eq!(m.get(&(1 << 62)), None);
        assert!(!m.contains_key(&(1 << 62)));
        assert_eq!(m.slots.len(), 1);
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut m: IdMap<u64, Vec<u32>> = IdMap::new();
        m.entry_or_default(4).push(1);
        m.entry_or_default(4).push(2);
        assert_eq!(m.get(&4), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn set_semantics_match_btreeset() {
        let mut s: IdSet<u64> = IdSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(&3));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert!(s.is_empty());
    }

    /// The container-equivalence property test: random op sequences from
    /// the in-tree rng must leave an `IdMap` and a `BTreeMap` observably
    /// identical (same len, same lookups, same ordered iteration).
    #[test]
    fn property_idmap_matches_btreemap() {
        let mut rng = SimRng::new(0x1D_A1AB);
        for _round in 0..50 {
            let mut idm: IdMap<u64, u64> = IdMap::new();
            let mut btm: BTreeMap<u64, u64> = BTreeMap::new();
            for op in 0..400 {
                let key = rng.index(48) as u64;
                match rng.index(5) {
                    0 | 1 => {
                        assert_eq!(idm.insert(key, op), btm.insert(key, op));
                    }
                    2 => {
                        assert_eq!(idm.remove(&key), btm.remove(&key));
                    }
                    3 => {
                        assert_eq!(idm.get(&key), btm.get(&key));
                        assert_eq!(idm.contains_key(&key), btm.contains_key(&key));
                    }
                    _ => {
                        if let Some(v) = idm.get_mut(&key) {
                            *v += 1;
                        }
                        if let Some(v) = btm.get_mut(&key) {
                            *v += 1;
                        }
                    }
                }
                assert_eq!(idm.len(), btm.len());
            }
            let a: Vec<(u64, u64)> = idm.iter().map(|(k, v)| (k, *v)).collect();
            let b: Vec<(u64, u64)> = btm.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(a, b, "ordered iteration must match BTreeMap");
            let ka: Vec<u64> = idm.clone().into_keys().collect();
            let kb: Vec<u64> = btm.keys().copied().collect();
            assert_eq!(ka, kb);
        }
    }

    /// Same property for the set against `BTreeSet`.
    #[test]
    fn property_idset_matches_btreeset() {
        let mut rng = SimRng::new(0x5E7_5EED);
        for _round in 0..50 {
            let mut ids: IdSet<u64> = IdSet::new();
            let mut bts: BTreeSet<u64> = BTreeSet::new();
            for _op in 0..400 {
                let key = rng.index(48) as u64;
                match rng.index(3) {
                    0 | 1 => assert_eq!(ids.insert(key), bts.insert(key)),
                    _ => assert_eq!(ids.remove(&key), bts.remove(&key)),
                }
                assert_eq!(ids.len(), bts.len());
                assert_eq!(ids.contains(&key), bts.contains(&key));
            }
            let a: Vec<u64> = ids.iter().collect();
            let b: Vec<u64> = bts.iter().copied().collect();
            assert_eq!(a, b, "ordered iteration must match BTreeSet");
        }
    }

    #[test]
    fn retain_keeps_order_and_len() {
        let mut m: IdMap<u64, u64> = (0..20u64).map(|k| (k, k * 2)).collect();
        m.retain(|k, _| k % 3 == 0);
        assert_eq!(m.len(), 7);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![0, 3, 6, 9, 12, 15, 18]);
        // Front/back compaction after retain.
        m.retain(|k, _| k != 0 && k != 18);
        assert_eq!(m.slots.front().map(|s| s.is_some()), Some(true));
        assert_eq!(m.slots.back().map(|s| s.is_some()), Some(true));
    }
}
