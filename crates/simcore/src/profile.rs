//! Host-time profiling hooks: attribute engine wall-clock to buckets.
//!
//! The profiler never reads a clock itself — the harness injects one as a
//! monotonic-nanos closure (the bench crate builds it from its sanctioned
//! wall-clock read), so `simcore` stays free of ambient time sources and
//! the determinism lint. Like [`crate::telemetry::Telemetry`], a disabled
//! profiler is a no-op handle: `measure` runs the closure without touching
//! the clock, so simulation results are identical with or without it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Wall-clock totals for one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileBucket {
    /// Number of measured sections.
    pub count: u64,
    /// Total host nanoseconds across them.
    pub nanos: u64,
}

struct Inner {
    clock: Box<dyn FnMut() -> u64>,
    buckets: BTreeMap<&'static str, ProfileBucket>,
}

/// A cloneable handle measuring host time per named bucket.
#[derive(Clone, Default)]
pub struct HostProfiler {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl std::fmt::Debug for HostProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostProfiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl HostProfiler {
    /// An enabled profiler reading host time from `clock` (monotonic
    /// nanoseconds; only differences are used).
    pub fn new(clock: Box<dyn FnMut() -> u64>) -> HostProfiler {
        HostProfiler {
            inner: Some(Rc::new(RefCell::new(Inner {
                clock,
                buckets: BTreeMap::new(),
            }))),
        }
    }

    /// A disabled handle: `measure` runs closures untimed.
    pub fn disabled() -> HostProfiler {
        HostProfiler { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f`, charging its host wall-clock to `bucket` when enabled.
    pub fn measure<R>(&self, bucket: &'static str, f: impl FnOnce() -> R) -> R {
        let Some(inner) = &self.inner else {
            return f();
        };
        let before = (inner.borrow_mut().clock)();
        // The borrow is dropped around `f` so measured code may itself
        // hold a clone of this handle.
        let out = f();
        let mut inner = inner.borrow_mut();
        let after = (inner.clock)();
        let b = inner.buckets.entry(bucket).or_default();
        b.count += 1;
        b.nanos += after.saturating_sub(before);
        out
    }

    /// Snapshot of all buckets, ordered by name.
    pub fn report(&self) -> Vec<(&'static str, ProfileBucket)> {
        match &self.inner {
            Some(inner) => inner
                .borrow()
                .buckets
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_still_runs_closures() {
        let p = HostProfiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.measure("x", || 7), 7);
        assert!(p.report().is_empty());
    }

    #[test]
    fn buckets_accumulate_injected_clock_deltas() {
        // A fake clock ticking 10ns per read keeps the test hermetic.
        let t = Rc::new(RefCell::new(0u64));
        let tc = t.clone();
        let p = HostProfiler::new(Box::new(move || {
            let mut t = tc.borrow_mut();
            *t += 10;
            *t
        }));
        assert!(p.is_enabled());
        p.measure("handle", || ());
        p.measure("handle", || ());
        p.measure("drain", || ());
        let report = p.report();
        assert_eq!(report.len(), 2);
        let (name, b) = report[1];
        assert_eq!(name, "handle");
        assert_eq!(b.count, 2);
        assert_eq!(b.nanos, 20);
        let (name, b) = report[0];
        assert_eq!(name, "drain");
        assert_eq!(b.count, 1);
        assert_eq!(b.nanos, 10);
    }

    #[test]
    fn measured_code_may_reenter_the_handle() {
        let t = Rc::new(RefCell::new(0u64));
        let tc = t.clone();
        let p = HostProfiler::new(Box::new(move || {
            let mut t = tc.borrow_mut();
            *t += 1;
            *t
        }));
        let q = p.clone();
        p.measure("outer", || q.measure("inner", || ()));
        assert_eq!(p.report().len(), 2);
    }
}
