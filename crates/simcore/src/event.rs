//! The discrete-event engine: a time-ordered event queue with cancellation.
//!
//! [`Engine`] owns the simulation clock, the pending-event queue and the
//! root RNG. Components schedule payloads of a user-chosen event type `E`;
//! the driver loop pops them in `(time, insertion order)` order:
//!
//! ```
//! use ignem_simcore::{event::Engine, time::SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new(42);
//! engine.schedule_in(SimDuration::from_secs(1), Ev::Ping(7));
//! let mut seen = vec![];
//! while let Some(ev) = engine.pop() {
//!     match ev { Ev::Ping(n) => seen.push(n) }
//! }
//! assert_eq!(seen, vec![7]);
//! assert_eq!(engine.now().as_secs_f64(), 1.0);
//! ```

use std::cmp::Reverse;
// The cancelled set is a BTreeSet rather than a HashSet: it is only ever
// probed by membership today, but keeping it ordered means any future
// drain/debug sweep stays deterministic by construction (lint rule D02).
use std::collections::{BTreeSet, BinaryHeap};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Heap key: events fire in time order; ties break by insertion order, which
/// gives the deterministic FIFO semantics the protocols rely on.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

struct Entry<E> {
    key: Key,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The discrete-event simulation engine.
///
/// Generic over the event payload type `E` so each simulation defines its own
/// closed event vocabulary (an enum), keeping dispatch exhaustive and
/// allocation-free.
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: BTreeSet<u64>,
    rng: SimRng,
    processed: u64,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with a seeded root RNG.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            rng: SimRng::new(seed),
            processed: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Whether any events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.len() == self.cancelled.len()
    }

    /// The engine's root RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            key: Key { at, seq },
            payload,
        }));
        EventId(seq)
    }

    /// Schedules `payload` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` to fire immediately (at the current time, after
    /// any already-queued events for this instant).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no (uncancelled) events remain.
    pub fn pop(&mut self) -> Option<E> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.key.seq) {
                continue;
            }
            debug_assert!(entry.key.at >= self.now, "time went backwards");
            self.now = entry.key.at;
            self.processed += 1;
            return Some(entry.payload);
        }
        None
    }

    /// Peeks at the timestamp of the next event without firing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.key.seq) {
                let seq = entry.key.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.key.at);
        }
        None
    }

    /// Runs the simulation to completion, dispatching each event to
    /// `handler`. The handler may schedule further events.
    ///
    /// ```
    /// use ignem_simcore::{event::Engine, time::SimDuration};
    ///
    /// let mut engine: Engine<u32> = Engine::new(0);
    /// engine.schedule_in(SimDuration::from_secs(1), 3);
    /// let mut total = 0;
    /// engine.run(|eng, n| {
    ///     total += n;
    ///     if n > 1 {
    ///         eng.schedule_in(SimDuration::from_secs(1), n - 1);
    ///     }
    /// });
    /// assert_eq!(total, 3 + 2 + 1);
    /// ```
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, E)) {
        while let Some(ev) = self.pop() {
            handler(self, ev);
        }
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are processed. Returns the number of events handled.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Engine<E>, E),
    ) -> u64 {
        let mut handled = 0;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.pop().expect("peeked event vanished");
            handler(self, ev);
            handled += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_micros(30), 3);
        e.schedule_at(SimTime::from_micros(10), 1);
        e.schedule_at(SimTime::from_micros(20), 2);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut e: Engine<u32> = Engine::new(0);
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            e.schedule_at(t, i);
        }
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert_eq!(e.pop(), Some(1));
        e.cancel(a); // must not panic or corrupt
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut e: Engine<()> = Engine::new(0);
        e.schedule_at(SimTime::from_secs_f64(2.5), ());
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs_f64(2.5));
    }

    #[test]
    fn schedule_during_run_works() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_in(SimDuration::from_secs(1), 5);
        let mut count = 0;
        e.run(|eng, n| {
            count += 1;
            if n > 0 {
                eng.schedule_in(SimDuration::from_secs(1), n - 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(e.now().as_secs_f64(), 6.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_secs_f64(1.0), 1);
        e.schedule_at(SimTime::from_secs_f64(5.0), 2);
        let mut got = vec![];
        let n = e.run_until(SimTime::from_secs_f64(2.0), |_, v| got.push(v));
        assert_eq!(n, 1);
        assert_eq!(got, vec![1]);
        assert_eq!(e.now(), SimTime::from_secs_f64(2.0));
        // Remaining event still fires later.
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        assert_eq!(e.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn is_idle_accounts_for_cancellations() {
        let mut e: Engine<u32> = Engine::new(0);
        assert!(e.is_idle());
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert!(!e.is_idle());
        e.cancel(a);
        assert!(e.is_idle());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_secs(5), 1);
        e.pop();
        e.schedule_at(SimTime::from_secs(1), 2);
    }
}
