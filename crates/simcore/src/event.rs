//! The discrete-event engine: a time-ordered event queue with cancellation.
//!
//! [`Engine`] owns the simulation clock, the pending-event queue and the
//! root RNG. Components schedule payloads of a user-chosen event type `E`;
//! the driver loop pops them in `(time, insertion order)` order:
//!
//! ```
//! use ignem_simcore::{event::Engine, time::SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new(42);
//! engine.schedule_in(SimDuration::from_secs(1), Ev::Ping(7));
//! let mut seen = vec![];
//! while let Some(ev) = engine.pop() {
//!     match ev { Ev::Ping(n) => seen.push(n) }
//! }
//! assert_eq!(seen, vec![7]);
//! assert_eq!(engine.now().as_secs_f64(), 1.0);
//! ```
//!
//! ## The hierarchical timing wheel
//!
//! The queue is a hierarchical timing wheel (a calendar queue), not a
//! binary heap: 11 levels of 64 slots each, 6 bits of the microsecond
//! tick per level, covering the whole `u64` tick space. An event at
//! absolute tick `t` lives at the level of the most significant bit in
//! which `t` differs from the wheel's floor `elapsed` (the granularity at
//! which its deadline is still "far"), in the slot indexed by `t`'s 6-bit
//! digit at that level. Scheduling is O(1): one XOR, one leading-zeros,
//! one `Vec::push`. Popping promotes the earliest occupied slot — found
//! by scanning 11 per-level occupancy bitmaps — jumps the floor straight
//! to that slot's earliest tick (which is the global minimum, so one
//! promotion always yields ready work), and *cascades*: entries due at
//! the new floor become ready (sorted by insertion `seq`, so equal-time
//! events still fire in FIFO order), the rest re-insert at a strictly
//! lower level. Each entry cascades through at most `LEVELS` slots over
//! its lifetime, so schedule/pop are O(1) amortized — the `O(log n)`
//! heap sifts are gone, which is what lets a 12k-node world carry
//! millions of pending timers without the queue dominating the run.
//! Promotion recycles two scratch buffers (the swapped-out slot vector
//! and the due batch), so the steady-state hot path allocates nothing.
//!
//! Determinism is unchanged from the heap engine: the pop order is
//! *exactly* `(time, insertion seq)` — the wheel only ever reorders
//! storage, never the fire sequence — and `Clone` copies the wheel
//! (levels, bitmaps, floor, ready queue) structurally, so a cloned
//! engine pops the identical future sequence. World snapshots capture
//! the wheel cursors for free.
//!
//! ## Cancellation bookkeeping
//!
//! Cancellation is lazy: the wheel entry stays where it is and is dropped
//! when it surfaces. The bookkeeping lives in a generation-stamped slot
//! slab rather than a set of cancelled sequence numbers: every scheduled
//! event borrows a slot (its [`EventId`] packs slot index + generation)
//! that parks the payload — wheel entries carry only the `(time, seq)`
//! key and the slot index, so cascade copies stay small however large `E`
//! is — and popping — fired or cancelled — returns the slot to a free
//! list and bumps its generation. That makes every operation O(1)
//! amortized, bounds the slab by the maximum number of *concurrently
//! pending* events (it self-compacts via slot reuse), and makes
//! cancelling an already-fired or never-scheduled id a structural no-op:
//! its generation no longer matches. Live (`pending()`) and stored
//! counts are tracked explicitly, so idle checks are O(1) and peeking is
//! a pure read — unlike the old heap engine, `peek_time`/`peek` no
//! longer compact cancelled prefixes as a side effect.

use std::collections::VecDeque;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A handle to a scheduled event, usable for cancellation.
///
/// Packs the event's slab slot and the slot's generation at scheduling
/// time; a stale handle (the event already fired or was cancelled) simply
/// no longer matches and cancels nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A wheel entry is the ordering key plus the slab slot holding the
/// payload: a small fixed-size value, so cascades move ~24 bytes instead
/// of the (potentially large) event payload itself.
#[derive(Debug, Clone)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// One slab slot: which incarnation lives here, whether it has been
/// cancelled while still in the wheel, and the parked payload (taken on
/// fire, dropped eagerly on cancel).
#[derive(Clone)]
struct Slot<E> {
    gen: u32,
    pending: bool,
    cancelled: bool,
    payload: Option<E>,
}

/// Bits of the tick consumed per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per level (`2^LEVEL_BITS`).
const LEVEL_SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover a full `u64` of microsecond ticks
/// (`11 × 6 = 66 ≥ 64`).
const LEVELS: usize = 11;

/// The calendar-queue structure: per-level slot vectors, occupancy
/// bitmaps, the wheel floor, and the ready queue of entries at the floor.
///
/// Invariants (between public engine operations):
/// - every stored entry has `at > elapsed` (levels) or `at == elapsed`
///   (ready queue);
/// - all level-`l` entries share `elapsed`'s tick digits above level `l`,
///   so within a level, slot index order is time order and every occupied
///   slot index is strictly greater than `elapsed`'s digit at that level;
/// - all level-`l` entries fire strictly before any level-`l+1` entry;
/// - `ready` is sorted by `seq` (cascades sort the batch they promote;
///   later schedules at the floor append with strictly larger seqs);
/// - `elapsed <= now` whenever the engine is quiescent.
#[derive(Clone)]
struct Wheel {
    /// `LEVELS × LEVEL_SLOTS` slot vectors, row-major by level.
    levels: Vec<Vec<Entry>>,
    /// Per-level occupancy bitmap: bit `s` set ⇔ `levels[l*64+s]` nonempty.
    occupied: [u64; LEVELS],
    /// Entries at tick `elapsed`, in seq order; `pop` drains from the front.
    ready: VecDeque<Entry>,
    /// The wheel floor in ticks: every level entry is strictly later.
    elapsed: u64,
    /// Recycled cascade buffer: swapped with the promoted slot's vector so
    /// steady-state promotion allocates nothing (a `mem::take` would throw
    /// the slot's capacity away on every cascade).
    cascade: Vec<Entry>,
    /// Recycled batch buffer for the entries due at the new floor.
    due: Vec<Entry>,
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            levels: vec![Vec::new(); LEVELS * LEVEL_SLOTS],
            occupied: [0; LEVELS],
            ready: VecDeque::new(),
            elapsed: 0,
            cascade: Vec::new(),
            due: Vec::new(),
        }
    }

    /// The level and slot index for an entry at tick `at`, relative to
    /// the current floor. Caller guarantees `at > self.elapsed`.
    fn level_slot(&self, at: u64) -> (usize, usize) {
        let diff = at ^ self.elapsed;
        debug_assert!(diff != 0, "floor ticks belong in the ready queue");
        let msb = 63 - diff.leading_zeros();
        let level = (msb / LEVEL_BITS) as usize;
        let slot = ((at >> (LEVEL_BITS * level as u32)) & (LEVEL_SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Files an entry: ready queue if it is due at the floor, otherwise
    /// the level/slot its tick digits select.
    fn insert(&mut self, entry: Entry) {
        let at = entry.at.as_micros();
        if at == self.elapsed {
            // Fresh schedules carry a seq larger than everything already
            // queued, so appending keeps `ready` seq-sorted; cascades only
            // reach here via `promote_earliest`, which sorts its batch.
            self.ready.push_back(entry);
        } else {
            let (level, slot) = self.level_slot(at);
            self.levels[level * LEVEL_SLOTS + slot].push(entry);
            self.occupied[level] |= 1 << slot;
        }
    }

    /// The earliest occupied `(level, slot)`, if any level holds entries.
    fn earliest_slot(&self) -> Option<(usize, usize)> {
        self.occupied
            .iter()
            .position(|&occ| occ != 0)
            .map(|level| (level, self.occupied[level].trailing_zeros() as usize))
    }

    /// Jumps the floor to the earliest stored tick and promotes every
    /// entry due there into `ready` (seq-sorted); later entries from the
    /// same slot re-file at a strictly lower level. Returns `false` when
    /// every level is empty — otherwise `ready` is guaranteed nonempty,
    /// so the caller never loops.
    ///
    /// Correctness of the timestamp jump: `earliest_slot` picks the
    /// lowest occupied level (all lower levels empty) and its lowest
    /// occupied slot, and slot order within a level is time order, so the
    /// minimum tick in that slot is the global minimum. Jumping `elapsed`
    /// to it only changes digits at or below the promoted level, which
    /// preserves the digit-sharing invariant for every other stored
    /// entry. Re-filed entries share the promoted slot's digit with the
    /// new floor, so `level_slot` sends them strictly lower; each entry
    /// still cascades at most `LEVELS` times over its lifetime.
    fn promote_earliest(&mut self) -> bool {
        let Some((level, slot)) = self.earliest_slot() else {
            return false;
        };
        // Swap the slot's vector with the recycled cascade buffer instead
        // of `mem::take`-ing it, so slot capacity survives the promotion.
        let idx = level * LEVEL_SLOTS + slot;
        // Sparse timers dominate: most promotions move a lone entry, which
        // needs no min-scan, no partition and no sort.
        if self.levels[idx].len() == 1 {
            let entry = self.levels[idx].pop().expect("len checked above");
            self.occupied[level] &= !(1 << slot);
            debug_assert!(entry.at.as_micros() > self.elapsed);
            self.elapsed = entry.at.as_micros();
            debug_assert!(self.ready.is_empty(), "cascade only runs when drained");
            self.ready.push_back(entry);
            return true;
        }
        let mut batch = std::mem::take(&mut self.cascade);
        std::mem::swap(&mut batch, &mut self.levels[idx]);
        self.occupied[level] &= !(1 << slot);
        let min_at = batch
            .iter()
            .map(|e| e.at.as_micros())
            .min()
            .expect("occupied bitmap pointed at an empty slot");
        debug_assert!(min_at > self.elapsed, "slots always lie beyond the floor");
        self.elapsed = min_at;
        let mut due = std::mem::take(&mut self.due);
        for entry in batch.drain(..) {
            if entry.at.as_micros() == min_at {
                due.push(entry);
            } else {
                self.insert(entry);
            }
        }
        // Cascaded batches arrive in storage order; equal-time events must
        // still fire in insertion order. Seqs are unique so an unstable
        // (allocation-free) sort is exact.
        due.sort_unstable_by_key(|e| e.seq);
        debug_assert!(self.ready.is_empty(), "cascade only runs when drained");
        self.ready.extend(due.drain(..));
        self.cascade = batch;
        self.due = due;
        true
    }
}

/// The discrete-event simulation engine.
///
/// Generic over the event payload type `E` so each simulation defines its own
/// closed event vocabulary (an enum), keeping dispatch exhaustive and
/// allocation-free.
///
/// When `E: Clone` the whole engine is `Clone`: the wheel (levels,
/// occupancy bitmaps, floor cursor, ready queue), the slot slab (with
/// generation stamps), the free list and the root RNG all copy
/// structurally, so a clone pops the exact same future event sequence —
/// including insertion-order tie-breaks — as the original. This is what
/// makes world snapshots a memcpy-style fork rather than a replay.
#[derive(Clone)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    wheel: Wheel,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Entries still in the wheel, cancelled ones included.
    stored: usize,
    /// Live (uncancelled) entries in the wheel; `pending()` in O(1).
    live: usize,
    rng: SimRng,
    processed: u64,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with a seeded root RNG.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            wheel: Wheel::new(),
            slots: Vec::new(),
            free: Vec::new(),
            stored: 0,
            live: 0,
            rng: SimRng::new(seed),
            processed: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Whether any live (uncancelled) events remain. O(1).
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Number of live (uncancelled) events still queued. O(1): the count
    /// is tracked explicitly, not derived from queue length, so it is
    /// exact regardless of how many cancelled entries still sit in the
    /// wheel awaiting lazy removal.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// The engine's root RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Parks `payload` in a slot for a new event, reusing freed slots.
    fn alloc_slot(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                slot.pending = true;
                slot.cancelled = false;
                slot.payload = Some(payload);
                s
            }
            None => {
                // lint: allow(P02, reason = "capacity guard: 2^32 pending events means a runaway schedule loop")
                let s = u32::try_from(self.slots.len()).expect("more than u32::MAX pending events");
                // lint: allow(Q01, reason = "slot slab reuses freed slots via the free list; growth tracks peak pending events")
                self.slots.push(Slot {
                    gen: 0,
                    pending: true,
                    cancelled: false,
                    payload: Some(payload),
                });
                s
            }
        }
    }

    /// Retires a slot as its wheel entry surfaces: bump the generation (so
    /// stale [`EventId`]s miss) and recycle the index.
    fn free_slot(&mut self, s: u32) {
        let slot = &mut self.slots[s as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.pending = false;
        slot.cancelled = false;
        slot.payload = None;
        self.free.push(s);
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let s = self.alloc_slot(payload);
        self.wheel.insert(Entry { at, seq, slot: s });
        self.stored += 1;
        self.live += 1;
        EventId::new(s, self.slots[s as usize].gen)
    }

    /// Schedules `payload` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` to fire immediately (at the current time, after
    /// any already-queued events for this instant).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a scheduled event. Cancelling an already-fired,
    /// already-cancelled or never-scheduled event is a true no-op: the
    /// handle's generation no longer matches any pending slot, so nothing
    /// is recorded and no state leaks.
    pub fn cancel(&mut self, id: EventId) {
        let s = id.slot() as usize;
        match self.slots.get_mut(s) {
            Some(slot) if slot.gen == id.gen() && slot.pending && !slot.cancelled => {
                slot.cancelled = true;
                // Drop the payload now rather than when the dead wheel
                // entry eventually surfaces.
                slot.payload = None;
                self.live -= 1;
            }
            _ => {}
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no (uncancelled) events remain.
    pub fn pop(&mut self) -> Option<E> {
        loop {
            while let Some(entry) = self.wheel.ready.pop_front() {
                self.stored -= 1;
                if self.slots[entry.slot as usize].cancelled {
                    self.free_slot(entry.slot);
                    continue;
                }
                let payload = self.slots[entry.slot as usize]
                    .payload
                    .take()
                    .expect("pending slot without payload");
                self.free_slot(entry.slot);
                debug_assert!(entry.at >= self.now, "time went backwards");
                self.now = entry.at;
                self.live -= 1;
                self.processed += 1;
                return Some(payload);
            }
            if self.stored == 0 {
                // Re-anchor the floor at the clock so an engine that went
                // idle mid-span files future schedules at full precision.
                self.wheel.elapsed = self.now.as_micros();
                return None;
            }
            let advanced = self.wheel.promote_earliest();
            debug_assert!(advanced, "stored entries but no occupied slot");
        }
    }

    /// The `(time, seq, slot)` key of the next event `pop` would fire,
    /// skipping cancelled entries, without mutating anything.
    ///
    /// Cancelled entries stay put (lazy removal happens in `pop`); the
    /// scan walks the ready queue, then the earliest occupied slots in
    /// level order — levels are strictly layered in time, and within a
    /// level slot index order is time order, so the first slot containing
    /// a live entry holds the minimum.
    fn peek_key(&self) -> Option<(SimTime, u32)> {
        for entry in &self.wheel.ready {
            if !self.slots[entry.slot as usize].cancelled {
                return Some((entry.at, entry.slot));
            }
        }
        for level in 0..LEVELS {
            let mut occ = self.wheel.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let mut best: Option<&Entry> = None;
                for entry in &self.wheel.levels[level * LEVEL_SLOTS + slot] {
                    if self.slots[entry.slot as usize].cancelled {
                        continue;
                    }
                    if best
                        .map(|b| (entry.at, entry.seq) < (b.at, b.seq))
                        .unwrap_or(true)
                    {
                        best = Some(entry);
                    }
                }
                if let Some(entry) = best {
                    return Some((entry.at, entry.slot));
                }
            }
        }
        None
    }

    /// Peeks at the timestamp of the next event without firing it.
    ///
    /// A pure read: unlike the old heap engine, the peek does not compact
    /// cancelled entries — those are removed lazily by [`Engine::pop`] —
    /// and the live/pending accounting is maintained by explicit counters,
    /// so nothing observable (or hidden) changes. The `&mut` receiver is
    /// kept for API stability with existing call sites.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }

    /// Peeks at the next event — timestamp and a borrow of its payload —
    /// without firing it.
    ///
    /// Same contract as [`Engine::peek_time`]: a pure read. The driver
    /// loop uses this to decide whether the *next* event is a branch
    /// point (e.g. a fault injection) worth snapshotting before.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        let (at, slot) = self.peek_key()?;
        let payload = self.slots[slot as usize]
            .payload
            .as_ref()
            .expect("pending slot without payload");
        Some((at, payload))
    }

    /// Runs the simulation to completion, dispatching each event to
    /// `handler`. The handler may schedule further events.
    ///
    /// ```
    /// use ignem_simcore::{event::Engine, time::SimDuration};
    ///
    /// let mut engine: Engine<u32> = Engine::new(0);
    /// engine.schedule_in(SimDuration::from_secs(1), 3);
    /// let mut total = 0;
    /// engine.run(|eng, n| {
    ///     total += n;
    ///     if n > 1 {
    ///         eng.schedule_in(SimDuration::from_secs(1), n - 1);
    ///     }
    /// });
    /// assert_eq!(total, 3 + 2 + 1);
    /// ```
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, E)) {
        while let Some(ev) = self.pop() {
            handler(self, ev);
        }
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are processed. Returns the number of events handled.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Engine<E>, E),
    ) -> u64 {
        let mut handled = 0;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.pop().expect("peeked event vanished");
            handler(self, ev);
            handled += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_micros(30), 3);
        e.schedule_at(SimTime::from_micros(10), 1);
        e.schedule_at(SimTime::from_micros(20), 2);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut e: Engine<u32> = Engine::new(0);
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            e.schedule_at(t, i);
        }
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    /// Ties must survive a cascade: events scheduled at the same distant
    /// tick start out in a coarse slot together with differently-timed
    /// neighbours and are only separated (and seq-ordered) as the wheel
    /// promotes them level by level.
    #[test]
    fn ties_fire_in_insertion_order_across_cascades() {
        let mut e: Engine<u32> = Engine::new(0);
        let far = SimTime::from_micros(1_000_003);
        // Interleave two tied groups plus scattered neighbours.
        e.schedule_at(far, 0);
        e.schedule_at(SimTime::from_micros(1_000_001), 100);
        e.schedule_at(far, 1);
        e.schedule_at(SimTime::from_micros(999_999), 99);
        e.schedule_at(far, 2);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![99, 100, 0, 1, 2]);
    }

    /// Long-horizon schedules exercise every wheel level; order must hold
    /// across widely spread timestamps, including the top levels.
    #[test]
    fn long_horizon_events_fire_in_order() {
        let mut e: Engine<u64> = Engine::new(0);
        let mut ticks: Vec<u64> = (0..40).map(|i| 7u64 << i).collect();
        ticks.push(1);
        ticks.push(u64::MAX / 2);
        for &t in ticks.iter().rev() {
            e.schedule_at(SimTime::from_micros(t), t);
        }
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        ticks.sort_unstable();
        assert_eq!(got, ticks);
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert_eq!(e.pop(), Some(1));
        e.cancel(a); // must not panic or corrupt
        assert_eq!(e.pop(), None);
    }

    /// Regression: cancelling a fired (or repeatedly cancelling the same)
    /// event used to park its seq in the cancelled set forever, skewing
    /// `is_idle` and leaking memory. Now it is a structural no-op.
    #[test]
    fn cancel_after_fire_does_not_skew_idle_accounting() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert_eq!(e.pop(), Some(1));
        e.cancel(a);
        assert!(e.is_idle(), "stale cancel must not count as pending work");
        assert_eq!(e.stored - e.live, 0);

        // Double-cancel of a live event counts once; firing clears it.
        let b = e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(b);
        e.cancel(b);
        assert_eq!(e.stored - e.live, 1);
        assert!(e.is_idle());
        assert_eq!(e.pop(), None);
        assert_eq!(e.stored - e.live, 0);

        // A stale handle whose slot was re-used must not cancel the new
        // tenant: generations differ.
        let c = e.schedule_at(SimTime::from_micros(3), 3);
        assert_eq!(e.pop(), Some(3));
        let d = e.schedule_at(SimTime::from_micros(4), 4); // reuses c's slot
        e.cancel(c);
        assert!(!e.is_idle(), "stale cancel must not kill the new event");
        assert_eq!(e.pop(), Some(4));
        let _ = d;
    }

    /// The slab must stay bounded by peak concurrency, not total events:
    /// that is the self-compaction the lazy-cancellation rework promises.
    #[test]
    fn slot_slab_stays_bounded_under_churn() {
        let mut e: Engine<u64> = Engine::new(0);
        for i in 0..10_000u64 {
            let id = e.schedule_at(SimTime::from_micros(i + 1), i);
            if i % 2 == 0 {
                e.cancel(id);
            }
            e.pop();
        }
        assert!(
            e.slots.len() <= 4,
            "slab grew to {} slots under serial churn",
            e.slots.len()
        );
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut e: Engine<()> = Engine::new(0);
        e.schedule_at(SimTime::from_secs_f64(2.5), ());
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs_f64(2.5));
    }

    #[test]
    fn schedule_during_run_works() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_in(SimDuration::from_secs(1), 5);
        let mut count = 0;
        e.run(|eng, n| {
            count += 1;
            if n > 0 {
                eng.schedule_in(SimDuration::from_secs(1), n - 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(e.now().as_secs_f64(), 6.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_secs_f64(1.0), 1);
        e.schedule_at(SimTime::from_secs_f64(5.0), 2);
        let mut got = vec![];
        let n = e.run_until(SimTime::from_secs_f64(2.0), |_, v| got.push(v));
        assert_eq!(n, 1);
        assert_eq!(got, vec![1]);
        assert_eq!(e.now(), SimTime::from_secs_f64(2.0));
        // Remaining event still fires later.
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2]);
    }

    /// Scheduling after `run_until` advanced the clock past the wheel
    /// floor must file correctly relative to the stale floor.
    #[test]
    fn schedule_after_run_until_keeps_order() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_micros(10_000_000), 3);
        e.run_until(SimTime::from_micros(1_234_567), |_, _| {});
        e.schedule_at(SimTime::from_micros(1_234_568), 1);
        e.schedule_at(SimTime::from_micros(2_000_000), 2);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        assert_eq!(e.peek_time(), Some(SimTime::from_micros(2)));
    }

    /// Peeking is now a pure read: cancelled entries stay in the wheel
    /// until `pop` surfaces them, and the O(1) `pending()`/`is_idle`
    /// counters are exact throughout — no hidden compaction required.
    /// (The heap engine drained cancelled prefixes inside `peek_time`;
    /// this pins the replacement contract.)
    #[test]
    fn peek_is_pure_and_pending_counters_are_exact() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        let b = e.schedule_at(SimTime::from_micros(2), 2);
        e.schedule_at(SimTime::from_micros(3), 3);
        e.cancel(a);
        e.cancel(b);
        assert_eq!(e.stored, 3);
        assert_eq!(e.pending(), 1);

        assert_eq!(e.peek_time(), Some(SimTime::from_micros(3)));
        // The peek changed nothing — the cancelled entries are still
        // stored, the counters still exact, the clock untouched.
        assert_eq!(e.stored, 3);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.processed(), 0);
        assert!(!e.is_idle());
        assert_eq!(e.pop(), Some(3));
        assert_eq!(e.pop(), None);
        assert_eq!(e.stored, 0);
        assert_eq!(e.pending(), 0);
    }

    /// `peek` must return the payload of the event `pop` would fire next,
    /// skipping cancelled entries exactly like `peek_time`.
    #[test]
    fn peek_returns_next_payload_without_firing() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        assert_eq!(e.peek(), Some((SimTime::from_micros(2), &2)));
        // Nothing observable changed: the clock holds and pop still fires.
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.processed(), 0);
        assert_eq!(e.pop(), Some(2));
        assert_eq!(e.peek(), None);
    }

    /// A cloned engine must pop the exact same future sequence — times,
    /// payloads and insertion-order tie-breaks — as the original, and the
    /// two must diverge independently afterwards.
    #[test]
    fn cloned_engine_pops_identical_sequence() {
        let mut e: Engine<u32> = Engine::new(7);
        let t = SimTime::from_micros(5);
        for i in 0..8 {
            e.schedule_at(t, i); // all tied: insertion order must survive
        }
        let c = e.schedule_at(SimTime::from_micros(9), 100);
        e.schedule_at(SimTime::from_micros(8), 99);
        e.cancel(c);
        assert_eq!(e.pop(), Some(0));

        let mut fork = e.clone();
        let drain = |eng: &mut Engine<u32>| {
            let mut got = vec![];
            while let Some(v) = eng.pop() {
                got.push((eng.now(), v));
            }
            got
        };
        let a = drain(&mut e);
        let b = drain(&mut fork);
        assert_eq!(a, b);
        assert_eq!(a.last(), Some(&(SimTime::from_micros(8), 99)));
        // Post-fork schedules are independent.
        fork.schedule_at(SimTime::from_micros(20), 42);
        assert_eq!(fork.pop(), Some(42));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn is_idle_accounts_for_cancellations() {
        let mut e: Engine<u32> = Engine::new(0);
        assert!(e.is_idle());
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert!(!e.is_idle());
        e.cancel(a);
        assert!(e.is_idle());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_secs(5), 1);
        e.pop();
        e.schedule_at(SimTime::from_secs(1), 2);
    }

    /// Property test: the wheel against a reference model with the binary
    /// heap's ordering semantics — a sorted `(time, seq)` list. Random
    /// interleavings of schedule / cancel / pop / peek / clone-restore
    /// must produce the identical pop sequence, tie-breaks included, and
    /// identical O(1) pending counts throughout.
    #[test]
    fn wheel_matches_reference_heap_model() {
        for seed in 0..32u64 {
            let mut rng = SimRng::new(0xF1EE_D00D ^ seed);
            let mut e: Engine<u64> = Engine::new(1);
            // Model entry: (at, seq, payload, cancelled), sorted on demand.
            type Model = Vec<(SimTime, u64, u64, bool)>;
            let mut model: Model = Vec::new();
            let mut ids: Vec<(EventId, u64)> = Vec::new(); // (handle, seq)
            let mut next_seq = 0u64;
            let mut snapshot: Option<(Engine<u64>, Model)> = None;

            for step in 0..4_000 {
                match rng.index(100) {
                    // Schedule at a horizon spanning several wheel levels;
                    // small ranges force frequent exact-time ties.
                    0..=49 => {
                        let horizon = match rng.index(4) {
                            0 => 8,
                            1 => 1_000,
                            2 => 1_000_000,
                            _ => 40_000_000_000,
                        };
                        let at = e.now() + SimDuration::from_micros(rng.index(horizon) as u64);
                        let id = e.schedule_at(at, next_seq);
                        model.push((at, next_seq, next_seq, false));
                        ids.push((id, next_seq));
                        next_seq += 1;
                    }
                    50..=59 => {
                        if !ids.is_empty() {
                            let (id, seq) = ids[rng.index(ids.len())];
                            e.cancel(id);
                            if let Some(m) = model.iter_mut().find(|m| m.1 == seq) {
                                m.3 = true;
                            }
                        }
                    }
                    60..=64 => {
                        // Clone both sides; later restore swaps them in.
                        snapshot = Some((e.clone(), model.clone()));
                    }
                    65..=67 => {
                        if let Some((se, sm)) = snapshot.take() {
                            e = se;
                            model = sm;
                            // Handles from the other timeline are stale;
                            // dropping them only loses cancel coverage.
                            ids.clear();
                        }
                    }
                    _ => {
                        model.sort_by_key(|&(at, seq, _, _)| (at, seq));
                        let expect = model.iter().position(|m| !m.3);
                        let peeked = e.peek_time();
                        assert_eq!(
                            peeked,
                            expect.map(|i| model[i].0),
                            "peek mismatch at step {step} (seed {seed})"
                        );
                        let popped = e.pop();
                        match expect {
                            Some(i) => {
                                let (at, _, payload, _) = model[i];
                                assert_eq!(popped, Some(payload), "pop payload (seed {seed})");
                                assert_eq!(e.now(), at, "pop clock (seed {seed})");
                                model.drain(..=i);
                            }
                            None => {
                                assert_eq!(popped, None, "pop on empty (seed {seed})");
                                model.clear();
                            }
                        }
                    }
                }
                let live = model.iter().filter(|m| !m.3).count();
                assert_eq!(
                    e.pending(),
                    live,
                    "pending count at step {step} (seed {seed})"
                );
                assert_eq!(e.is_idle(), live == 0);
            }

            // Drain: the full remaining sequence must match the model's.
            model.sort_by_key(|&(at, seq, _, _)| (at, seq));
            let expected: Vec<u64> = model
                .iter()
                .filter(|m| !m.3)
                .map(|&(_, _, p, _)| p)
                .collect();
            let mut got = Vec::new();
            while let Some(v) = e.pop() {
                got.push(v);
            }
            assert_eq!(got, expected, "drain order (seed {seed})");
        }
    }
}
