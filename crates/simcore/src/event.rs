//! The discrete-event engine: a time-ordered event queue with cancellation.
//!
//! [`Engine`] owns the simulation clock, the pending-event queue and the
//! root RNG. Components schedule payloads of a user-chosen event type `E`;
//! the driver loop pops them in `(time, insertion order)` order:
//!
//! ```
//! use ignem_simcore::{event::Engine, time::SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new(42);
//! engine.schedule_in(SimDuration::from_secs(1), Ev::Ping(7));
//! let mut seen = vec![];
//! while let Some(ev) = engine.pop() {
//!     match ev { Ev::Ping(n) => seen.push(n) }
//! }
//! assert_eq!(seen, vec![7]);
//! assert_eq!(engine.now().as_secs_f64(), 1.0);
//! ```
//!
//! ## Cancellation bookkeeping
//!
//! Cancellation is lazy: the heap entry stays where it is and is dropped
//! when it surfaces. The bookkeeping lives in a generation-stamped slot
//! slab rather than a set of cancelled sequence numbers: every scheduled
//! event borrows a slot (its [`EventId`] packs slot index + generation)
//! that parks the payload — heap entries carry only the `(time, seq)` key
//! and the slot index, so sift copies stay small however large `E` is —
//! and popping — fired or cancelled — returns the slot to a free list and
//! bumps its generation. That makes every operation O(1) amortized,
//! bounds the slab by the maximum number of *concurrently pending*
//! events (it self-compacts via slot reuse instead of growing like the
//! old unbounded `cancelled: BTreeSet` did), and makes cancelling an
//! already-fired or never-scheduled id a structural no-op: its
//! generation no longer matches. Slot indices are handed out
//! deterministically (LIFO free list driven by the event order), so the
//! scheme adds no iteration-order hazards — the heap is still ordered
//! purely by `(time, insertion seq)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A handle to a scheduled event, usable for cancellation.
///
/// Packs the event's slab slot and the slot's generation at scheduling
/// time; a stale handle (the event already fired or was cancelled) simply
/// no longer matches and cancels nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap key: events fire in time order; ties break by insertion order, which
/// gives the deterministic FIFO semantics the protocols rely on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// A heap entry is just the ordering key plus the slab slot holding the
/// payload: a small fixed-size value, so the `O(log n)` sift copies on
/// every push/pop move ~24 bytes instead of the (potentially large) event
/// payload itself.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    key: Key,
    slot: u32,
}

/// One slab slot: which incarnation lives here, whether it has been
/// cancelled while still in the heap, and the parked payload (taken on
/// fire, dropped eagerly on cancel).
#[derive(Clone)]
struct Slot<E> {
    gen: u32,
    pending: bool,
    cancelled: bool,
    payload: Option<E>,
}

/// The discrete-event simulation engine.
///
/// Generic over the event payload type `E` so each simulation defines its own
/// closed event vocabulary (an enum), keeping dispatch exhaustive and
/// allocation-free.
///
/// When `E: Clone` the whole engine is `Clone`: the heap's backing vector,
/// the slot slab (with generation stamps), the free list and the root RNG
/// all copy structurally, so a clone pops the exact same future event
/// sequence — including insertion-order tie-breaks — as the original. This
/// is what makes world snapshots a memcpy-style fork rather than a replay.
#[derive(Clone)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Cancelled entries still sitting in the heap; `is_idle` subtracts
    /// them and lazy removal decrements as they surface.
    cancelled_live: usize,
    rng: SimRng,
    processed: u64,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with a seeded root RNG.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            cancelled_live: 0,
            rng: SimRng::new(seed),
            processed: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Whether any live (uncancelled) events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.len() == self.cancelled_live
    }

    /// Number of live (uncancelled) events still queued.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled_live
    }

    /// The engine's root RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Parks `payload` in a slot for a new event, reusing freed slots.
    fn alloc_slot(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                slot.pending = true;
                slot.cancelled = false;
                slot.payload = Some(payload);
                s
            }
            None => {
                // lint: allow(P02, reason = "capacity guard: 2^32 pending events means a runaway schedule loop")
                let s = u32::try_from(self.slots.len()).expect("more than u32::MAX pending events");
                // lint: allow(Q01, reason = "slot slab reuses freed slots via the free list; growth tracks peak pending events")
                self.slots.push(Slot {
                    gen: 0,
                    pending: true,
                    cancelled: false,
                    payload: Some(payload),
                });
                s
            }
        }
    }

    /// Retires a slot as its heap entry surfaces: bump the generation (so
    /// stale [`EventId`]s miss) and recycle the index.
    fn free_slot(&mut self, s: u32) {
        let slot = &mut self.slots[s as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.pending = false;
        slot.cancelled = false;
        slot.payload = None;
        self.free.push(s);
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let s = self.alloc_slot(payload);
        self.heap.push(Reverse(Entry {
            key: Key { at, seq },
            slot: s,
        }));
        EventId::new(s, self.slots[s as usize].gen)
    }

    /// Schedules `payload` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` to fire immediately (at the current time, after
    /// any already-queued events for this instant).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a scheduled event. Cancelling an already-fired,
    /// already-cancelled or never-scheduled event is a true no-op: the
    /// handle's generation no longer matches any pending slot, so nothing
    /// is recorded and no state leaks.
    pub fn cancel(&mut self, id: EventId) {
        let s = id.slot() as usize;
        match self.slots.get_mut(s) {
            Some(slot) if slot.gen == id.gen() && slot.pending && !slot.cancelled => {
                slot.cancelled = true;
                // Drop the payload now rather than when the dead heap
                // entry eventually surfaces.
                slot.payload = None;
                self.cancelled_live += 1;
            }
            _ => {}
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no (uncancelled) events remain.
    pub fn pop(&mut self) -> Option<E> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.slots[entry.slot as usize].cancelled {
                self.cancelled_live -= 1;
                self.free_slot(entry.slot);
                continue;
            }
            let payload = self.slots[entry.slot as usize]
                .payload
                .take()
                .expect("pending slot without payload");
            self.free_slot(entry.slot);
            debug_assert!(entry.key.at >= self.now, "time went backwards");
            self.now = entry.key.at;
            self.processed += 1;
            return Some(payload);
        }
        None
    }

    /// Peeks at the timestamp of the next event without firing it.
    ///
    /// Takes `&mut self` on purpose: peeking *lazily removes* cancelled
    /// entries it finds at the front of the heap (returning their slots
    /// to the free list), exactly as [`Engine::pop`] would. This keeps
    /// the answer honest — the time returned is always that of an event
    /// that will actually fire — and means a cancel-heavy simulation
    /// compacts during its idle checks instead of carrying dead heap
    /// entries to the end. Observable engine state (clock, processed
    /// count, live events, future pop sequence) is unchanged; the
    /// behavior is pinned by `peek_drains_cancelled_prefix`.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.slots[entry.slot as usize].cancelled {
                let s = entry.slot;
                self.heap.pop();
                self.cancelled_live -= 1;
                self.free_slot(s);
                continue;
            }
            return Some(entry.key.at);
        }
        None
    }

    /// Peeks at the next event — timestamp and a borrow of its payload —
    /// without firing it.
    ///
    /// Same contract as [`Engine::peek_time`]: takes `&mut self` because
    /// cancelled entries at the heap front are lazily removed during the
    /// peek, while everything observable (clock, processed count, the
    /// future pop sequence) is untouched. The driver loop uses this to
    /// decide whether the *next* event is a branch point (e.g. a fault
    /// injection) worth snapshotting before.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.slots[entry.slot as usize].cancelled {
                let s = entry.slot;
                self.heap.pop();
                self.cancelled_live -= 1;
                self.free_slot(s);
                continue;
            }
            let at = entry.key.at;
            let slot = entry.slot as usize;
            let payload = self.slots[slot]
                .payload
                .as_ref()
                .expect("pending slot without payload");
            return Some((at, payload));
        }
        None
    }

    /// Runs the simulation to completion, dispatching each event to
    /// `handler`. The handler may schedule further events.
    ///
    /// ```
    /// use ignem_simcore::{event::Engine, time::SimDuration};
    ///
    /// let mut engine: Engine<u32> = Engine::new(0);
    /// engine.schedule_in(SimDuration::from_secs(1), 3);
    /// let mut total = 0;
    /// engine.run(|eng, n| {
    ///     total += n;
    ///     if n > 1 {
    ///         eng.schedule_in(SimDuration::from_secs(1), n - 1);
    ///     }
    /// });
    /// assert_eq!(total, 3 + 2 + 1);
    /// ```
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, E)) {
        while let Some(ev) = self.pop() {
            handler(self, ev);
        }
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are processed. Returns the number of events handled.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Engine<E>, E),
    ) -> u64 {
        let mut handled = 0;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.pop().expect("peeked event vanished");
            handler(self, ev);
            handled += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_micros(30), 3);
        e.schedule_at(SimTime::from_micros(10), 1);
        e.schedule_at(SimTime::from_micros(20), 2);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut e: Engine<u32> = Engine::new(0);
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            e.schedule_at(t, i);
        }
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        let mut got = vec![];
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert_eq!(e.pop(), Some(1));
        e.cancel(a); // must not panic or corrupt
        assert_eq!(e.pop(), None);
    }

    /// Regression: cancelling a fired (or repeatedly cancelling the same)
    /// event used to park its seq in the cancelled set forever, skewing
    /// `is_idle` and leaking memory. Now it is a structural no-op.
    #[test]
    fn cancel_after_fire_does_not_skew_idle_accounting() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert_eq!(e.pop(), Some(1));
        e.cancel(a);
        assert!(e.is_idle(), "stale cancel must not count as pending work");
        assert_eq!(e.cancelled_live, 0);

        // Double-cancel of a live event counts once; firing clears it.
        let b = e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(b);
        e.cancel(b);
        assert_eq!(e.cancelled_live, 1);
        assert!(e.is_idle());
        assert_eq!(e.pop(), None);
        assert_eq!(e.cancelled_live, 0);

        // A stale handle whose slot was re-used must not cancel the new
        // tenant: generations differ.
        let c = e.schedule_at(SimTime::from_micros(3), 3);
        assert_eq!(e.pop(), Some(3));
        let d = e.schedule_at(SimTime::from_micros(4), 4); // reuses c's slot
        e.cancel(c);
        assert!(!e.is_idle(), "stale cancel must not kill the new event");
        assert_eq!(e.pop(), Some(4));
        let _ = d;
    }

    /// The slab must stay bounded by peak concurrency, not total events:
    /// that is the self-compaction the lazy-cancellation rework promises.
    #[test]
    fn slot_slab_stays_bounded_under_churn() {
        let mut e: Engine<u64> = Engine::new(0);
        for i in 0..10_000u64 {
            let id = e.schedule_at(SimTime::from_micros(i + 1), i);
            if i % 2 == 0 {
                e.cancel(id);
            }
            e.pop();
        }
        assert!(
            e.slots.len() <= 4,
            "slab grew to {} slots under serial churn",
            e.slots.len()
        );
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut e: Engine<()> = Engine::new(0);
        e.schedule_at(SimTime::from_secs_f64(2.5), ());
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs_f64(2.5));
    }

    #[test]
    fn schedule_during_run_works() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_in(SimDuration::from_secs(1), 5);
        let mut count = 0;
        e.run(|eng, n| {
            count += 1;
            if n > 0 {
                eng.schedule_in(SimDuration::from_secs(1), n - 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(e.now().as_secs_f64(), 6.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_secs_f64(1.0), 1);
        e.schedule_at(SimTime::from_secs_f64(5.0), 2);
        let mut got = vec![];
        let n = e.run_until(SimTime::from_secs_f64(2.0), |_, v| got.push(v));
        assert_eq!(n, 1);
        assert_eq!(got, vec![1]);
        assert_eq!(e.now(), SimTime::from_secs_f64(2.0));
        // Remaining event still fires later.
        e.run(|_, v| got.push(v));
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        assert_eq!(e.peek_time(), Some(SimTime::from_micros(2)));
    }

    /// Pins `peek_time`'s hidden mutation: cancelled entries at the heap
    /// front are *removed* during the peek (their slots recycled), while
    /// everything observable — clock, processed count, the events pop
    /// later returns — is untouched.
    #[test]
    fn peek_drains_cancelled_prefix() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        let b = e.schedule_at(SimTime::from_micros(2), 2);
        e.schedule_at(SimTime::from_micros(3), 3);
        e.cancel(a);
        e.cancel(b);
        assert_eq!(e.heap.len(), 3);
        assert_eq!(e.cancelled_live, 2);

        assert_eq!(e.peek_time(), Some(SimTime::from_micros(3)));
        // The two cancelled entries are gone from the heap…
        assert_eq!(e.heap.len(), 1);
        assert_eq!(e.cancelled_live, 0);
        // …but nothing observable changed.
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.processed(), 0);
        assert!(!e.is_idle());
        assert_eq!(e.pop(), Some(3));
        assert_eq!(e.pop(), None);
    }

    /// `peek` must return the payload of the event `pop` would fire next,
    /// draining cancelled prefixes exactly like `peek_time`.
    #[test]
    fn peek_returns_next_payload_without_firing() {
        let mut e: Engine<u32> = Engine::new(0);
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.cancel(a);
        assert_eq!(e.peek(), Some((SimTime::from_micros(2), &2)));
        // Nothing observable changed: the clock holds and pop still fires.
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.processed(), 0);
        assert_eq!(e.pop(), Some(2));
        assert_eq!(e.peek(), None);
    }

    /// A cloned engine must pop the exact same future sequence — times,
    /// payloads and insertion-order tie-breaks — as the original, and the
    /// two must diverge independently afterwards.
    #[test]
    fn cloned_engine_pops_identical_sequence() {
        let mut e: Engine<u32> = Engine::new(7);
        let t = SimTime::from_micros(5);
        for i in 0..8 {
            e.schedule_at(t, i); // all tied: insertion order must survive
        }
        let c = e.schedule_at(SimTime::from_micros(9), 100);
        e.schedule_at(SimTime::from_micros(8), 99);
        e.cancel(c);
        assert_eq!(e.pop(), Some(0));

        let mut fork = e.clone();
        let drain = |eng: &mut Engine<u32>| {
            let mut got = vec![];
            while let Some(v) = eng.pop() {
                got.push((eng.now(), v));
            }
            got
        };
        let a = drain(&mut e);
        let b = drain(&mut fork);
        assert_eq!(a, b);
        assert_eq!(a.last(), Some(&(SimTime::from_micros(8), 99)));
        // Post-fork schedules are independent.
        fork.schedule_at(SimTime::from_micros(20), 42);
        assert_eq!(fork.pop(), Some(42));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn is_idle_accounts_for_cancellations() {
        let mut e: Engine<u32> = Engine::new(0);
        assert!(e.is_idle());
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        assert!(!e.is_idle());
        e.cancel(a);
        assert!(e.is_idle());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule_at(SimTime::from_secs(5), 1);
        e.pop();
        e.schedule_at(SimTime::from_secs(1), 2);
    }
}
