//! Property-based tests for the simulation kernel invariants.

use ignem_simcore::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Every flow added to a resource eventually completes (work
    /// conservation), and total bytes accounted equal total bytes offered.
    #[test]
    fn flow_resource_conserves_work(
        capacity in 1e6f64..1e10,
        degradation in 0.0f64..3.0,
        flows in proptest::collection::vec((1e3f64..1e9, 0u64..2_000_000, 0u64..5_000_000), 1..20)
    ) {
        let mut r = FlowResource::new(capacity, degradation);
        let mut expected: f64 = 0.0;
        let mut completed = Vec::new();
        let mut latest_start = SimTime::ZERO;
        for (i, &(bytes, start_us, seek_us)) in flows.iter().enumerate() {
            let start = SimTime::from_micros(start_us);
            let start = start.max(r.clock());
            latest_start = latest_start.max(start);
            completed.extend(r.add(start, FlowId(i as u64), bytes, SimDuration::from_micros(seek_us)));
            expected += bytes;
        }
        // Drain: repeatedly advance to next_event.
        let mut guard = 0;
        while let Some(t) = r.next_event() {
            completed.extend(r.advance(t));
            guard += 1;
            prop_assert!(guard < 10_000, "flow resource failed to drain");
        }
        prop_assert_eq!(completed.len(), flows.len());
        prop_assert!(r.active() == 0);
        let err = (r.bytes_completed() - expected).abs() / expected.max(1.0);
        prop_assert!(err < 1e-6, "byte accounting off by {}", err);
    }

    /// Sharing never makes a flow finish earlier than its ideal solo time.
    #[test]
    fn sharing_never_beats_solo(
        bytes in 1e6f64..1e9,
        competitors in 1usize..8,
    ) {
        let capacity = 100e6;
        let solo_secs = bytes / capacity;
        let mut r = FlowResource::new(capacity, 0.5);
        r.add(SimTime::ZERO, FlowId(0), bytes, SimDuration::ZERO);
        for i in 0..competitors {
            r.add(SimTime::ZERO, FlowId(1 + i as u64), bytes, SimDuration::ZERO);
        }
        let mut finish_of_zero = None;
        let mut guard = 0;
        while let Some(t) = r.next_event() {
            for id in r.advance(t) {
                if id == FlowId(0) {
                    finish_of_zero = Some(t);
                }
            }
            guard += 1;
            prop_assert!(guard < 1000);
        }
        let finish = finish_of_zero.expect("flow 0 completed").as_secs_f64();
        // Allow integer-microsecond rounding slack.
        prop_assert!(finish + 1e-5 >= solo_secs, "finish={} solo={}", finish, solo_secs);
    }

    /// The engine delivers every scheduled, uncancelled event exactly once,
    /// in nondecreasing time order.
    #[test]
    fn engine_delivers_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut e: Engine<usize> = Engine::new(0);
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; times.len()];
        while let Some(i) = e.pop() {
            prop_assert!(e.now() >= last);
            last = e.now();
            prop_assert!(!seen[i], "event {} delivered twice", i);
            seen[i] = true;
            prop_assert_eq!(e.now(), SimTime::from_micros(times[i]));
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Percentile is monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s: Samples = values.iter().copied().collect();
        let lo = s.percentile(0.0);
        let hi = s.percentile(100.0);
        let mut prev = lo;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = s.percentile(p);
            prop_assert!(v + 1e-9 >= prev);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }

    /// Time-weighted average always lies within [min, max] of values held.
    #[test]
    fn time_weighted_average_is_bounded(
        updates in proptest::collection::vec((1u64..1_000_000u64, 0.0f64..100.0), 1..50)
    ) {
        let mut tw = TimeWeighted::new(0.0, false);
        let mut t = SimTime::ZERO;
        let mut lo: f64 = 0.0;
        let mut hi: f64 = 0.0;
        for &(dt, v) in &updates {
            t += SimDuration::from_micros(dt);
            tw.set(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let avg = tw.average(t);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg={} not in [{}, {}]", avg, lo, hi);
    }

    /// Histogram never loses samples.
    #[test]
    fn histogram_counts_everything(values in proptest::collection::vec(-100.0f64..1000.0, 0..500)) {
        let mut h = Histogram::uniform(0.0, 100.0, 13);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}
