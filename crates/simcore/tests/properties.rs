//! Randomized (but fully deterministic) tests for the simulation kernel
//! invariants. Cases are generated from a seeded [`SimRng`] so the suite
//! needs no external property-testing crate and reproduces bit-identically
//! on every run — a hard requirement for an offline build.

use ignem_simcore::prelude::*;
use ignem_simcore::rng::SimRng;

const CASES: u64 = 64;

/// Every flow added to a resource eventually completes (work conservation),
/// and total bytes accounted equal total bytes offered.
#[test]
fn flow_resource_conserves_work() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x5EED_0001 ^ seed);
        let capacity = rng.uniform_range(1e6, 1e10);
        let degradation = rng.uniform_range(0.0, 3.0);
        let n = 1 + rng.index(19);
        let flows: Vec<(f64, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.uniform_range(1e3, 1e9),
                    rng.next_u64() % 2_000_000,
                    rng.next_u64() % 5_000_000,
                )
            })
            .collect();

        let mut r = FlowResource::new(capacity, degradation);
        let mut expected: f64 = 0.0;
        let mut completed = Vec::new();
        for (i, &(bytes, start_us, seek_us)) in flows.iter().enumerate() {
            let start = SimTime::from_micros(start_us).max(r.clock());
            completed.extend(r.add(
                start,
                FlowId(i as u64),
                bytes,
                SimDuration::from_micros(seek_us),
            ));
            expected += bytes;
        }
        let mut guard = 0;
        while let Some(t) = r.next_event() {
            completed.extend(r.advance(t));
            guard += 1;
            assert!(guard < 10_000, "seed {seed}: flow resource failed to drain");
        }
        assert_eq!(completed.len(), flows.len(), "seed {seed}");
        assert_eq!(r.active(), 0, "seed {seed}");
        let err = (r.bytes_completed() - expected).abs() / expected.max(1.0);
        assert!(err < 1e-6, "seed {seed}: byte accounting off by {err}");
    }
}

/// Sharing never makes a flow finish earlier than its ideal solo time.
#[test]
fn sharing_never_beats_solo() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x5EED_0002 ^ seed);
        let bytes = rng.uniform_range(1e6, 1e9);
        let competitors = 1 + rng.index(7);

        let capacity = 100e6;
        let solo_secs = bytes / capacity;
        let mut r = FlowResource::new(capacity, 0.5);
        r.add(SimTime::ZERO, FlowId(0), bytes, SimDuration::ZERO);
        for i in 0..competitors {
            r.add(
                SimTime::ZERO,
                FlowId(1 + i as u64),
                bytes,
                SimDuration::ZERO,
            );
        }
        let mut finish_of_zero = None;
        let mut guard = 0;
        while let Some(t) = r.next_event() {
            for id in r.advance(t) {
                if id == FlowId(0) {
                    finish_of_zero = Some(t);
                }
            }
            guard += 1;
            assert!(guard < 1000, "seed {seed}");
        }
        let finish = finish_of_zero.expect("flow 0 completed").as_secs_f64();
        // Allow integer-microsecond rounding slack.
        assert!(
            finish + 1e-5 >= solo_secs,
            "seed {seed}: finish={finish} solo={solo_secs}"
        );
    }
}

/// The engine delivers every scheduled, uncancelled event exactly once, in
/// nondecreasing time order.
#[test]
fn engine_delivers_in_order() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x5EED_0003 ^ seed);
        let n = 1 + rng.index(199);
        let times: Vec<u64> = (0..n).map(|_| rng.next_u64() % 1_000_000).collect();

        let mut e: Engine<usize> = Engine::new(0);
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; times.len()];
        while let Some(i) = e.pop() {
            assert!(e.now() >= last, "seed {seed}");
            last = e.now();
            assert!(!seen[i], "seed {seed}: event {i} delivered twice");
            seen[i] = true;
            assert_eq!(e.now(), SimTime::from_micros(times[i]), "seed {seed}");
        }
        assert!(seen.iter().all(|&s| s), "seed {seed}");
    }
}

/// Percentile is monotone in p and bounded by min/max.
#[test]
fn percentiles_are_monotone() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x5EED_0004 ^ seed);
        let n = 1 + rng.index(99);
        let values: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1e6, 1e6)).collect();

        let mut s: Samples = values.iter().copied().collect();
        let lo = s.percentile(0.0);
        let hi = s.percentile(100.0);
        let mut prev = lo;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = s.percentile(p);
            assert!(v + 1e-9 >= prev, "seed {seed}");
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "seed {seed}");
            prev = v;
        }
    }
}

/// Time-weighted average always lies within [min, max] of values held.
#[test]
fn time_weighted_average_is_bounded() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x5EED_0005 ^ seed);
        let n = 1 + rng.index(49);
        let mut tw = TimeWeighted::new(0.0, false);
        let mut t = SimTime::ZERO;
        let mut lo: f64 = 0.0;
        let mut hi: f64 = 0.0;
        for _ in 0..n {
            let dt = 1 + rng.next_u64() % 999_999;
            let v = rng.uniform_range(0.0, 100.0);
            t += SimDuration::from_micros(dt);
            tw.set(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let avg = tw.average(t);
        assert!(
            avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "seed {seed}: avg={avg} not in [{lo}, {hi}]"
        );
    }
}

/// Histogram never loses samples.
#[test]
fn histogram_counts_everything() {
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x5EED_0006 ^ seed);
        let n = rng.index(500);
        let mut h = Histogram::uniform(0.0, 100.0, 13);
        for _ in 0..n {
            h.record(rng.uniform_range(-100.0, 1000.0));
        }
        assert_eq!(h.count(), n as u64, "seed {seed}");
    }
}
