//! A simulated storage device carrying concurrent IO requests.
//!
//! [`Disk`] layers request bookkeeping on top of
//! [`FlowResource`] — adding:
//!
//! * per-request identity, kind ([`IoKind`]) and timing;
//! * seek latency from the device profile, charged per request;
//! * a write-back buffer: [`Disk::buffered_write`] returns immediately
//!   (the OS page cache absorbs job output, as the paper notes) while a
//!   single background flush request drains dirty bytes to the medium,
//!   contending with foreground reads exactly like real writeback.
//!
//! Like every substrate, `Disk` is engine-agnostic: callers drive it with
//! [`Disk::advance`] / [`Disk::next_event`].

use ignem_simcore::flow::{FlowId, FlowResource};
use ignem_simcore::idmap::{DenseId, IdMap};
use ignem_simcore::metrics::MetricsRegistry;
use ignem_simcore::time::{SimDuration, SimTime};

use crate::device::DeviceProfile;

/// Identifies an IO request on one disk. Caller-assigned; must be unique
/// among in-flight requests on the same disk and below `1 << 62` (higher
/// values are reserved for internal flush requests). Ids of concurrently
/// in-flight requests should be numerically close (a monotone counter is
/// ideal): request lookup uses a dense sliding-window [`IdMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl DenseId for RequestId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        RequestId(index as u64)
    }
}

/// Why an IO request was issued. Lets metrics distinguish foreground reads
/// from Ignem migration reads and background flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// A foreground read by a task.
    Read,
    /// A background migration read issued by an Ignem slave.
    Migration,
    /// Writeback flush of buffered writes.
    Flush,
}

/// A finished IO request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request's id.
    pub id: RequestId,
    /// What kind of request it was.
    pub kind: IoKind,
    /// When it was submitted.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Its size in bytes.
    pub bytes: u64,
}

impl Completion {
    /// End-to-end duration of the request.
    pub fn duration(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// The caller-visible id (or the reserved flush id for internal flushes).
    id: RequestId,
    kind: IoKind,
    started: SimTime,
    bytes: u64,
}

const FLUSH_ID_BASE: u64 = 1 << 62;
/// Writeback drains in chunks so a huge dirty backlog still shares the disk
/// fairly over time (matches kernel writeback behaviour closely enough).
const FLUSH_CHUNK: u64 = 256 * 1024 * 1024;

/// One simulated storage device (see module docs).
///
/// ```
/// use ignem_storage::{device::DeviceProfile, disk::{Disk, IoKind, RequestId}};
/// use ignem_simcore::time::SimTime;
///
/// let mut disk = Disk::new(DeviceProfile::hdd());
/// disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 64_000_000);
/// let mut done = vec![];
/// while let Some(t) = disk.next_event() {
///     done.extend(disk.advance(t));
/// }
/// assert_eq!(done[0].id, RequestId(1));
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    profile: DeviceProfile,
    resource: FlowResource,
    /// In-flight requests keyed by their *internal* flow id. The disk
    /// renumbers every request (including flushes) through `next_flow`, so
    /// the underlying dense flow table only ever sees a tight monotone id
    /// window even though flush request ids live up at `1 << 62`.
    inflight: IdMap<FlowId, Inflight>,
    /// Foreground (caller-visible) request id -> internal flow id, for
    /// cancellation and duplicate detection. Flushes are internal and never
    /// appear here.
    foreground: IdMap<RequestId, FlowId>,
    next_flow: u64,
    dirty: u64,
    flush_active: Option<(RequestId, u64)>,
    next_flush_id: u64,
    bytes_read: u64,
    bytes_written: u64,
    /// Sim-time metrics (disabled by default); `metrics_tag` distinguishes
    /// devices sharing one registry (e.g. the node index).
    metrics: MetricsRegistry,
    metrics_tag: u64,
}

impl Disk {
    /// Creates a disk with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        profile.validate();
        Disk {
            profile,
            resource: FlowResource::new(profile.bandwidth, profile.degradation),
            inflight: IdMap::new(),
            foreground: IdMap::new(),
            next_flow: 0,
            dirty: 0,
            flush_active: None,
            next_flush_id: FLUSH_ID_BASE,
            bytes_read: 0,
            bytes_written: 0,
            metrics: MetricsRegistry::default(),
            metrics_tag: 0,
        }
    }

    /// Installs a sim-time metrics handle; the disk then histograms the
    /// service time of every reported completion under `"disk_io_us"` with
    /// the given tag (callers use the node index).
    pub fn set_metrics(&mut self, metrics: MetricsRegistry, tag: u64) {
        self.metrics = metrics;
        self.metrics_tag = tag;
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of in-flight requests (including any active flush).
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Dirty (buffered, not yet flushed) bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty
    }

    /// Total bytes delivered by completed read/migration requests.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes accepted by `buffered_write`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Fraction of time the device has been busy since the start.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed == 0.0 {
            0.0
        } else {
            self.resource.busy_time().as_secs_f64() / elapsed
        }
    }

    /// Sets the device's speed to `factor` × the profile bandwidth (a gray
    /// fault: a degraded disk still serves IO, just slowly; `1.0` restores
    /// nominal speed). Advances to `now` first so work already done is
    /// accounted at the old rate, and returns any completions that produces.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive or `now` precedes the
    /// device clock.
    pub fn set_speed_factor(&mut self, now: SimTime, factor: f64) -> Vec<Completion> {
        assert!(factor.is_finite() && factor > 0.0, "bad speed factor");
        let done = self.advance(now);
        self.resource.set_capacity(self.profile.bandwidth * factor);
        done
    }

    /// Submits a read or migration request of `bytes`.
    /// Returns any requests that completed while advancing to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `id` collides with an in-flight request, is in the reserved
    /// flush range, `bytes` is zero, or `kind` is [`IoKind::Flush`].
    pub fn submit(
        &mut self,
        now: SimTime,
        id: RequestId,
        kind: IoKind,
        bytes: u64,
    ) -> Vec<Completion> {
        assert!(bytes > 0, "zero-byte request");
        assert!(id.0 < FLUSH_ID_BASE, "request id in reserved flush range");
        assert!(kind != IoKind::Flush, "flush requests are internal");
        assert!(
            !self.foreground.contains_key(&id),
            "duplicate request id {id:?}"
        );
        // Migration reads page in via mmap/mlock and run slower than
        // sequential reads; model as extra fluid volume.
        let volume = if kind == IoKind::Migration {
            bytes as f64 * self.profile.migration_slowdown
        } else {
            bytes as f64
        };
        let flow = self.alloc_flow();
        let flows = self.resource.add(now, flow, volume, self.profile.seek);
        let done = self.collect(flows);
        self.inflight.insert(
            flow,
            Inflight {
                id,
                kind,
                started: now,
                bytes,
            },
        );
        self.foreground.insert(id, flow);
        done
    }

    /// Hands out the next internal flow id. Requests are renumbered so the
    /// dense flow table and request map stay on a tight monotone window.
    fn alloc_flow(&mut self) -> FlowId {
        let f = FlowId(self.next_flow);
        self.next_flow += 1;
        f
    }

    /// Buffers `bytes` of writes (returns instantly — page-cache absorb) and
    /// ensures a background flush is draining. Returns any completions
    /// produced while advancing to `now`.
    pub fn buffered_write(&mut self, now: SimTime, bytes: u64) -> Vec<Completion> {
        self.dirty += bytes;
        self.bytes_written += bytes;
        let done = self.advance(now);
        // advance() may already have started a flush; make sure.
        let mut more = self.maybe_start_flush(now);
        more.extend(done);
        more
    }

    /// Cancels an in-flight request (no completion will be reported for it).
    /// Unknown ids are ignored. Returns completions produced while advancing.
    pub fn cancel(&mut self, now: SimTime, id: RequestId) -> Vec<Completion> {
        let flows = match self.foreground.get(&id).copied() {
            Some(flow) => self.resource.cancel(now, flow),
            // Unknown id: still advance to `now`, matching cancel semantics.
            None => self.resource.advance(now),
        };
        let done = self.collect(flows);
        // If the request completed during the advance, `collect` already
        // dropped it; otherwise retire it now without a completion.
        if let Some(flow) = self.foreground.remove(&id) {
            self.inflight.remove(&flow);
        }
        done
    }

    /// The next instant at which some request will finish (or seek ends),
    /// or `None` if the disk is idle.
    pub fn next_event(&self) -> Option<SimTime> {
        self.resource.next_event()
    }

    /// Advances device time to `now`, returning finished requests in
    /// completion order. Flush completions are handled internally (the next
    /// chunk is started) and **not** reported.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let flows = self.resource.advance(now);
        let mut done = self.collect(flows);
        done.extend(self.maybe_start_flush(now));
        done
    }

    fn maybe_start_flush(&mut self, now: SimTime) -> Vec<Completion> {
        if self.flush_active.is_some() || self.dirty == 0 {
            return Vec::new();
        }
        let chunk = self.dirty.min(FLUSH_CHUNK);
        let id = RequestId(self.next_flush_id);
        self.next_flush_id += 1;
        self.flush_active = Some((id, chunk));
        let flow = self.alloc_flow();
        let flows = self
            .resource
            .add(now, flow, chunk as f64, self.profile.seek);
        let done = self.collect(flows);
        self.inflight.insert(
            flow,
            Inflight {
                id,
                kind: IoKind::Flush,
                started: now,
                bytes: chunk,
            },
        );
        done
    }

    /// Maps completed flow ids to reported completions; consumes flush
    /// completions internally.
    fn collect(&mut self, flows: Vec<FlowId>) -> Vec<Completion> {
        let mut out = Vec::new();
        for fid in flows {
            let info = self
                .inflight
                .remove(&fid)
                .expect("completion for unknown request");
            let finished = self.resource.clock();
            match info.kind {
                IoKind::Flush => {
                    self.dirty -= info.bytes;
                    self.flush_active = None;
                    // Chain the next chunk at the completion instant.
                    let more = self.maybe_start_flush(finished);
                    out.extend(more);
                }
                IoKind::Read | IoKind::Migration => {
                    self.foreground.remove(&info.id);
                    self.bytes_read += info.bytes;
                    self.metrics.observe(
                        "disk_io_us",
                        self.metrics_tag,
                        finished.saturating_duration_since(info.started).as_micros(),
                    );
                    out.push(Completion {
                        id: info.id,
                        kind: info.kind,
                        started: info.started,
                        finished,
                        bytes: info.bytes,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::units::{MB, MIB};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn drain(disk: &mut Disk) -> Vec<Completion> {
        let mut all = Vec::new();
        let mut guard = 0;
        while let Some(next) = disk.next_event() {
            all.extend(disk.advance(next));
            guard += 1;
            assert!(guard < 10_000, "disk failed to drain");
        }
        all
    }

    #[test]
    fn solo_read_matches_profile() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 64 * MIB);
        let done = drain(&mut disk);
        assert_eq!(done.len(), 1);
        let expect = DeviceProfile::hdd().solo_time(64 * MIB).as_secs_f64();
        let got = done[0].duration().as_secs_f64();
        assert!((got - expect).abs() < 1e-3, "got {got}, expect {expect}");
    }

    #[test]
    fn concurrent_reads_degrade_hdd() {
        let profile = DeviceProfile::hdd();
        let solo = profile.solo_time(64 * MIB).as_secs_f64();
        let mut disk = Disk::new(profile);
        for i in 0..4 {
            disk.submit(SimTime::ZERO, RequestId(i), IoKind::Read, 64 * MIB);
        }
        let done = drain(&mut disk);
        assert_eq!(done.len(), 4);
        let mean = done.iter().map(|c| c.duration().as_secs_f64()).sum::<f64>() / done.len() as f64;
        // 4 concurrent requests with d=0.6: much worse than 4x fair share.
        assert!(
            mean > 4.0 * solo,
            "mean {mean} should exceed 4x solo {solo}"
        );
    }

    #[test]
    fn ram_reads_do_not_degrade() {
        let profile = DeviceProfile::ram();
        let mut disk = Disk::new(profile);
        for i in 0..8 {
            disk.submit(SimTime::ZERO, RequestId(i), IoKind::Read, 64 * MIB);
        }
        let done = drain(&mut disk);
        // Perfect sharing: all finish together at 8x the solo time.
        let solo = profile.solo_time(64 * MIB).as_secs_f64();
        for c in &done {
            assert!((c.duration().as_secs_f64() - 8.0 * solo).abs() < 1e-3);
        }
    }

    #[test]
    fn buffered_writes_return_instantly_but_flush_contends() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.buffered_write(SimTime::ZERO, 512 * MB);
        assert_eq!(disk.dirty_bytes(), 512 * MB);
        assert!(disk.in_flight() >= 1, "flush should be active");
        // A read now shares the disk with the flush.
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 64 * MIB);
        let done = drain(&mut disk);
        assert_eq!(done.len(), 1); // flush completions are internal
        let solo = DeviceProfile::hdd().solo_time(64 * MIB).as_secs_f64();
        assert!(done[0].duration().as_secs_f64() > 1.5 * solo);
        assert_eq!(disk.dirty_bytes(), 0);
    }

    #[test]
    fn flush_drains_in_chunks() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.buffered_write(SimTime::ZERO, 1024 * MB);
        drain(&mut disk);
        assert_eq!(disk.dirty_bytes(), 0);
        assert_eq!(disk.in_flight(), 0);
        assert_eq!(disk.bytes_written(), 1024 * MB);
    }

    #[test]
    fn cancel_removes_request() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 64 * MIB);
        disk.submit(SimTime::ZERO, RequestId(2), IoKind::Read, 64 * MIB);
        disk.cancel(t(0.1), RequestId(2));
        let done = drain(&mut disk);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, RequestId(1));
    }

    #[test]
    fn migration_kind_is_reported() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(9), IoKind::Migration, 64 * MIB);
        let done = drain(&mut disk);
        assert_eq!(done[0].kind, IoKind::Migration);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 140 * MB);
        drain(&mut disk);
        // ~1.008 s busy; at t=2 s utilization ~50%.
        disk.advance(t(2.0));
        let u = disk.utilization(t(2.0));
        assert!((u - 0.504).abs() < 0.01, "utilization {u}");
    }

    #[test]
    fn bytes_read_accumulates() {
        let mut disk = Disk::new(DeviceProfile::ssd());
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 10 * MB);
        disk.submit(SimTime::ZERO, RequestId(2), IoKind::Read, 20 * MB);
        drain(&mut disk);
        assert_eq!(disk.bytes_read(), 30 * MB);
    }

    #[test]
    fn speed_factor_slows_then_restores() {
        let profile = DeviceProfile::hdd();
        let solo = profile.solo_time(128 * MIB).as_secs_f64();
        // Degrade to 25% for the whole request: ~4x slower (seek unchanged).
        let mut disk = Disk::new(profile);
        disk.set_speed_factor(SimTime::ZERO, 0.25);
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 128 * MIB);
        let done = drain(&mut disk);
        assert!(done[0].duration().as_secs_f64() > 3.0 * solo);
        // Restore and verify the next request runs at nominal speed.
        let now = disk.resource.clock();
        disk.set_speed_factor(now, 1.0);
        disk.submit(now, RequestId(2), IoKind::Read, 128 * MIB);
        let done = drain(&mut disk);
        assert!((done[0].duration().as_secs_f64() - solo).abs() < 1e-3);
    }

    #[test]
    fn speed_change_mid_request_splits_the_rate() {
        // 100 MB at 100 MB/s (ram profile is too fast; build a custom one).
        let profile = DeviceProfile {
            bandwidth: 100.0 * MB as f64,
            seek: SimDuration::ZERO,
            ..DeviceProfile::ssd()
        };
        let mut disk = Disk::new(profile);
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, 100 * MB);
        // Half done at 0.5 s, then halve the speed: remaining 50 MB at
        // 50 MB/s takes 1 s more -> finish at 1.5 s.
        disk.set_speed_factor(t(0.5), 0.5);
        let done = drain(&mut disk);
        assert!((done[0].finished.as_secs_f64() - 1.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn duplicate_request_rejected() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, MB);
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, MB);
    }

    #[test]
    #[should_panic(expected = "reserved flush range")]
    fn reserved_id_rejected() {
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(1 << 62), IoKind::Read, MB);
    }
}
