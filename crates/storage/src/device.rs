//! Storage device profiles.
//!
//! A [`DeviceProfile`] captures the three parameters the fluid-flow model
//! needs: sequential bandwidth, positioning (seek) latency, and the
//! concurrency-degradation factor. The built-in profiles are calibrated so
//! that 64 MB HDFS block reads reproduce the ratios the paper measures in
//! Fig. 1: **RAM ≈ 160× faster than HDD under concurrent mappers, ≈ 7×
//! faster than SSD**.

use ignem_simcore::time::SimDuration;

/// The class of a storage medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Spinning disk: high seek cost, throughput collapses under concurrency.
    Hdd,
    /// Flash: negligible seek, mild degradation under concurrency.
    Ssd,
    /// Memory (the migration target / buffer cache).
    Ram,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Hdd => write!(f, "HDD"),
            DeviceKind::Ssd => write!(f, "SSD"),
            DeviceKind::Ram => write!(f, "RAM"),
        }
    }
}

/// Performance parameters of one storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Medium class.
    pub kind: DeviceKind,
    /// Sequential bandwidth at concurrency 1, bytes/s.
    pub bandwidth: f64,
    /// Positioning latency charged at the start of each request.
    pub seek: SimDuration,
    /// Concurrency degradation `d`: with `n` active requests the device
    /// delivers `bandwidth / (1 + d·(n−1))` in total.
    pub degradation: f64,
    /// Slowdown factor applied to migration reads. Ignem's slaves page data
    /// in via `mmap`+`mlock` (paper §III-B1): the page-fault-driven read
    /// chain defeats deep readahead, so migration streams run slower than
    /// `read()`-style sequential IO. 1.0 = no penalty.
    pub migration_slowdown: f64,
}

impl DeviceProfile {
    /// The paper's 1 TB 7200 RPM data-centre HDD: ~140 MB/s sequential,
    /// ~8 ms average positioning. Degradation is mild: concurrent 64 MB
    /// streams keep most of the aggregate bandwidth thanks to OS
    /// readahead, but a dozen mappers still leave each stream ~15x slower
    /// than a solo read — the contention Fig. 1 measures and the reason
    /// Ignem migrates one block at a time.
    pub fn hdd() -> Self {
        DeviceProfile {
            kind: DeviceKind::Hdd,
            bandwidth: 140e6,
            seek: SimDuration::from_millis(8),
            degradation: 0.03,
            migration_slowdown: 1.5,
        }
    }

    /// The same spindle in its **seek-thrashing regime**: when concurrent
    /// streams defeat readahead (small readahead windows, interleaved
    /// spills), aggregate throughput collapses with concurrency. Real disks
    /// are nonlinear — [`DeviceProfile::hdd`] models the streaming-friendly
    /// operating point the SWIM workload sees, while this profile models
    /// the collapse regime that produces the paper's Fig. 8 observation
    /// that a job can be *sped up by adding delay* (migration's single
    /// sequential stream reads far more efficiently than a dozen
    /// concurrent mappers).
    pub fn hdd_contended() -> Self {
        DeviceProfile {
            kind: DeviceKind::Hdd,
            bandwidth: 140e6,
            seek: SimDuration::from_millis(8),
            degradation: 0.5,
            migration_slowdown: 4.0,
        }
    }

    /// A datacentre flash drive (~1.6 GB/s reads), negligible seek, mild
    /// degradation. Calibrated so contended 64 MB block reads land ~7×
    /// slower than RAM, as Fig. 1 measures.
    pub fn ssd() -> Self {
        DeviceProfile {
            kind: DeviceKind::Ssd,
            bandwidth: 1.6e9,
            seek: SimDuration::from_micros(60),
            degradation: 0.05,
            migration_slowdown: 1.5,
        }
    }

    /// Memory served through the HDFS short-circuit/mmap path (~8 GB/s
    /// effective through the read pipeline).
    pub fn ram() -> Self {
        DeviceProfile {
            kind: DeviceKind::Ram,
            bandwidth: 8e9,
            seek: SimDuration::ZERO,
            degradation: 0.0,
            migration_slowdown: 1.0,
        }
    }

    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not strictly positive or degradation negative.
    pub fn validate(&self) {
        assert!(
            self.bandwidth.is_finite() && self.bandwidth > 0.0,
            "bad bandwidth"
        );
        assert!(
            self.degradation.is_finite() && self.degradation >= 0.0,
            "bad degradation"
        );
        assert!(
            self.migration_slowdown.is_finite() && self.migration_slowdown >= 1.0,
            "bad migration slowdown"
        );
    }

    /// Time for a single request of `bytes` with no competing requests.
    pub fn solo_time(&self, bytes: u64) -> SimDuration {
        self.seek + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::units::MIB;

    #[test]
    fn profiles_validate() {
        DeviceProfile::hdd().validate();
        DeviceProfile::ssd().validate();
        DeviceProfile::ram().validate();
    }

    #[test]
    fn solo_times_are_ordered() {
        let block = 64 * MIB;
        let hdd = DeviceProfile::hdd().solo_time(block);
        let ssd = DeviceProfile::ssd().solo_time(block);
        let ram = DeviceProfile::ram().solo_time(block);
        assert!(ram < ssd && ssd < hdd);
    }

    #[test]
    fn ram_vs_ssd_solo_ratio_matches_paper_band() {
        // Fig. 1: RAM block reads ~7x faster than SSD (SSD barely degrades
        // under concurrency, so the solo ratio must already be near 7x).
        let block = 64 * MIB;
        let ssd = DeviceProfile::ssd().solo_time(block).as_secs_f64();
        let ram = DeviceProfile::ram().solo_time(block).as_secs_f64();
        let ratio = ssd / ram;
        assert!((4.0..12.0).contains(&ratio), "RAM/SSD ratio {ratio}");
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceKind::Hdd.to_string(), "HDD");
        assert_eq!(DeviceKind::Ram.to_string(), "RAM");
    }
}
