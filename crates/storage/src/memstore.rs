//! The per-node memory block store.
//!
//! [`MemStore`] models the RAM that holds upward-migrated blocks (Ignem's
//! migration buffer) and explicitly pinned blocks (the paper's vmtouch-based
//! *HDFS-Inputs-in-RAM* configuration). It enforces a capacity limit,
//! distinguishes pinned from migrated blocks, and tracks occupancy over time
//! for the paper's Fig. 7 memory-footprint analysis.
//!
//! It is generic over the block key so the DFS layer can use its own
//! `BlockId` without a dependency cycle.

use std::collections::BTreeMap;

use ignem_simcore::stats::TimeWeighted;
use ignem_simcore::time::{SimDuration, SimTime};

/// Why a block resides in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Placed by Ignem migration; subject to reference-list eviction.
    Migrated,
    /// Pinned by the operator (vmtouch); never evicted by Ignem.
    Pinned,
    /// Retained by the page cache after a read (PACMan-style hot-data
    /// caching); evicted LRU under memory pressure. Never helps truly
    /// singly-read data — the gap Ignem fills.
    Cached,
}

/// Error returned when an insert would exceed the store's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub available: u64,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory store full: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

/// A capacity-limited in-memory block store (see module docs).
///
/// ```
/// use ignem_storage::memstore::{MemStore, Residency};
/// use ignem_simcore::time::SimTime;
///
/// let mut m: MemStore<u64> = MemStore::new(128_000_000);
/// m.insert(SimTime::ZERO, 7, 64_000_000, Residency::Migrated).unwrap();
/// assert!(m.contains(&7));
/// assert_eq!(m.used(), 64_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct MemStore<K: Ord + Copy> {
    capacity: u64,
    blocks: BTreeMap<K, (u64, Residency)>,
    used: u64,
    migrated_used: u64,
    /// LRU bookkeeping for `Cached` entries: key → last-access sequence.
    cache_seq: BTreeMap<K, u64>,
    next_seq: u64,
    occupancy: TimeWeighted,
    /// Bumped by every mutating call; lets per-event validators skip
    /// stores that provably did not change since their last audit.
    version: u64,
}

impl<K: Ord + Copy> MemStore<K> {
    /// Creates a store with `capacity` bytes, recording occupancy history.
    pub fn new(capacity: u64) -> Self {
        MemStore {
            capacity,
            blocks: BTreeMap::new(),
            used: 0,
            migrated_used: 0,
            cache_seq: BTreeMap::new(),
            next_seq: 0,
            occupancy: TimeWeighted::new(0.0, true),
            version: 0,
        }
    }

    /// Monotone mutation counter: advances on every state-changing call
    /// ([`insert`](Self::insert), [`remove`](Self::remove),
    /// [`insert_cached`](Self::insert_cached), [`touch`](Self::touch)). Two
    /// equal readings guarantee the store was not mutated in between, so
    /// an invariant checker may reuse its previous verdict.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident (pinned + migrated).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently resident due to migration only.
    pub fn migrated_used(&self) -> u64 {
        self.migrated_used
    }

    /// Bytes free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &K) -> bool {
        self.blocks.contains_key(key)
    }

    /// The residency of `key`, if resident.
    pub fn residency(&self, key: &K) -> Option<Residency> {
        self.blocks.get(key).map(|&(_, r)| r)
    }

    /// The size of `key` in bytes, if resident.
    pub fn size_of(&self, key: &K) -> Option<u64> {
        self.blocks.get(key).map(|&(b, _)| b)
    }

    /// Keys of all resident blocks with the given residency, in key order.
    /// Lets invariant checkers audit the store contents against external
    /// bookkeeping (e.g. the Ignem slave's reference lists).
    pub fn keys_with(&self, residency: Residency) -> Vec<K> {
        self.blocks
            .iter()
            .filter(|(_, (_, r))| *r == residency)
            .map(|(k, _)| *k)
            .collect()
    }

    /// `(block count, total bytes)` of resident blocks with the given
    /// residency — a single pass, for state dumps that would otherwise
    /// materialize the key list per class.
    pub fn residency_summary(&self, residency: Residency) -> (usize, u64) {
        self.blocks
            .values()
            .filter(|(_, r)| *r == residency)
            .fold((0, 0), |(n, bytes), (b, _)| (n + 1, bytes + b))
    }

    /// Inserts a block.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the block does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already resident (promote/demote by removing first).
    pub fn insert(
        &mut self,
        now: SimTime,
        key: K,
        bytes: u64,
        residency: Residency,
    ) -> Result<(), CapacityError> {
        assert!(!self.blocks.contains_key(&key), "block already resident");
        self.version += 1;
        if bytes > self.available() {
            return Err(CapacityError {
                requested: bytes,
                available: self.available(),
            });
        }
        self.blocks.insert(key, (bytes, residency));
        self.used += bytes;
        if residency == Residency::Migrated {
            self.migrated_used += bytes;
            self.occupancy.set(now, self.migrated_used as f64);
        }
        Ok(())
    }

    /// Removes (evicts) a block, returning its size if it was resident.
    pub fn remove(&mut self, now: SimTime, key: &K) -> Option<u64> {
        self.version += 1;
        let (bytes, residency) = self.blocks.remove(key)?;
        self.used -= bytes;
        self.cache_seq.remove(key);
        if residency == Residency::Migrated {
            self.migrated_used -= bytes;
            self.occupancy.set(now, self.migrated_used as f64);
        }
        Some(bytes)
    }

    /// Inserts a block as page-cache-retained ([`Residency::Cached`]),
    /// evicting least-recently-used cached blocks to make room. Pinned and
    /// migrated blocks are never evicted (the do-not-harm rule). If the
    /// block is already resident, its recency is refreshed instead. Returns
    /// whether the block is resident afterwards.
    pub fn insert_cached(&mut self, now: SimTime, key: K, bytes: u64) -> bool {
        self.version += 1;
        if self.blocks.contains_key(&key) {
            self.touch(&key);
            return true;
        }
        while bytes > self.available() {
            // Evict the least recently used cached entry, if any.
            let Some((&victim, _)) = self.cache_seq.iter().min_by_key(|(_, &s)| s) else {
                return false; // nothing evictable; cache insert is best-effort
            };
            self.remove(now, &victim);
        }
        self.blocks.insert(key, (bytes, Residency::Cached));
        self.used += bytes;
        self.cache_seq.insert(key, self.next_seq);
        self.next_seq += 1;
        true
    }

    /// Refreshes the LRU recency of a cached block (no-op otherwise).
    pub fn touch(&mut self, key: &K) {
        self.version += 1;
        if let Some(seq) = self.cache_seq.get_mut(key) {
            *seq = self.next_seq;
            self.next_seq += 1;
        }
    }

    /// Bytes currently held by `Cached` entries.
    pub fn cached_used(&self) -> u64 {
        self.blocks
            .values()
            .filter(|(_, r)| *r == Residency::Cached)
            .map(|(b, _)| *b)
            .sum()
    }

    /// Removes every migrated block (the paper's slave-restart and
    /// master-failure purge paths), returning the evicted keys.
    pub fn purge_migrated(&mut self, now: SimTime) -> Vec<K> {
        let keys: Vec<K> = self
            .blocks
            .iter()
            .filter(|(_, (_, r))| *r == Residency::Migrated)
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            self.remove(now, k);
        }
        keys
    }

    /// Removes **every** resident block — migrated, pinned and cached —
    /// modelling a node crash: RAM contents do not survive a power cycle.
    /// Returns the total bytes released. Occupancy history is preserved
    /// (it describes the past) and migrated occupancy drops to zero at
    /// `now`.
    pub fn wipe(&mut self, now: SimTime) -> u64 {
        let keys: Vec<K> = self.blocks.keys().copied().collect();
        let mut released = 0;
        for k in &keys {
            released += self.remove(now, k).unwrap_or(0);
        }
        self.version += 1;
        released
    }

    /// Time-weighted average of **migrated** occupancy (bytes) up to `now`.
    pub fn average_migrated_occupancy(&self, now: SimTime) -> f64 {
        self.occupancy.average(now)
    }

    /// Peak migrated occupancy in bytes.
    pub fn peak_migrated_occupancy(&self) -> f64 {
        self.occupancy.peak()
    }

    /// Migrated-occupancy series sampled every `interval` over `[0, end]`.
    pub fn occupancy_series(&self, interval: SimDuration, end: SimTime) -> Vec<(SimTime, f64)> {
        self.occupancy.sample_series(interval, end)
    }

    /// The raw migrated-occupancy change points `(time, bytes)`.
    pub fn occupancy_changes(&self) -> Vec<(SimTime, f64)> {
        self.occupancy.sample_series_raw().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::units::MB;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 40 * MB, Residency::Migrated).unwrap();
        assert_eq!(m.used(), 40 * MB);
        assert_eq!(m.available(), 60 * MB);
        assert_eq!(m.remove(t(1), &1), Some(40 * MB));
        assert_eq!(m.used(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 80 * MB, Residency::Migrated).unwrap();
        let err = m.insert(t(0), 2, 30 * MB, Residency::Migrated).unwrap_err();
        assert_eq!(err.requested, 30 * MB);
        assert_eq!(err.available, 20 * MB);
        assert!(err.to_string().contains("memory store full"));
    }

    #[test]
    fn pinned_blocks_excluded_from_migrated_accounting() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 30 * MB, Residency::Pinned).unwrap();
        m.insert(t(0), 2, 20 * MB, Residency::Migrated).unwrap();
        assert_eq!(m.used(), 50 * MB);
        assert_eq!(m.migrated_used(), 20 * MB);
        assert_eq!(m.residency(&1), Some(Residency::Pinned));
    }

    #[test]
    fn purge_migrated_keeps_pinned() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 30 * MB, Residency::Pinned).unwrap();
        m.insert(t(0), 2, 20 * MB, Residency::Migrated).unwrap();
        m.insert(t(0), 3, 10 * MB, Residency::Migrated).unwrap();
        let purged = m.purge_migrated(t(5));
        assert_eq!(purged, vec![2, 3]);
        assert!(m.contains(&1));
        assert_eq!(m.used(), 30 * MB);
        assert_eq!(m.migrated_used(), 0);
    }

    #[test]
    fn occupancy_tracking_is_time_weighted() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 10 * MB, Residency::Migrated).unwrap();
        m.remove(t(10), &1); // 10 MB held for 10 s
        let avg = m.average_migrated_occupancy(t(20));
        assert!((avg - 5.0 * MB as f64).abs() < 1.0);
        assert_eq!(m.peak_migrated_occupancy(), 10.0 * MB as f64);
    }

    #[test]
    fn occupancy_series_samples() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(2), 1, 10 * MB, Residency::Migrated).unwrap();
        let series = m.occupancy_series(SimDuration::from_secs(2), t(4));
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, 0.0);
        assert_eq!(series[2].1, 10.0 * MB as f64);
    }

    #[test]
    fn cached_lru_eviction() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        assert!(m.insert_cached(t(0), 1, 40 * MB));
        assert!(m.insert_cached(t(1), 2, 40 * MB));
        // Touch 1 so 2 becomes the LRU victim.
        m.touch(&1);
        assert!(m.insert_cached(t(2), 3, 40 * MB));
        assert!(m.contains(&1));
        assert!(!m.contains(&2), "LRU entry must be evicted");
        assert!(m.contains(&3));
        assert_eq!(m.cached_used(), 80 * MB);
    }

    #[test]
    fn cached_never_evicts_pinned_or_migrated() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 50 * MB, Residency::Pinned).unwrap();
        m.insert(t(0), 2, 40 * MB, Residency::Migrated).unwrap();
        // Not enough evictable space: best-effort insert fails.
        assert!(!m.insert_cached(t(1), 3, 20 * MB));
        assert!(m.contains(&1) && m.contains(&2));
        // A small cached block fits without eviction.
        assert!(m.insert_cached(t(2), 4, 10 * MB));
    }

    #[test]
    fn cached_reinsert_refreshes() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        assert!(m.insert_cached(t(0), 1, 40 * MB));
        assert!(m.insert_cached(t(1), 2, 40 * MB));
        // Re-inserting 1 refreshes it; 2 is evicted next.
        assert!(m.insert_cached(t(2), 1, 40 * MB));
        assert!(m.insert_cached(t(3), 3, 40 * MB));
        assert!(m.contains(&1) && !m.contains(&2));
        assert_eq!(m.used(), 80 * MB);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, 30 * MB, Residency::Pinned).unwrap();
        m.insert(t(0), 2, 20 * MB, Residency::Migrated).unwrap();
        assert!(m.insert_cached(t(0), 3, 10 * MB));
        let v = m.version();
        assert_eq!(m.wipe(t(5)), 60 * MB);
        assert!(m.is_empty());
        assert_eq!(m.used(), 0);
        assert_eq!(m.migrated_used(), 0);
        assert_eq!(m.cached_used(), 0);
        assert!(m.version() > v);
        // The store is reusable after the wipe (the node restarted).
        m.insert(t(6), 4, 40 * MB, Residency::Migrated).unwrap();
        assert_eq!(m.migrated_used(), 40 * MB);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut m: MemStore<u32> = MemStore::new(100 * MB);
        m.insert(t(0), 1, MB, Residency::Migrated).unwrap();
        let _ = m.insert(t(0), 1, MB, Residency::Migrated);
    }
}
