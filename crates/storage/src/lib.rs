//! # ignem-storage — storage device models
//!
//! The storage substrate of the Ignem reproduction:
//!
//! * [`device`] — calibrated HDD / SSD / RAM profiles (Fig. 1 ratios).
//! * [`disk`] — a shared device with seeks, concurrency degradation and
//!   write-back flushing, built on the simcore fluid-flow model.
//! * [`memstore`] — the per-node memory block store holding migrated and
//!   pinned blocks, with occupancy tracking for Fig. 7.
//!
//! ## Example
//!
//! ```
//! use ignem_storage::{device::DeviceProfile, disk::{Disk, IoKind, RequestId}};
//! use ignem_simcore::time::SimTime;
//!
//! // One cold 64 MB block read from an idle HDD takes about half a second.
//! let mut disk = Disk::new(DeviceProfile::hdd());
//! disk.submit(SimTime::ZERO, RequestId(0), IoKind::Read, 64 * 1024 * 1024);
//! let mut done = vec![];
//! while let Some(t) = disk.next_event() {
//!     done.extend(disk.advance(t));
//! }
//! assert!((done[0].duration().as_secs_f64() - 0.487).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod disk;
pub mod memstore;

pub use device::{DeviceKind, DeviceProfile};
pub use disk::{Completion, Disk, IoKind, RequestId};
pub use memstore::{CapacityError, MemStore, Residency};
