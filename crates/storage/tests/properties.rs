//! Randomized (deterministic, seeded) tests for the storage substrate.

use ignem_simcore::rng::SimRng;
use ignem_simcore::time::SimTime;
use ignem_storage::device::DeviceProfile;
use ignem_storage::disk::{Disk, IoKind, RequestId};
use ignem_storage::memstore::{MemStore, Residency};

fn drain(disk: &mut Disk) -> usize {
    let mut done = 0;
    let mut guard = 0;
    while let Some(t) = disk.next_event() {
        done += disk.advance(t).len();
        guard += 1;
        assert!(guard < 100_000, "disk failed to drain");
    }
    done
}

/// Every submitted request completes exactly once, regardless of the
/// interleaving of reads, migrations and buffered writes.
#[test]
fn disk_completes_everything() {
    for seed in 0..48u64 {
        let mut rng = SimRng::new(0xD15C_0001 ^ seed);
        let n = 1 + rng.index(39);
        let ops: Vec<(u8, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.index(3) as u8,
                    1 + rng.next_u64() % 255,
                    rng.next_u64() % 5_000_000,
                )
            })
            .collect();
        for profile in [
            DeviceProfile::hdd(),
            DeviceProfile::ssd(),
            DeviceProfile::ram(),
        ] {
            let mut disk = Disk::new(profile);
            let mut expected = 0usize;
            let mut completed = 0usize;
            let mut now = SimTime::ZERO;
            for (i, &(kind, mb, at_us)) in ops.iter().enumerate() {
                let t = SimTime::from_micros(at_us);
                now = now.max(t);
                let bytes = mb * 1_000_000;
                match kind {
                    0 => {
                        completed += disk
                            .submit(now, RequestId(i as u64), IoKind::Read, bytes)
                            .len();
                        expected += 1;
                    }
                    1 => {
                        completed += disk
                            .submit(now, RequestId(i as u64), IoKind::Migration, bytes)
                            .len();
                        expected += 1;
                    }
                    _ => {
                        completed += disk.buffered_write(now, bytes).len();
                    }
                }
            }
            completed += drain(&mut disk);
            assert_eq!(completed, expected, "seed {seed}");
            assert_eq!(disk.dirty_bytes(), 0, "seed {seed}: flush must drain");
            assert_eq!(disk.in_flight(), 0, "seed {seed}");
        }
    }
}

/// Migration requests never finish faster than an equal-size read issued at
/// the same time (the mmap/mlock penalty).
#[test]
fn migration_never_beats_read() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0xD15C_0002 ^ seed);
        let mb = 1 + rng.next_u64() % 511;
        let bytes = mb * 1_000_000;
        let mut disk = Disk::new(DeviceProfile::hdd());
        disk.submit(SimTime::ZERO, RequestId(1), IoKind::Read, bytes);
        disk.submit(SimTime::ZERO, RequestId(2), IoKind::Migration, bytes);
        let mut read_t = None;
        let mut mig_t = None;
        while let Some(t) = disk.next_event() {
            for c in disk.advance(t) {
                match c.id {
                    RequestId(1) => read_t = Some(c.finished),
                    RequestId(2) => mig_t = Some(c.finished),
                    _ => {}
                }
            }
        }
        assert!(
            mig_t.expect("migration done") >= read_t.expect("read done"),
            "seed {seed}"
        );
    }
}

/// MemStore accounting: used == sum of inserted sizes, always within
/// capacity, and migrated accounting is a sub-account of used.
#[test]
fn memstore_accounting() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0xD15C_0003 ^ seed);
        let n = 1 + rng.index(59);
        let mut m: MemStore<u64> = MemStore::new(2_000);
        let mut shadow: std::collections::BTreeMap<u64, (u64, bool)> = Default::default();
        let mut clock = 0u64;
        for _ in 0..n {
            let op = rng.index(2) as u8;
            let key = rng.next_u64() % 16;
            let size = 1 + rng.next_u64() % 99;
            clock += 1;
            let now = SimTime::from_secs(clock);
            match op {
                0 => {
                    if shadow.contains_key(&key) {
                        continue;
                    }
                    let migrated = size.is_multiple_of(2);
                    let residency = if migrated {
                        Residency::Migrated
                    } else {
                        Residency::Pinned
                    };
                    if m.insert(now, key, size, residency).is_ok() {
                        shadow.insert(key, (size, migrated));
                    }
                }
                _ => {
                    let got = m.remove(now, &key);
                    let want = shadow.remove(&key).map(|(s, _)| s);
                    assert_eq!(got, want, "seed {seed}");
                }
            }
            let want_used: u64 = shadow.values().map(|&(s, _)| s).sum();
            let want_migrated: u64 = shadow
                .values()
                .filter(|&&(_, mig)| mig)
                .map(|&(s, _)| s)
                .sum();
            assert_eq!(m.used(), want_used, "seed {seed}");
            assert_eq!(m.migrated_used(), want_migrated, "seed {seed}");
            assert!(m.used() <= m.capacity(), "seed {seed}");
        }
    }
}
