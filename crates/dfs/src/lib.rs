//! # ignem-dfs — HDFS-like distributed file system layer
//!
//! The file-system substrate Ignem extends: a [`namenode::NameNode`] holding
//! the namespace (files → blocks) and block locations (blocks → datanodes,
//! with replication and liveness), plus the client-side read-path planner
//! ([`client::plan_read`]) that prefers memory-resident replicas.
//!
//! Data *timing* (how long a read takes) lives in `ignem-storage` /
//! `ignem-netsim`; this crate is the metadata authority, mirroring how the
//! real NameNode never touches data bytes.
//!
//! ```
//! use ignem_dfs::prelude::*;
//! use ignem_netsim::NodeId;
//! use ignem_simcore::rng::SimRng;
//!
//! let mut nn = NameNode::new(DfsConfig::default());
//! for n in 0..8 { nn.register_node(NodeId(n)); }
//! let mut rng = SimRng::new(1);
//! nn.create_file("/logs/day1", 1 << 30, &mut rng)?;
//! assert_eq!(nn.file_blocks("/logs/day1")?.len(), 16); // 1 GiB / 64 MiB
//! # Ok::<(), ignem_dfs::error::DfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod client;
pub mod error;
pub mod namenode;

/// Commonly used items.
pub mod prelude {
    pub use crate::block::{BlockId, BlockInfo, FileId, DEFAULT_BLOCK_SIZE};
    pub use crate::client::{plan_read, ReadSource};
    pub use crate::error::DfsError;
    pub use crate::namenode::{DfsConfig, FileMeta, NameNode};
}

pub use block::{BlockId, BlockInfo, FileId};
pub use client::{plan_read, ReadSource};
pub use error::DfsError;
pub use namenode::{DfsConfig, FileMeta, NameNode};
