//! Block identifiers and sizing.

use ignem_simcore::idmap::DenseId;
use ignem_simcore::units::MIB;

/// The default HDFS block size used throughout the paper's evaluation
/// (§II-B: "The HDFS block size is set to 64MB").
pub const DEFAULT_BLOCK_SIZE: u64 = 64 * MIB;

/// Identifies one block in the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

impl DenseId for BlockId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        BlockId(index as u64)
    }
}

/// Identifies one file in the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file_{}", self.0)
    }
}

/// A block's identity and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// The block id.
    pub id: BlockId,
    /// Size in bytes (the final block of a file may be short).
    pub bytes: u64,
}

/// Splits a file of `bytes` into block sizes of at most `block_size`.
///
/// Zero-byte files occupy a single zero-block-free entry (no blocks).
///
/// ```
/// use ignem_dfs::block::split_into_blocks;
///
/// assert_eq!(split_into_blocks(150, 64), vec![64, 64, 22]);
/// assert_eq!(split_into_blocks(64, 64), vec![64]);
/// assert!(split_into_blocks(0, 64).is_empty());
/// ```
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn split_into_blocks(bytes: u64, block_size: u64) -> Vec<u64> {
    assert!(block_size > 0, "zero block size");
    let mut sizes = Vec::with_capacity((bytes / block_size + 1) as usize);
    let mut left = bytes;
    while left > 0 {
        let b = left.min(block_size);
        sizes.push(b);
        left -= b;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_exact_multiple() {
        assert_eq!(split_into_blocks(192, 64), vec![64, 64, 64]);
    }

    #[test]
    fn split_with_tail() {
        assert_eq!(split_into_blocks(100, 64), vec![64, 36]);
    }

    #[test]
    fn split_small_file() {
        assert_eq!(split_into_blocks(10, 64), vec![10]);
    }

    #[test]
    fn default_block_size_is_64_mib() {
        assert_eq!(DEFAULT_BLOCK_SIZE, 67_108_864);
    }

    #[test]
    fn ids_display() {
        assert_eq!(BlockId(3).to_string(), "blk_3");
        assert_eq!(FileId(4).to_string(), "file_4");
    }
}
