//! The NameNode: namespace and block-location authority.
//!
//! Mirrors the slice of HDFS that Ignem relies on (paper §III): complete
//! mappings of files → blocks and blocks → datanodes, random replica
//! placement, and a liveness view that drops failed servers from location
//! results (§III-A5: "the Ignem master queries the file system … and will
//! receive an updated view with only live locations").

use std::collections::BTreeMap;

use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;

use crate::block::{split_into_blocks, BlockId, BlockInfo, FileId};
use crate::error::DfsError;

/// Per-file metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// The file id.
    pub id: FileId,
    /// Absolute path.
    pub path: String,
    /// Block list, in file order.
    pub blocks: Vec<BlockId>,
    /// Total length in bytes.
    pub bytes: u64,
}

#[derive(Debug, Clone)]
struct BlockMeta {
    bytes: u64,
    file: FileId,
    /// All replica holders, dead or alive (liveness filtered on query).
    replicas: Vec<NodeId>,
}

/// NameNode configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsConfig {
    /// Block size in bytes.
    pub block_size: u64,
    /// Replication factor.
    pub replication: usize,
}

impl Default for DfsConfig {
    /// The paper's evaluation settings: 64 MB blocks, 3× replication.
    fn default() -> Self {
        DfsConfig {
            block_size: crate::block::DEFAULT_BLOCK_SIZE,
            replication: 3,
        }
    }
}

/// The namespace and block-location authority (see module docs).
///
/// ```
/// use ignem_dfs::namenode::{DfsConfig, NameNode};
/// use ignem_netsim::NodeId;
/// use ignem_simcore::rng::SimRng;
///
/// let mut nn = NameNode::new(DfsConfig::default());
/// for n in 0..4 { nn.register_node(NodeId(n)); }
/// let mut rng = SimRng::new(1);
/// nn.create_file("/data/part-0", 200_000_000, &mut rng)?;
/// let blocks = nn.file_blocks("/data/part-0")?;
/// assert_eq!(blocks.len(), 3); // 2 full 64 MiB blocks + tail
/// # Ok::<(), ignem_dfs::error::DfsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NameNode {
    config: DfsConfig,
    files: BTreeMap<FileId, FileMeta>,
    by_path: BTreeMap<String, FileId>,
    blocks: BTreeMap<BlockId, BlockMeta>,
    alive: BTreeMap<NodeId, bool>,
    next_file: u64,
    next_block: u64,
}

impl NameNode {
    /// Creates an empty namespace.
    ///
    /// # Panics
    ///
    /// Panics if the configured block size or replication factor is zero.
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.block_size > 0, "zero block size");
        assert!(config.replication > 0, "zero replication");
        NameNode {
            config,
            files: BTreeMap::new(),
            by_path: BTreeMap::new(),
            blocks: BTreeMap::new(),
            alive: BTreeMap::new(),
            next_file: 0,
            next_block: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// Registers a datanode (initially alive).
    pub fn register_node(&mut self, node: NodeId) {
        self.alive.insert(node, true);
    }

    /// Marks a datanode dead: its replicas disappear from location queries.
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownNode`] if the node was never registered.
    pub fn mark_dead(&mut self, node: NodeId) -> Result<(), DfsError> {
        match self.alive.get_mut(&node) {
            Some(a) => {
                *a = false;
                Ok(())
            }
            None => Err(DfsError::UnknownNode(node)),
        }
    }

    /// Marks a datanode alive again (its replicas reappear).
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownNode`] if the node was never registered.
    pub fn mark_alive(&mut self, node: NodeId) -> Result<(), DfsError> {
        match self.alive.get_mut(&node) {
            Some(a) => {
                *a = true;
                Ok(())
            }
            None => Err(DfsError::UnknownNode(node)),
        }
    }

    /// Whether a node is registered and alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(&node).copied().unwrap_or(false)
    }

    /// All currently alive datanodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .filter(|(_, &a)| a)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Creates a file of `bytes`, splitting it into blocks and placing
    /// `replication` replicas of each block on distinct random alive nodes
    /// (fewer if the cluster is smaller).
    ///
    /// # Errors
    ///
    /// [`DfsError::FileExists`] on a duplicate path,
    /// [`DfsError::NoAliveNodes`] if no datanode is alive.
    pub fn create_file(
        &mut self,
        path: &str,
        bytes: u64,
        rng: &mut SimRng,
    ) -> Result<FileId, DfsError> {
        if self.by_path.contains_key(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        let mut candidates = self.alive_nodes();
        if candidates.is_empty() {
            return Err(DfsError::NoAliveNodes);
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        let mut block_ids = Vec::new();
        for size in split_into_blocks(bytes, self.config.block_size) {
            let bid = BlockId(self.next_block);
            self.next_block += 1;
            rng.shuffle(&mut candidates);
            let replicas: Vec<NodeId> = candidates
                .iter()
                .take(self.config.replication)
                .copied()
                .collect();
            self.blocks.insert(
                bid,
                BlockMeta {
                    bytes: size,
                    file: id,
                    replicas,
                },
            );
            block_ids.push(bid);
        }
        self.files.insert(
            id,
            FileMeta {
                id,
                path: path.to_string(),
                blocks: block_ids,
                bytes,
            },
        );
        self.by_path.insert(path.to_string(), id);
        Ok(id)
    }

    /// Deletes a file and all its blocks.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if the path does not exist.
    pub fn delete_file(&mut self, path: &str) -> Result<(), DfsError> {
        let id = self
            .by_path
            .remove(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        let meta = self.files.remove(&id).expect("file table out of sync");
        for b in meta.blocks {
            self.blocks.remove(&b);
        }
        Ok(())
    }

    /// Looks up file metadata by path.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if the path does not exist.
    pub fn open(&self, path: &str) -> Result<&FileMeta, DfsError> {
        let id = self
            .by_path
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        Ok(&self.files[id])
    }

    /// The blocks of a file, in order, with sizes.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if the path does not exist.
    pub fn file_blocks(&self, path: &str) -> Result<Vec<BlockInfo>, DfsError> {
        let meta = self.open(path)?;
        Ok(meta
            .blocks
            .iter()
            .map(|b| BlockInfo {
                id: *b,
                // lint: allow(P02, reason = "file metadata and the block map are updated together")
                bytes: self.blocks[b].bytes,
            })
            .collect())
    }

    /// A block's size and owning file.
    ///
    /// # Errors
    ///
    /// [`DfsError::BlockNotFound`] if the block is unknown.
    pub fn block_info(&self, block: BlockId) -> Result<BlockInfo, DfsError> {
        self.blocks
            .get(&block)
            .map(|m| BlockInfo {
                id: block,
                bytes: m.bytes,
            })
            .ok_or(DfsError::BlockNotFound(block))
    }

    /// The file a block belongs to.
    ///
    /// # Errors
    ///
    /// [`DfsError::BlockNotFound`] if the block is unknown.
    pub fn block_file(&self, block: BlockId) -> Result<FileId, DfsError> {
        self.blocks
            .get(&block)
            .map(|m| m.file)
            .ok_or(DfsError::BlockNotFound(block))
    }

    /// The **alive** replica locations of a block.
    ///
    /// # Errors
    ///
    /// [`DfsError::BlockNotFound`] if the block is unknown.
    pub fn locations(&self, block: BlockId) -> Result<Vec<NodeId>, DfsError> {
        let meta = self
            .blocks
            .get(&block)
            .ok_or(DfsError::BlockNotFound(block))?;
        Ok(meta
            .replicas
            .iter()
            .copied()
            .filter(|n| self.is_alive(*n))
            .collect())
    }

    /// Whether `node` holds an **alive** replica of `block`: the
    /// allocation-free form of [`locations`](Self::locations) +
    /// `contains` the scheduler's locality check runs per candidate task.
    /// Unknown blocks are simply not replicated anywhere.
    pub fn has_alive_replica(&self, block: BlockId, node: NodeId) -> bool {
        self.blocks
            .get(&block)
            .is_some_and(|m| m.replicas.contains(&node) && self.is_alive(node))
    }

    /// Registers a new replica of `block` on `node` (the re-replication
    /// path after a datanode failure). Idempotent for existing replicas.
    ///
    /// # Errors
    ///
    /// [`DfsError::BlockNotFound`] for an unknown block,
    /// [`DfsError::UnknownNode`] for an unregistered node.
    pub fn add_replica(&mut self, block: BlockId, node: NodeId) -> Result<(), DfsError> {
        if !self.alive.contains_key(&node) {
            return Err(DfsError::UnknownNode(node));
        }
        let meta = self
            .blocks
            .get_mut(&block)
            .ok_or(DfsError::BlockNotFound(block))?;
        if !meta.replicas.contains(&node) {
            // lint: allow(Q01, reason = "deduplicated by the contains guard; bounded by cluster size")
            meta.replicas.push(node);
        }
        Ok(())
    }

    /// Blocks whose **alive** replica count is below the replication factor
    /// but above zero (the NameNode's re-replication work list).
    pub fn under_replicated(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|(_, m)| {
                let alive = m.replicas.iter().filter(|n| self.is_alive(**n)).count();
                alive > 0 && alive < self.config.replication.min(self.alive_nodes().len())
            })
            .map(|(&b, _)| b)
            .collect()
    }

    /// Whether a single block's alive replica count is below the
    /// replication factor but above zero: the per-block form of
    /// [`under_replicated`](Self::under_replicated), used to skip queued
    /// re-replication work that a node's return already made redundant.
    pub fn is_under_replicated(&self, block: BlockId) -> bool {
        let Some(meta) = self.blocks.get(&block) else {
            return false;
        };
        let alive = meta.replicas.iter().filter(|n| self.is_alive(**n)).count();
        alive > 0 && alive < self.config.replication.min(self.alive_nodes().len())
    }

    /// Blocks with **no** alive replica at all: every copy sits on a dead
    /// node. Empty in any recoverable state — the chaos harness's
    /// recovery-convergence invariant checks exactly this at end of run.
    pub fn blocks_without_alive_replica(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|(_, m)| !m.replicas.iter().any(|n| self.is_alive(*n)))
            .map(|(&b, _)| b)
            .collect()
    }

    /// Every block (with size) that has a replica on `node`. Used by the
    /// vmtouch-style *Inputs-in-RAM* configuration to pin local replicas.
    pub fn blocks_on(&self, node: NodeId) -> Vec<BlockInfo> {
        self.blocks
            .iter()
            .filter(|(_, m)| m.replicas.contains(&node))
            .map(|(&id, m)| BlockInfo { id, bytes: m.bytes })
            .collect()
    }

    /// Total number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignem_simcore::units::MIB;

    fn namenode(nodes: u32) -> (NameNode, SimRng) {
        let mut nn = NameNode::new(DfsConfig::default());
        for n in 0..nodes {
            nn.register_node(NodeId(n));
        }
        (nn, SimRng::new(42))
    }

    #[test]
    fn create_splits_into_blocks() {
        let (mut nn, mut rng) = namenode(8);
        nn.create_file("/f", 200 * MIB, &mut rng).unwrap();
        let blocks = nn.file_blocks("/f").unwrap();
        assert_eq!(blocks.len(), 4); // 3 full + 8 MiB tail
        assert_eq!(blocks[0].bytes, 64 * MIB);
        assert_eq!(blocks[3].bytes, 8 * MIB);
        assert_eq!(nn.block_count(), 4);
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let (mut nn, mut rng) = namenode(8);
        nn.create_file("/f", 64 * MIB, &mut rng).unwrap();
        let b = nn.file_blocks("/f").unwrap()[0].id;
        let locs = nn.locations(b).unwrap();
        assert_eq!(locs.len(), 3);
        let mut dedup = locs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn small_cluster_reduces_replication() {
        let (mut nn, mut rng) = namenode(2);
        nn.create_file("/f", MIB, &mut rng).unwrap();
        let b = nn.file_blocks("/f").unwrap()[0].id;
        assert_eq!(nn.locations(b).unwrap().len(), 2);
    }

    #[test]
    fn dead_nodes_filtered_from_locations() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/f", MIB, &mut rng).unwrap();
        let b = nn.file_blocks("/f").unwrap()[0].id;
        assert_eq!(nn.locations(b).unwrap().len(), 3);
        nn.mark_dead(NodeId(0)).unwrap();
        assert_eq!(nn.locations(b).unwrap().len(), 2);
        nn.mark_alive(NodeId(0)).unwrap();
        assert_eq!(nn.locations(b).unwrap().len(), 3);
    }

    #[test]
    fn duplicate_path_rejected() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/f", MIB, &mut rng).unwrap();
        assert_eq!(
            nn.create_file("/f", MIB, &mut rng),
            Err(DfsError::FileExists("/f".into()))
        );
    }

    #[test]
    fn missing_file_errors() {
        let (nn, _) = namenode(3);
        assert_eq!(
            nn.open("/nope").unwrap_err(),
            DfsError::FileNotFound("/nope".into())
        );
    }

    #[test]
    fn no_alive_nodes_errors() {
        let mut nn = NameNode::new(DfsConfig::default());
        let mut rng = SimRng::new(1);
        assert_eq!(
            nn.create_file("/f", MIB, &mut rng),
            Err(DfsError::NoAliveNodes)
        );
    }

    #[test]
    fn delete_removes_blocks() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/f", 200 * MIB, &mut rng).unwrap();
        assert_eq!(nn.block_count(), 4);
        nn.delete_file("/f").unwrap();
        assert_eq!(nn.block_count(), 0);
        assert_eq!(nn.file_count(), 0);
        assert!(nn.open("/f").is_err());
    }

    #[test]
    fn blocks_on_lists_local_replicas() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/f", 128 * MIB, &mut rng).unwrap();
        // With 3 nodes and replication 3, every node holds every block.
        for n in 0..3 {
            assert_eq!(nn.blocks_on(NodeId(n)).len(), 2);
        }
    }

    #[test]
    fn placement_spreads_load() {
        let (mut nn, mut rng) = namenode(8);
        nn.create_file("/big", 100 * 64 * MIB, &mut rng).unwrap();
        // Each node should hold roughly 100*3/8 = 37.5 replicas; check
        // nobody is wildly off (placement is uniform random).
        for n in 0..8 {
            let cnt = nn.blocks_on(NodeId(n)).len();
            assert!((15..=60).contains(&cnt), "node {n} has {cnt} replicas");
        }
    }

    #[test]
    fn re_replication_bookkeeping() {
        let (mut nn, mut rng) = namenode(4);
        nn.create_file("/f", 128 * MIB, &mut rng).unwrap();
        assert!(nn.under_replicated().is_empty());
        // Kill a node that holds replicas.
        let victim = (0..4)
            .map(NodeId)
            .find(|n| !nn.blocks_on(*n).is_empty())
            .unwrap();
        let lost = nn.blocks_on(victim).len();
        nn.mark_dead(victim).unwrap();
        let under = nn.under_replicated();
        assert_eq!(under.len(), lost);
        // Re-replicate each onto some alive non-holder.
        for b in under {
            let holders = nn.locations(b).unwrap();
            let target = (0..4)
                .map(NodeId)
                .find(|n| nn.is_alive(*n) && !holders.contains(n))
                .unwrap();
            nn.add_replica(b, target).unwrap();
        }
        assert!(nn.under_replicated().is_empty());
    }

    #[test]
    fn add_replica_is_idempotent_and_validated() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/f", MIB, &mut rng).unwrap();
        let b = nn.file_blocks("/f").unwrap()[0].id;
        let n = nn.locations(b).unwrap()[0];
        nn.add_replica(b, n).unwrap(); // already a holder: no-op
        assert_eq!(nn.locations(b).unwrap().len(), 3);
        assert_eq!(
            nn.add_replica(BlockId(999), n),
            Err(DfsError::BlockNotFound(BlockId(999)))
        );
        assert_eq!(
            nn.add_replica(b, NodeId(42)),
            Err(DfsError::UnknownNode(NodeId(42)))
        );
    }

    #[test]
    fn per_block_under_replication_matches_work_list() {
        let (mut nn, mut rng) = namenode(4);
        nn.create_file("/f", 128 * MIB, &mut rng).unwrap();
        let victim = (0..4)
            .map(NodeId)
            .find(|n| !nn.blocks_on(*n).is_empty())
            .unwrap();
        nn.mark_dead(victim).unwrap();
        for b in nn.under_replicated() {
            assert!(nn.is_under_replicated(b));
        }
        assert!(!nn.is_under_replicated(BlockId(999)));
        nn.mark_alive(victim).unwrap();
        assert!(nn.under_replicated().is_empty());
        assert!(nn.blocks_without_alive_replica().is_empty());
    }

    #[test]
    fn fully_dead_blocks_are_reported_lost() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/f", MIB, &mut rng).unwrap();
        for n in 0..3 {
            nn.mark_dead(NodeId(n)).unwrap();
        }
        assert_eq!(nn.blocks_without_alive_replica().len(), 1);
        // A returning node makes the block readable again.
        nn.mark_alive(NodeId(0)).unwrap();
        assert!(nn.blocks_without_alive_replica().is_empty());
    }

    #[test]
    fn zero_byte_file_has_no_blocks() {
        let (mut nn, mut rng) = namenode(3);
        nn.create_file("/empty", 0, &mut rng).unwrap();
        assert!(nn.file_blocks("/empty").unwrap().is_empty());
    }
}
