//! Read-path planning: where a task's block read is served from.
//!
//! HDFS clients pick a replica and read either locally (short-circuit) or
//! over the network. With Ignem, a block may additionally be resident in
//! some node's memory. The planner encodes the preference order the paper
//! implies:
//!
//! 1. **local memory** — the fastest path, what migration aims for;
//! 2. **remote memory** — the paper's §III-A2 rationale for migrating only
//!    one replica: "even when a task cannot be scheduled on the server where
//!    its input was migrated, it can still efficiently read the block over
//!    the network" (10 Gbps ≫ cold-disk bandwidth);
//! 3. **local disk**;
//! 4. **remote disk** (random replica).

use ignem_netsim::NodeId;
use ignem_simcore::rng::SimRng;

use crate::block::BlockId;
use crate::error::DfsError;
use crate::namenode::NameNode;

/// Where a block read will be served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// The block is in memory on the reader's own node.
    LocalMemory,
    /// The block is in memory on another node; read over the network.
    RemoteMemory(NodeId),
    /// The block is on the reader's local disk.
    LocalDisk,
    /// The block is on a remote node's disk; read over the network
    /// (bottlenecked by the remote disk).
    RemoteDisk(NodeId),
}

impl ReadSource {
    /// Whether this source is served from memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, ReadSource::LocalMemory | ReadSource::RemoteMemory(_))
    }

    /// Whether this source crosses the network.
    pub fn is_remote(&self) -> bool {
        matches!(
            self,
            ReadSource::RemoteMemory(_) | ReadSource::RemoteDisk(_)
        )
    }
}

/// Plans the read of `block` by a task running on `reader`.
///
/// `in_memory(node, block)` reports whether the block is resident in memory
/// (migrated or pinned) on `node`; the cluster layer supplies it from its
/// per-node `MemStore`s (in `ignem-storage`).
///
/// # Errors
///
/// [`DfsError::BlockNotFound`] for an unknown block;
/// [`DfsError::NoAliveNodes`] if no alive replica exists.
pub fn plan_read(
    namenode: &NameNode,
    reader: NodeId,
    block: BlockId,
    in_memory: impl Fn(NodeId, BlockId) -> bool,
    rng: &mut SimRng,
) -> Result<ReadSource, DfsError> {
    let locations = namenode.locations(block)?;
    if locations.is_empty() {
        return Err(DfsError::NoAliveNodes);
    }
    // 1. Local memory.
    if in_memory(reader, block) {
        return Ok(ReadSource::LocalMemory);
    }
    // 2. Remote memory. Check all alive replica holders (Ignem migrates a
    //    single replica, so at most one will match).
    for &n in &locations {
        if n != reader && in_memory(n, block) {
            return Ok(ReadSource::RemoteMemory(n));
        }
    }
    // 3. Local disk.
    if locations.contains(&reader) {
        return Ok(ReadSource::LocalDisk);
    }
    // 4. Random remote replica's disk.
    Ok(ReadSource::RemoteDisk(*rng.choose(&locations)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::DfsConfig;
    use ignem_simcore::units::MIB;

    fn setup() -> (NameNode, BlockId, SimRng) {
        let mut nn = NameNode::new(DfsConfig {
            block_size: 64 * MIB,
            replication: 2,
        });
        for n in 0..4 {
            nn.register_node(NodeId(n));
        }
        let mut rng = SimRng::new(7);
        nn.create_file("/f", 64 * MIB, &mut rng).unwrap();
        let b = nn.file_blocks("/f").unwrap()[0].id;
        (nn, b, rng)
    }

    #[test]
    fn local_memory_wins() {
        let (nn, b, mut rng) = setup();
        let reader = NodeId(0);
        let src = plan_read(&nn, reader, b, |n, _| n == reader, &mut rng).unwrap();
        assert_eq!(src, ReadSource::LocalMemory);
        assert!(src.is_memory() && !src.is_remote());
    }

    #[test]
    fn remote_memory_beats_local_disk() {
        let (nn, b, mut rng) = setup();
        let locs = nn.locations(b).unwrap();
        let holder = locs[0];
        // Reader is another replica holder with the block on local disk.
        let reader = locs[1];
        let src = plan_read(&nn, reader, b, |n, _| n == holder, &mut rng).unwrap();
        assert_eq!(src, ReadSource::RemoteMemory(holder));
        assert!(src.is_memory() && src.is_remote());
    }

    #[test]
    fn local_disk_when_nothing_in_memory() {
        let (nn, b, mut rng) = setup();
        let reader = nn.locations(b).unwrap()[0];
        let src = plan_read(&nn, reader, b, |_, _| false, &mut rng).unwrap();
        assert_eq!(src, ReadSource::LocalDisk);
        assert!(!src.is_memory());
    }

    #[test]
    fn remote_disk_as_fallback() {
        let (nn, b, mut rng) = setup();
        let locs = nn.locations(b).unwrap();
        // Pick a reader that holds no replica.
        let reader = (0..4).map(NodeId).find(|n| !locs.contains(n)).unwrap();
        let src = plan_read(&nn, reader, b, |_, _| false, &mut rng).unwrap();
        match src {
            ReadSource::RemoteDisk(n) => assert!(locs.contains(&n)),
            other => panic!("expected remote disk, got {other:?}"),
        }
    }

    #[test]
    fn memory_on_non_replica_node_is_found() {
        // Ignem migrates to a replica holder, but a pinned copy could exist
        // anywhere a replica lives; the planner only consults replica
        // holders, so memory on a non-replica node is ignored.
        let (nn, b, mut rng) = setup();
        let locs = nn.locations(b).unwrap();
        let outsider = (0..4).map(NodeId).find(|n| !locs.contains(n)).unwrap();
        let src = plan_read(&nn, outsider, b, |n, _| n == outsider, &mut rng).unwrap();
        // Reader's own memory always wins even if it's not a replica holder
        // (e.g. cached from an earlier read).
        assert_eq!(src, ReadSource::LocalMemory);
    }

    #[test]
    fn dead_replicas_are_skipped() {
        let (mut nn, b, mut rng) = setup();
        let locs = nn.locations(b).unwrap();
        nn.mark_dead(locs[0]).unwrap();
        let reader = (0..4).map(NodeId).find(|n| !locs.contains(n)).unwrap();
        let src = plan_read(&nn, reader, b, |_, _| false, &mut rng).unwrap();
        assert_eq!(src, ReadSource::RemoteDisk(locs[1]));
    }

    #[test]
    fn all_replicas_dead_errors() {
        let (mut nn, b, mut rng) = setup();
        for n in nn.locations(b).unwrap() {
            nn.mark_dead(n).unwrap();
        }
        assert_eq!(
            plan_read(&nn, NodeId(0), b, |_, _| false, &mut rng),
            Err(DfsError::NoAliveNodes)
        );
    }
}
