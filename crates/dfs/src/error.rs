//! DFS error types.

use crate::block::BlockId;
use ignem_netsim::NodeId;

/// Errors returned by namespace and location operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// A file with this path already exists.
    FileExists(String),
    /// No file with this path exists.
    FileNotFound(String),
    /// The block id is unknown.
    BlockNotFound(BlockId),
    /// The node id is unknown to the namenode.
    UnknownNode(NodeId),
    /// No alive datanode is available to place or serve a replica.
    NoAliveNodes,
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::BlockNotFound(b) => write!(f, "block not found: {b}"),
            DfsError::UnknownNode(n) => write!(f, "unknown datanode: {n}"),
            DfsError::NoAliveNodes => write!(f, "no alive datanodes"),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DfsError::FileNotFound("/a".into()).to_string(),
            "file not found: /a"
        );
        assert_eq!(
            DfsError::BlockNotFound(BlockId(1)).to_string(),
            "block not found: blk_1"
        );
        assert_eq!(DfsError::NoAliveNodes.to_string(), "no alive datanodes");
    }
}
