//! Regenerates the paper's tables and figures.
//!
//! ```text
//! report [OUT_DIR] [SECTION...]
//!
//! SECTION: fig1 fig2 fig3 fig4 table1 fig5 table2 fig6 fig7 table3 fig8
//!          fig9 ablation-priority   (default: all)
//! OUT_DIR: where CSVs go (default: ./results)
//! ```

use ignem_bench::{Report, Section};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (out, wanted): (String, Vec<String>) = match args.split_first() {
        Some((first, rest))
            if !first.starts_with("fig")
                && !first.starts_with("table")
                && !first.starts_with("ablation")
                && !first.starts_with("extension") =>
        {
            (first.clone(), rest.to_vec())
        }
        _ => ("results".to_string(), args),
    };
    let mut report = Report::new(&out);
    let sections: Vec<Section> = if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        report.all()
    } else {
        wanted
            .iter()
            .map(|w| match w.as_str() {
                "fig1" => report.fig1(),
                "fig2" => report.fig2(),
                "fig3" => report.fig3(),
                "fig4" => report.fig4(),
                "table1" => report.table1(),
                "fig5" => report.fig5(),
                "table2" => report.table2(),
                "fig6" => report.fig6(),
                "fig7" => report.fig7(),
                "table3" => report.table3(),
                "fig8" => report.fig8(),
                "fig9" => report.fig9(),
                "ablation-priority" => report.ablation_priority(),
                "ablation-concurrency" => report.ablation_concurrency(),
                "ablation-replicas" => report.ablation_replicas(),
                "ablation-eviction" => report.ablation_eviction(),
                "ablation-heartbeat" => report.ablation_heartbeat(),
                "ablation-jitter" => report.ablation_jitter(),
                "extension-benefit" => report.extension_benefit_aware(),
                "extension-iterative" => report.extension_iterative(),
                "extension-caching" => report.extension_caching(),
                other => {
                    eprintln!("unknown section: {other}");
                    std::process::exit(2);
                }
            })
            .collect()
    };
    for s in sections {
        println!("==================== {} ====================", s.id);
        println!("{}\n", s.text);
    }
    println!("CSV series written to {out}/");
}
