//! Regenerates the paper's tables and figures.
//!
//! ```text
//! report [OUT_DIR] [--trace-out PATH] [--perfetto-out PATH]
//!        [--perfetto-chaos SEED] [--at SEQ] [--at-seed SEED] [SECTION...]
//!
//! SECTION: fig1 fig2 fig3 fig4 table1 fig5 table2 fig6 fig7 table3 fig8
//!          fig9 ablation-priority telemetry profile   (default: all)
//! OUT_DIR: where CSVs go (default: ./results)
//! --trace-out PATH: where the telemetry section writes the run's raw
//!          event stream as JSONL
//! --perfetto-out PATH: where the telemetry section writes span trees and
//!          metric tracks as Chrome trace-event JSON (open in
//!          https://ui.perfetto.dev)
//! --perfetto-chaos SEED: export the Perfetto trace from this chaos seed
//!          instead of the SWIM run
//! --at SEQ: time-travel debugger — run the chaos experiment until the
//!          telemetry record with this sequence number is emitted, then
//!          print the record and a full dump of the frozen world state
//!          (skips all sections)
//! --at-seed SEED: which chaos seed `--at` replays (default 304, the
//!          repo's pinned reference-leak seed)
//! ```

use ignem_bench::{Report, Section};
use ignem_cluster::chaos::{state_at, ChaosConfig};

/// Whether an argument names a report section (as opposed to OUT_DIR).
fn is_section(name: &str) -> bool {
    name.starts_with("fig")
        || name.starts_with("table")
        || name.starts_with("ablation")
        || name.starts_with("extension")
        || name == "telemetry"
        || name == "profile"
        || name == "all"
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Strip `--trace-out PATH` before the OUT_DIR heuristic looks at the
    // first positional argument.
    let mut trace_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            eprintln!("--trace-out requires a path");
            std::process::exit(2);
        }
        trace_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut perfetto_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--perfetto-out") {
        if i + 1 >= args.len() {
            eprintln!("--perfetto-out requires a path");
            std::process::exit(2);
        }
        perfetto_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut perfetto_chaos: Option<u64> = None;
    if let Some(i) = args.iter().position(|a| a == "--perfetto-chaos") {
        if i + 1 >= args.len() {
            eprintln!("--perfetto-chaos requires a seed");
            std::process::exit(2);
        }
        let seed = args.remove(i + 1);
        args.remove(i);
        match seed.parse() {
            Ok(s) => perfetto_chaos = Some(s),
            Err(_) => {
                eprintln!("--perfetto-chaos requires an integer seed, got {seed}");
                std::process::exit(2);
            }
        }
    }
    let mut at_seed: u64 = 304;
    if let Some(i) = args.iter().position(|a| a == "--at-seed") {
        if i + 1 >= args.len() {
            eprintln!("--at-seed requires a seed");
            std::process::exit(2);
        }
        let seed = args.remove(i + 1);
        args.remove(i);
        match seed.parse() {
            Ok(s) => at_seed = s,
            Err(_) => {
                eprintln!("--at-seed requires an integer seed, got {seed}");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--at") {
        if i + 1 >= args.len() {
            eprintln!("--at requires a telemetry sequence number");
            std::process::exit(2);
        }
        let seq = args.remove(i + 1);
        args.remove(i);
        let seq: u64 = match seq.parse() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("--at requires an integer sequence number, got {seq}");
                std::process::exit(2);
            }
        };
        let cfg = ChaosConfig {
            seed: at_seed,
            lease: None,
            ..ChaosConfig::default()
        };
        match state_at(&cfg, seq) {
            Some((record, state)) => {
                println!(
                    "seed {at_seed}, stopped after event seq {seq}: {}",
                    record.to_json()
                );
                println!("{state}");
                return;
            }
            None => {
                eprintln!("seed {at_seed}'s run ended before emitting event seq {seq}");
                std::process::exit(1);
            }
        }
    }
    let (out, wanted): (String, Vec<String>) = match args.split_first() {
        Some((first, rest)) if !is_section(first) => (first.clone(), rest.to_vec()),
        _ => ("results".to_string(), args),
    };
    let mut report = Report::new(&out);
    if let Some(path) = &trace_out {
        report.set_trace_out(path);
    }
    if let Some(path) = &perfetto_out {
        report.set_perfetto_out(path);
    }
    if let Some(seed) = perfetto_chaos {
        report.set_perfetto_chaos(seed);
    }
    let sections: Vec<Section> = if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        report.all()
    } else {
        wanted
            .iter()
            .map(|w| match w.as_str() {
                "fig1" => report.fig1(),
                "fig2" => report.fig2(),
                "fig3" => report.fig3(),
                "fig4" => report.fig4(),
                "table1" => report.table1(),
                "fig5" => report.fig5(),
                "table2" => report.table2(),
                "fig6" => report.fig6(),
                "fig7" => report.fig7(),
                "table3" => report.table3(),
                "fig8" => report.fig8(),
                "fig9" => report.fig9(),
                "ablation-priority" => report.ablation_priority(),
                "ablation-concurrency" => report.ablation_concurrency(),
                "ablation-replicas" => report.ablation_replicas(),
                "ablation-eviction" => report.ablation_eviction(),
                "ablation-heartbeat" => report.ablation_heartbeat(),
                "ablation-jitter" => report.ablation_jitter(),
                "extension-benefit" => report.extension_benefit_aware(),
                "extension-iterative" => report.extension_iterative(),
                "extension-caching" => report.extension_caching(),
                "telemetry" => report.telemetry(),
                "profile" => report.profile(),
                other => {
                    eprintln!("unknown section: {other}");
                    std::process::exit(2);
                }
            })
            .collect()
    };
    for s in sections {
        println!("==================== {} ====================", s.id);
        println!("{}\n", s.text);
    }
    println!("CSV series written to {out}/");
}
